#!/usr/bin/env python
"""Overhead gate: a metrics-enabled run must stay within tolerance of
an uninstrumented run.

Runs the same (bench, policy, seed) simulation ``--repeats`` times per
leg — plain, metrics-only, and metrics+tracing — interleaved so CPU
frequency drift hits every leg equally, compares median wall-clock
times, and exits non-zero when an instrumented leg exceeds
``plain * (1 + tolerance) + slack``.  The absolute slack term keeps
sub-second CI runs from failing on scheduler noise that a percentage
alone would amplify.

Also asserts the instrumented results are bit-identical to the plain
leg (observability must measure, never perturb) and that the tracer's
stage spans cover at least 95% of the root span.

An ``invariants`` leg runs with ``SimConfig.check_invariants`` on: the
per-epoch invariant catalogue gets its own (looser) budget via
``--invariant-tolerance``, and its results must likewise stay
bit-identical — checking may only observe.

A ``recorder`` leg runs with ``record_series="default"`` (the per-epoch
time-series ring recorder stage enabled) under the standard tolerance:
recording, too, must stay within budget and bit-identical.

A ``checkpoint`` leg runs with ``checkpoint_every`` on (periodic
full-state snapshots to disk) under the standard tolerance, and its
results must be bit-identical to the plain leg: checkpointing off is
the plain leg itself, so this gate pins both halves of the contract —
off costs nothing, on stays within budget and never perturbs.

Usage::

    PYTHONPATH=src python tools/check_overhead.py [--tolerance 0.05]
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import Observability  # noqa: E402
from repro.sim import SimConfig, Simulation  # noqa: E402
from repro.workloads import registry  # noqa: E402

#: (leg name, observability factory, check_invariants, record, checkpoint)
LEGS = (
    ("plain", lambda: None, False, False, False),
    ("metrics", lambda: Observability(metrics=True, tracing=False), False,
     False, False),
    ("metrics+tracing", lambda: Observability(metrics=True, tracing=True),
     False, False, False),
    ("invariants", lambda: None, True, False, False),
    ("recorder", lambda: Observability(metrics=True, tracing=False), False,
     True, False),
    ("checkpoint", lambda: None, False, False, True),
)


def one_run(args, obs, check_invariants=False, record=False,
            checkpoint=False):
    workload = registry.build(args.bench, seed=args.seed)
    config = SimConfig(
        total_accesses=args.accesses,
        chunk_size=args.chunk,
        trace_subsample=64.0,
        checkpoints=1,
        check_invariants=check_invariants,
        record_series="default" if record else "",
        checkpoint_every=args.checkpoint_every if checkpoint else 0,
        checkpoint_path=(os.path.join(tempfile.gettempdir(),
                                      f"overhead_gate_{os.getpid()}.ckpt")
                         if checkpoint else ""),
    )
    sim = Simulation(workload, config, policy=args.policy, obs=obs)
    start = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - start, result, obs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="mcf")
    parser.add_argument("--policy", default="m5-hpt")
    parser.add_argument("--accesses", type=int, default=400_000)
    parser.add_argument("--chunk", type=int, default=16_384)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=5,
                        help="runs per leg; the median is compared")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative slowdown of an "
                             "instrumented leg")
    parser.add_argument("--slack-s", type=float, default=0.05,
                        help="absolute allowance on top of the "
                             "percentage, for short noisy runs")
    parser.add_argument("--invariant-tolerance", type=float, default=0.10,
                        help="allowed relative slowdown of the "
                             "check-invariants leg")
    parser.add_argument("--checkpoint-every", type=int, default=5,
                        help="checkpoint cadence (epochs) for the "
                             "checkpoint leg")
    args = parser.parse_args()

    times = {name: [] for name, _, _, _, _ in LEGS}
    results = {}
    last_obs = {}
    # warm-up: first run pays numpy/import costs, charged to no leg
    one_run(args, None)
    for _ in range(args.repeats):
        for name, make_obs, check, record, checkpoint in LEGS:
            elapsed, result, obs = one_run(args, make_obs(), check, record,
                                           checkpoint)
            times[name].append(elapsed)
            results[name] = result
            last_obs[name] = obs

    medians = {name: statistics.median(ts) for name, ts in times.items()}
    base = medians["plain"]
    print(f"{'leg':>16s}  {'median_s':>9s}  {'vs plain':>9s}")
    failed = []
    for name, _, _, _, _ in LEGS:
        tolerance = (args.invariant_tolerance if name == "invariants"
                     else args.tolerance)
        limit = base * (1.0 + tolerance) + args.slack_s
        ratio = medians[name] / base if base > 0 else float("inf")
        print(f"{name:>16s}  {medians[name]:9.3f}  {ratio:8.3f}x")
        if name != "plain" and medians[name] > limit:
            failed.append(name)

    plain = results["plain"]
    for name in ("metrics", "metrics+tracing", "invariants", "recorder",
                 "checkpoint"):
        r = results[name]
        if (r.execution_time_s != plain.execution_time_s
                or r.promoted != plain.promoted
                or r.demoted != plain.demoted):
            print(f"FAIL: {name} leg perturbed the simulation "
                  f"(exec {r.execution_time_s} vs "
                  f"{plain.execution_time_s})")
            return 1

    coverage = last_obs["metrics+tracing"].tracer.coverage()
    print(f"stage-span coverage: {coverage:.3f}")
    if coverage < 0.95:
        print("FAIL: stage spans cover < 95% of the run span")
        return 1

    checks = results["invariants"].extra.get("invariant_checks", 0)
    violations = results["invariants"].extra.get("invariant_violations", 0)
    print(f"invariant checks: {checks:.0f} run, {violations:.0f} violations")
    if violations:
        print("FAIL: the invariants leg found violations")
        return 1

    if failed:
        print(f"FAIL: {', '.join(failed)} exceeded the overhead budget "
              f"(tolerance {args.tolerance:.0%}, invariants "
              f"{args.invariant_tolerance:.0%}, +{args.slack_s:.2f} s "
              "slack)")
        return 1
    print(f"OK: instrumented legs within {args.tolerance:.0%} "
          f"(invariants {args.invariant_tolerance:.0%}; "
          f"+{args.slack_s:.2f} s slack) of plain")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
