#!/usr/bin/env python
"""Engine gate: the batched hot path must beat the reference engine.

Runs the same (bench, policy, seed) simulation ``--repeats`` times per
engine — ``reference`` (one Python iteration per access) and
``batched`` (numpy arrays end-to-end) — interleaved so CPU frequency
drift hits both legs equally, compares median wall-clock times, and
exits non-zero when the end-to-end speedup falls below
``--min-speedup``.

Also asserts the two engines are bit-identical (same RunResult fields,
same hot-page sets, same checkpoint ratios — the engine knob may only
change *how fast* an epoch is computed, never *what* it computes) and
records per-stage accesses/sec from one traced run per engine
(excluded from the timing legs) to ``BENCH_engine.json`` at the repo
root.

Usage::

    PYTHONPATH=src python tools/bench_engine.py [--smoke] [--min-speedup 10]
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_common import cpu_count, write_record  # noqa: E402

from repro.obs import Observability  # noqa: E402
from repro.sim import SimConfig, Simulation  # noqa: E402
from repro.workloads import registry  # noqa: E402

ENGINES = ("reference", "batched")

#: RunResult fields compared for bit-identity across engines.
IDENTITY_FIELDS = (
    "execution_time_s",
    "app_time_s",
    "overhead_time_s",
    "migration_time_s",
    "p99_latency_us",
    "promoted",
    "demoted",
    "nr_pages_ddr",
    "nr_pages_cxl",
)


def one_run(args, engine, obs=None):
    workload = registry.build(args.bench, seed=args.seed)
    config = SimConfig(
        total_accesses=args.accesses,
        chunk_size=args.chunk,
        trace_subsample=64.0,
        checkpoints=1,
        engine=engine,
    )
    sim = Simulation(workload, config, policy=args.policy,
                     enable_wac=True, obs=obs)
    start = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - start, result


def stage_rates(args, engine):
    """Per-stage accesses/sec from one traced run (not timed)."""
    obs = Observability(metrics=True, tracing=True)
    _, _ = one_run(args, engine, obs=obs)
    rates = {}
    for row in obs.flame_table():
        if not row["name"].startswith("stage."):
            continue
        stage = row["name"][len("stage."):]
        rates[stage] = {
            "total_s": round(row["total_s"], 6),
            "accesses_per_s": (
                round(args.accesses / row["total_s"])
                if row["total_s"] > 0 else None
            ),
        }
    return rates


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="mcf")
    parser.add_argument("--policy", default="m5-hpt+hwt")
    parser.add_argument("--accesses", type=int, default=400_000)
    parser.add_argument("--chunk", type=int, default=16_384)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=5,
                        help="runs per engine; the median is compared")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required end-to-end batched speedup")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: fewer accesses and repeats")
    parser.add_argument("--output", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_engine.json"))
    args = parser.parse_args()
    if args.smoke:
        args.accesses = min(args.accesses, 200_000)
        args.repeats = min(args.repeats, 3)

    # warm-up: first run pays numpy/import costs, charged to no leg
    one_run(args, "batched")
    times = {engine: [] for engine in ENGINES}
    results = {}
    for _ in range(args.repeats):
        for engine in ENGINES:
            elapsed, result = one_run(args, engine)
            times[engine].append(elapsed)
            results[engine] = result

    medians = {engine: statistics.median(ts) for engine, ts in times.items()}
    speedup = (medians["reference"] / medians["batched"]
               if medians["batched"] > 0 else float("inf"))
    for engine in ENGINES:
        rate = args.accesses / medians[engine] if medians[engine] else 0.0
        print(f"{engine:>10s}: {medians[engine]:7.3f} s "
              f"({rate:12,.0f} accesses/s)")
    print(f"   speedup: {speedup:7.2f}x  (gate: {args.min_speedup:.1f}x)")

    ref, fast = results["reference"], results["batched"]
    mismatched = [f for f in IDENTITY_FIELDS
                  if getattr(ref, f) != getattr(fast, f)]
    if tuple(ref.hot_pfns) != tuple(fast.hot_pfns):
        mismatched.append("hot_pfns")
    if ref.ratio_checkpoints != fast.ratio_checkpoints:
        mismatched.append("ratio_checkpoints")
    if mismatched:
        print(f"FAIL: engines disagree on {', '.join(mismatched)} — "
              "the engine knob must not change results")
        return 1
    print("engines bit-identical: True")

    record = {
        "bench": args.bench,
        "policy": args.policy,
        "accesses": args.accesses,
        "chunk": args.chunk,
        "seed": args.seed,
        "repeats": args.repeats,
        "cpu_count": cpu_count(),
        "reference_s": round(medians["reference"], 3),
        "batched_s": round(medians["batched"], 3),
        "speedup": round(speedup, 3),
        "min_speedup": args.min_speedup,
        "identical": True,
        "stages": {engine: stage_rates(args, engine) for engine in ENGINES},
    }
    write_record(args.output, record)

    if speedup < args.min_speedup:
        print(f"FAIL: batched engine speedup {speedup:.2f}x below the "
              f"{args.min_speedup:.1f}x gate")
        return 1
    print(f"OK: batched engine is {speedup:.2f}x faster than reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
