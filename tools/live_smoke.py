#!/usr/bin/env python
"""CI smoke test for the live observability service.

Drives the real CLI the way an operator would and checks the
acceptance properties end to end:

1. ``repro run --serve`` — scrape ``/metrics`` **mid-run**: the
   response must parse, and every counter/histogram series must be ≤
   its final-snapshot value (monotone reads are the contract that
   makes torn scrapes safe).
2. After the run (during ``--serve-linger``) the final scrape of
   ``/snapshot.json`` must equal the ``--metrics`` artifact exactly,
   and ``repro metrics diff`` over the two must report no differing
   series.
3. The per-epoch recorder exports a non-empty JSONL series file.
4. The same final-scrape == snapshot equality on a 2-tenant
   ``repro fleet --serve`` with per-tenant labelled series.
5. The SLO watchdog demonstrably fires: a starved async copy engine
   (tiny ``--mig-copy-gbps``) must produce ``alert.queue_saturation``
   timeline events and a nonzero ``slo_breaches_total``.

Usage::

    PYTHONPATH=src python tools/live_smoke.py [--accesses N] [--out DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import flatten_snapshot, parse_prometheus  # noqa: E402

PYTHON = sys.executable


def repro(*argv: str, **kw):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH", ""),
        ) if p
    )
    return subprocess.Popen(
        [PYTHON, "-m", "repro", *argv],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        **kw,
    )


def wait_for_line(proc, prefix: str, seen: list) -> str:
    """Read stdout until a line starts with ``prefix``; returns it."""
    assert proc.stdout is not None
    for line in proc.stdout:
        seen.append(line)
        if line.startswith(prefix):
            return line.rstrip("\n")
    raise AssertionError(
        f"process exited before printing {prefix!r}; output:\n"
        + "".join(seen)
    )


def get(url: str) -> bytes:
    return urllib.request.urlopen(url, timeout=10).read()


def counter_families(text: str) -> dict:
    """``{family: type}`` from the exposition's ``# TYPE`` lines."""
    kinds = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            kinds[name] = kind
    return kinds


def monotone_keys(flat: dict, kinds: dict):
    """Series keys whose values may only grow during a run."""
    for key in flat:
        base = key.split("{", 1)[0]
        if kinds.get(base) == "counter":
            yield key
        else:
            for suffix in ("_bucket", "_count"):
                if base.endswith(suffix) and (
                    kinds.get(base[: -len(suffix)]) == "histogram"
                ):
                    yield key
                    break


def check_single_run(out: str, accesses: int) -> None:
    final_path = os.path.join(out, "final_run.json")
    series_path = os.path.join(out, "series.jsonl")
    live_path = os.path.join(out, "live_run.json")
    proc = repro(
        "run", "--bench", "mcf", "--accesses", str(accesses),
        "--serve", "--serve-linger", "8",
        "--record-series", "default", "--slo-rules", "default",
        "--record-out", series_path, "--metrics", final_path,
    )
    seen: list = []
    try:
        line = wait_for_line(proc, "live metrics", seen)
        url = line.split()[3]
        # -- mid-run scrape: must parse; monotone series must be <= final
        mid_text = get(url).decode()
        mid_flat = parse_prometheus(mid_text)
        assert mid_flat, "mid-run /metrics scrape parsed to no series"
        kinds = counter_families(mid_text)
        health = json.loads(get(url.replace("/metrics", "/healthz")))
        assert health["status"] == "ok", health
        wait_for_line(proc, "run finished", seen)
        # -- final scrape during linger == the --metrics artifact
        snap = json.loads(get(url.replace("/metrics", "/snapshot.json")))
    finally:
        proc.wait(timeout=120)
    with open(final_path) as fh:
        final = json.load(fh)
    assert snap == final, "final /snapshot.json scrape != --metrics artifact"
    final_flat = flatten_snapshot(final, buckets=True)
    checked = 0
    for key in monotone_keys(mid_flat, kinds):
        assert key in final_flat, f"mid-run series {key} missing at the end"
        assert mid_flat[key] <= final_flat[key] + 1e-9, (
            f"counter went backwards: {key} mid={mid_flat[key]} "
            f"final={final_flat[key]}"
        )
        checked += 1
    assert checked > 0, "no monotone series found in the mid-run scrape"
    # -- the scraped snapshot diffs clean against the artifact
    with open(live_path, "w") as fh:
        json.dump(snap, fh)
    diff = repro("metrics", live_path, final_path)
    out_text, _ = diff.communicate(timeout=120)
    assert diff.returncode == 0 and "no differing series" in out_text, out_text
    # -- recorder artifact is real
    with open(series_path) as fh:
        rows = [json.loads(ln) for ln in fh if ln.strip()]
    assert rows and "epoch" in rows[0], "empty per-epoch series export"
    print(f"single run OK: {checked} monotone series mid<=final, "
          f"final scrape == snapshot, {len(rows)} recorded epochs")


def check_fleet(out: str, accesses: int) -> None:
    final_path = os.path.join(out, "final_fleet.json")
    proc = repro(
        "fleet", "--tenants", "2", "--tiers", "2", "--bench", "mcf,roms",
        "--accesses", str(accesses), "--serve", "--serve-linger", "8",
        "--metrics", final_path,
    )
    seen: list = []
    try:
        line = wait_for_line(proc, "live metrics", seen)
        url = line.split()[3]
        mid_text = get(url).decode()
        assert parse_prometheus(mid_text), "fleet mid-run scrape empty"
        wait_for_line(proc, "fleet finished", seen)
        snap = json.loads(get(url.replace("/metrics", "/snapshot.json")))
    finally:
        proc.wait(timeout=120)
    with open(final_path) as fh:
        final = json.load(fh)
    assert snap == final, "fleet final scrape != --metrics artifact"
    flat = flatten_snapshot(final)
    tenants = {
        key.split('tenant="', 1)[1].split('"', 1)[0]
        for key in flat if 'tenant="' in key
    }
    assert {"0", "1"} <= tenants, f"missing per-tenant series: {tenants}"
    print(f"fleet OK: final scrape == snapshot, per-tenant labels {sorted(tenants)}")


def check_watchdog(out: str, accesses: int) -> None:
    timeline = os.path.join(out, "watchdog_timeline.jsonl")
    proc = repro(
        "run", "--bench", "mcf", "--accesses", str(accesses),
        "--migration-mode", "async", "--mig-copy-gbps", "0.0001",
        "--mig-queue-cap", "128",
        "--slo-rules", "default", "--timeline", timeline,
    )
    out_text, _ = proc.communicate(timeout=300)
    assert proc.returncode == 0, out_text
    assert "slo           :" in out_text and "breaches" in out_text, out_text
    assert "queue_saturation" in out_text, out_text
    with open(timeline) as fh:
        alerts = [
            json.loads(ln) for ln in fh
            if ln.strip() and '"alert.' in ln
        ]
    assert any(
        e["stage"] == "alert.queue_saturation" for e in alerts
    ), "no alert.queue_saturation events in the timeline"
    print(f"watchdog OK: {len(alerts)} alert events on a starved copy engine")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=2_000_000,
                        help="per-run trace length (big enough that the "
                             "mid-run scrape lands mid-run)")
    parser.add_argument("--out", default=".",
                        help="artifact directory")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)
    check_single_run(args.out, args.accesses)
    check_fleet(args.out, max(args.accesses // 2, 100_000))
    check_watchdog(args.out, max(args.accesses // 4, 100_000))
    print("live observability smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
