#!/usr/bin/env python
"""CI smoke test for the streaming service daemon (``repro serve``).

Drives the real CLI the way an operator would and checks the
kill/resume acceptance properties end to end:

1. Record two v2 streaming traces with ``repro.workloads.record``.
2. Baseline: ``repro serve`` both streams uninterrupted, ``--out``
   the per-stream results.
3. Daemon: the same service with checkpointing on and the live HTTP
   endpoint up.  Scrape ``/metrics`` mid-run and require per-stream
   (``stream=``-labelled) series; wait for a complete checkpoint set;
   then **SIGKILL** the daemon — no graceful shutdown, exactly the
   crash the checkpoint format must survive.
4. Resume: ``repro serve --resume`` from the checkpoint directory,
   run to completion.
5. The resumed per-stream results must equal the uninterrupted
   baseline field for field — bit-identity across a hard kill.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--out DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

PYTHON = sys.executable
CHUNK = 16_384


def repro_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH", ""),
        ) if p
    )
    return env


def repro(*argv: str, **kw):
    return subprocess.run(
        [PYTHON, "-m", "repro", *argv],
        env=repro_env(), text=True, capture_output=True, **kw
    )


def fail(msg: str) -> "NoReturn":  # noqa: F821 - py<3.11 typing
    print(f"FAIL: {msg}")
    raise SystemExit(1)


def record_traces(out_dir: str):
    from repro.workloads import record, registry

    paths = {}
    for name, bench, chunks in (("alpha", "mcf", 48), ("beta", "roms", 32)):
        path = os.path.join(out_dir, f"{name}.rtrace")
        record(registry.build(bench, seed=7), chunks * CHUNK, path,
               chunk_size=CHUNK)
        paths[name] = path
    return paths


def serve_args(paths, *extra):
    return (
        "serve",
        "--stream", f"alpha={paths['alpha']},policy=m5-hpt,budget={CHUNK}",
        "--stream", f"beta={paths['beta']},policy=anb,budget={CHUNK}",
        "--chunk", str(CHUNK),
        *extra,
    )


def scrape(url: str) -> str:
    return urllib.request.urlopen(url, timeout=5).read().decode()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="service-smoke",
                        help="artifact directory")
    parser.add_argument("--kill-timeout", type=float, default=60.0,
                        help="max seconds to wait for a checkpoint "
                             "before giving up")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    print("== recording v2 traces")
    paths = record_traces(args.out)

    print("== baseline: uninterrupted service")
    base_out = os.path.join(args.out, "baseline.json")
    proc = repro(*serve_args(paths, "--no-http", "--out", base_out))
    if proc.returncode != 0:
        fail(f"baseline serve failed:\n{proc.stdout}\n{proc.stderr}")
    with open(base_out) as fh:
        baseline = json.load(fh)
    if baseline["unfinished"]:
        fail(f"baseline left streams unfinished: {baseline['unfinished']}")

    print("== daemon: checkpointing service, then SIGKILL")
    ckpt_dir = os.path.join(args.out, "ckpt")
    daemon = subprocess.Popen(
        [PYTHON, "-m", "repro", *serve_args(
            paths,
            "--checkpoint-dir", ckpt_dir, "--checkpoint-every", "2",
            "--port", "0",
        )],
        env=repro_env(), text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    try:
        # The ephemeral port is printed on the first line of output.
        line = daemon.stdout.readline()
        deadline = time.monotonic() + args.kill_timeout
        url = None
        while line:
            m = re.search(r"http://[\d.]+:\d+", line)
            if m:
                url = m.group(0)
                break
            if time.monotonic() > deadline:
                break
            line = daemon.stdout.readline()
        if url is None:
            fail("daemon never printed its metrics URL")
        print(f"   metrics endpoint: {url}")

        # Mid-run scrape: per-stream labelled series must be there.
        manifest = os.path.join(ckpt_dir, "manifest.json")
        body = ""
        while time.monotonic() < deadline:
            if daemon.poll() is not None:
                fail("daemon finished before it could be killed; "
                     "enlarge the traces")
            try:
                body = scrape(url + "/metrics")
            except OSError:
                time.sleep(0.05)
                continue
            if (os.path.exists(manifest)
                    and 'stream="alpha"' in body
                    and 'stream="beta"' in body
                    and "service_rounds_total" in body):
                break
            time.sleep(0.05)
        else:
            fail("no checkpoint + labelled scrape before the timeout")
        with open(os.path.join(args.out, "midrun.prom"), "w") as fh:
            fh.write(body)

        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=30)
        print(f"   killed daemon (pid {daemon.pid}) after checkpoint")
    finally:
        if daemon.poll() is None:
            daemon.kill()
        daemon.stdout.close()

    with open(manifest) as fh:
        killed_round = json.load(fh)["round"]
    print(f"   checkpoint set at round {killed_round}")

    print("== resume: run the killed service to completion")
    resume_out = os.path.join(args.out, "resumed.json")
    proc = repro("serve", "--no-http", "--resume", ckpt_dir,
                 "--max-rounds", "0", "--out", resume_out)
    if proc.returncode != 0:
        fail(f"resume failed:\n{proc.stdout}\n{proc.stderr}")
    if "resumed service from" not in proc.stdout:
        fail(f"resume banner missing:\n{proc.stdout}")
    with open(resume_out) as fh:
        resumed = json.load(fh)
    if resumed["unfinished"]:
        fail(f"resumed service left streams unfinished: "
             f"{resumed['unfinished']}")

    print("== compare: resumed results vs uninterrupted baseline")
    if set(resumed["streams"]) != {"alpha", "beta"}:
        fail(f"stream set mismatch: {sorted(resumed['streams'])}")
    for name in sorted(baseline["streams"]):
        want = baseline["streams"][name]
        got = resumed["streams"][name]
        if want != got:
            diffs = {k: (want[k], got.get(k))
                     for k in want if want[k] != got.get(k)}
            fail(f"stream {name!r} diverged after kill/resume: {diffs}")
        print(f"   {name}: bit-identical "
              f"(exec {want['execution_time_s']:.2f}s, "
              f"promoted {want['promoted']})")

    print("OK: kill/resume bit-identity + per-stream scrape held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
