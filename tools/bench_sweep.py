#!/usr/bin/env python
"""Micro-harness: serial vs parallel ``run_matrix`` wall time.

Runs a 4-benchmark × 4-policy matrix twice — ``jobs=1`` and
``jobs=N`` — verifies the matrices are identical, and records wall
times plus the speedup to ``BENCH_sweep.json`` at the repo root.

Usage::

    PYTHONPATH=src python tools/bench_sweep.py [--jobs 4] [--accesses N]
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_common import cpu_count, max_possible_speedup, write_record  # noqa: E402

from repro.sim import SimConfig, run_matrix  # noqa: E402

BENCHES = ["mcf", "roms", "bc", "redis"]
POLICIES = ["anb", "damon", "tpp", "m5-hpt"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel leg")
    parser.add_argument("--accesses", type=int, default=400_000,
                        help="trace length per matrix cell")
    parser.add_argument("--output", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_sweep.json"))
    args = parser.parse_args()

    factory = functools.partial(
        SimConfig,
        total_accesses=args.accesses,
        chunk_size=16_384,
        trace_subsample=64.0,
        checkpoints=1,
    )

    legs = {}
    matrices = {}
    for label, jobs in (("serial", 1), (f"jobs={args.jobs}", args.jobs)):
        start = time.perf_counter()
        matrices[label] = run_matrix(BENCHES, POLICIES, factory, seed=1, jobs=jobs)
        legs[label] = time.perf_counter() - start
        print(f"{label:>10s}: {legs[label]:7.2f} s")

    serial_s = legs["serial"]
    parallel_s = legs[f"jobs={args.jobs}"]
    identical = matrices["serial"] == matrices[f"jobs={args.jobs}"]
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    print(f"   speedup: {speedup:7.2f}x  (matrices identical: {identical})")

    record = {
        "benches": BENCHES,
        "policies": POLICIES,
        "cells": len(BENCHES) * (len(POLICIES) + 1),
        "accesses_per_cell": args.accesses,
        "jobs": args.jobs,
        "cpu_count": cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "max_possible_speedup": max_possible_speedup(args.jobs),
        "matrices_identical": identical,
    }
    write_record(args.output, record)
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
