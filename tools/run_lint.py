#!/usr/bin/env python3
"""Standalone front end for ``repro.lintkit`` (CI entry point).

Same behaviour as ``repro lint`` plus ``--update-registries``, which
regenerates the extraction-based registries
(``docs/registries/telemetry_events.json`` and
``metric_families.json``) from the scanned source, preserving any
existing descriptions.  ``config_cli.json`` is hand-maintained — see
``docs/static_analysis.md`` for the workflow.

Usage::

    PYTHONPATH=src python tools/run_lint.py                # lint src/
    PYTHONPATH=src python tools/run_lint.py --format json --output lint.json
    PYTHONPATH=src python tools/run_lint.py --update-registries
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.lintkit import add_arguments, load_project, run_from_args  # noqa: E402
from repro.lintkit.rules.drift import update_registries  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="run_lint.py",
        description="repro.lintkit static analysis (CI entry point)",
    )
    add_arguments(parser)
    parser.add_argument(
        "--update-registries", action="store_true",
        help="regenerate docs/registries/{telemetry_events,metric_families}"
        ".json from source and exit",
    )
    args = parser.parse_args()
    if args.update_registries:
        project = load_project(args.paths, root=args.root)
        for path in update_registries(project):
            print(f"registry updated: {os.path.relpath(path, project.root)}")
        return 0
    return run_from_args(args)


if __name__ == "__main__":
    raise SystemExit(main())
