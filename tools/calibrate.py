"""Calibration harness: compare per-benchmark statistics against the
paper's published targets.  Not part of the library API; used while
tuning the workload generators.

Usage: python tools/calibrate.py [ratio|cdf|sparsity] [bench ...]
"""

import sys
import time

from repro import workloads
from repro.analysis import AccessCdf, from_wac
from repro.sim import SimConfig, Simulation

BENCHES = workloads.MEMORY_INTENSIVE


def ratio_report(benches):
    print(f"{'bench':10s} {'anb':>6s} {'damon':>6s} {'m5':>6s}  (paper: anb~.21 damon~.29 m5~.72; cactu/foto/mcf high)")
    for b in benches:
        row = []
        for pol in ["anb", "damon", "m5-hpt"]:
            wl = workloads.build(b, seed=1)
            cfg = SimConfig(total_accesses=800_000, migrate=False)
            sim = Simulation(wl, cfg, policy=pol)
            r = sim.run()
            row.append(r.access_count_ratio)
        print(f"{b:10s} {row[0]:6.3f} {row[1]:6.3f} {row[2]:6.3f}")


def cdf_report(benches):
    print(f"{'bench':10s} {'p90/p50':>8s} {'p95/p50':>8s} {'p99/p50':>8s} {'gini':>6s} bottomgap")
    for b in benches:
        wl = workloads.build(b, seed=1)
        cfg = SimConfig(total_accesses=800_000, migrate=False)
        sim = Simulation(wl, cfg, policy="none")
        sim.run()
        counts = sim.pac.counts()
        cdf = AccessCdf.from_counts(b, counts)
        s = cdf.skew_summary()
        print(
            f"{b:10s} {s['p90_over_p50']:8.2f} {s['p95_over_p50']:8.2f} "
            f"{s['p99_over_p50']:8.2f} {cdf.gini():6.3f} {cdf.bottom_gap():8.1f}"
        )


def sparsity_report(benches):
    print(f"{'bench':10s}" + "".join(f"{t:>7d}" for t in (4, 8, 16, 32, 48)))
    for b in benches:
        wl = workloads.build(b, seed=1)
        cfg = SimConfig(total_accesses=800_000, migrate=False)
        sim = Simulation(wl, cfg, policy="none", enable_wac=True)
        sim.run()
        prof = from_wac(b, sim.wac)
        print(f"{b:10s}" + "".join(f"{prof.at(t):7.2f}" for t in (4, 8, 16, 32, 48)))


if __name__ == "__main__":
    mode = sys.argv[1] if len(sys.argv) > 1 else "ratio"
    benches = sys.argv[2:] or BENCHES
    t = time.time()
    {"ratio": ratio_report, "cdf": cdf_report, "sparsity": sparsity_report}[mode](benches)
    print(f"[{time.time()-t:.1f}s]")
