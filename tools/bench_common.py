"""Shared plumbing for the ``tools/bench_*.py`` micro-harnesses.

Each bench script records a JSON document at the repo root (picked up
as a CI artifact); the host context and the record writer live here so
``bench_sweep.py`` and ``bench_engine.py`` stay in lockstep.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict


def cpu_count() -> int:
    """Logical CPUs on this host (always at least 1)."""
    return os.cpu_count() or 1


def max_possible_speedup(jobs: int) -> int:
    """Parallelism ceiling for a ``jobs``-worker leg.

    The ceiling is ``min(jobs, cores)``: a single-core host cannot show
    wall-clock speedup regardless of how many workers are requested.
    """
    return min(int(jobs), cpu_count())


def write_record(path: str, record: Dict[str, Any]) -> None:
    """Dump a bench record as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"recorded to {os.path.abspath(path)}")
