#!/usr/bin/env python
"""Standalone differential-oracle runner.

Runs the paired-configuration oracles from :mod:`repro.verify` — the
same pairs ``repro verify`` exercises — with knobs for the migration
pair's benchmark/policy/trace length, and optionally writes the full
per-field diff as JSON (for pinning goldens or CI artifacts).

Usage::

    PYTHONPATH=src python tools/run_differential.py
    PYTHONPATH=src python tools/run_differential.py \
        --oracles migration --bench roms --accesses 600000 \
        --json diff.json

Exit status: 0 when every oracle pair agrees within tolerance,
1 on drift, 2 on a usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.verify import ORACLES, run_all


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--oracles", default=",".join(ORACLES),
                        help="comma-separated oracle names "
                             f"(known: {', '.join(ORACLES)})")
    parser.add_argument("--bench", default="mcf",
                        help="benchmark for the migration oracle")
    parser.add_argument("--policy", default="m5-hpt",
                        help="policy for the migration oracle")
    parser.add_argument("--accesses", type=int, default=400_000,
                        help="trace length for the migration oracle")
    parser.add_argument("--chunk", type=int, default=16_384,
                        help="epoch size for the migration oracle")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the per-field diffs as JSON")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    names = [n.strip() for n in args.oracles.split(",") if n.strip()]
    unknown = [n for n in names if n not in ORACLES]
    if unknown:
        print(f"unknown oracles: {', '.join(unknown)} "
              f"(known: {', '.join(ORACLES)})")
        return 2
    overrides = {
        "sketch": {"seed": args.seed},
        "pac": {"seed": args.seed},
        "migration": {
            "bench": args.bench,
            "policy": args.policy,
            "seed": args.seed,
            "accesses": args.accesses,
            "chunk": args.chunk,
        },
    }
    reports = run_all(names, **{n: overrides.get(n, {}) for n in names})
    for report in reports:
        print(report.format())
        print()
    if args.json:
        payload = [
            {
                "oracle": report.name,
                "description": report.description,
                "ok": report.ok,
                "rows": [
                    {"field": row.field, "a": row.a, "b": row.b,
                     "tolerance": row.tolerance, "drift": row.drift,
                     "ok": row.ok}
                    for row in report.rows
                ],
            }
            for report in reports
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"diff report written to {args.json}")
    failed = [report.name for report in reports if not report.ok]
    if failed:
        print(f"DRIFT in oracle pairs: {', '.join(failed)}")
        return 1
    print(f"all {len(reports)} oracle pairs agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
