#!/usr/bin/env python
"""Micro-harness: fleet throughput vs tenant count.

Runs the same per-tenant trace at 1, 2, 4, and 8 tenants (3 tiers,
mixed benchmarks, uncoupled channels so the sweep layer can shard
tenants across worker processes) and records wall time and
accesses/sec per tenant count to ``BENCH_fleet.json`` at the repo
root.

The gate: per-tenant throughput must degrade *sublinearly* in tenant
count — an N-tenant fleet must finish in less than N times the
1-tenant wall clock (process sharding should absorb most of the extra
work).  Hosts without spare cores cannot shard, so there the gate
only requires the lockstep fallback to stay within linear scaling
plus slack.

Usage::

    PYTHONPATH=src python tools/bench_fleet.py [--accesses N]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_common import cpu_count, max_possible_speedup, write_record  # noqa: E402

from repro.sim import FleetConfig, SimConfig, collect_fleet  # noqa: E402

TENANT_COUNTS = [1, 2, 4, 8]
BENCHES = "mcf,roms"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=200_000,
                        help="trace length per tenant")
    parser.add_argument("--output", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_fleet.json"))
    args = parser.parse_args()

    config = SimConfig(
        total_accesses=args.accesses, chunk_size=16_384, seed=1
    )

    legs = []
    base_wall = None
    ok = True
    for tenants in TENANT_COUNTS:
        fleet = FleetConfig(tenants=tenants, tiers=3, bench=BENCHES)
        jobs = max_possible_speedup(tenants)
        start = time.perf_counter()
        result = collect_fleet(fleet, config, jobs=jobs)
        wall_s = time.perf_counter() - start
        if base_wall is None:
            base_wall = wall_s
        # wall(N) / wall(1): 1.0 = free co-location, N = fully serial.
        degradation = wall_s / base_wall if base_wall > 0 else float("inf")
        per_tenant_rate = args.accesses / wall_s if wall_s > 0 else 0.0
        if tenants > 1:
            sublinear = degradation < tenants * (
                0.9 if max_possible_speedup(tenants) >= 2 else 1.3
            )
        else:
            sublinear = True
        ok = ok and sublinear
        legs.append({
            "tenants": tenants,
            "jobs": jobs,
            "epochs": result.epochs,
            "wall_s": round(wall_s, 3),
            "per_tenant_accesses_per_s": round(per_tenant_rate, 1),
            "degradation_vs_one_tenant": round(degradation, 3),
            "sublinear": sublinear,
        })
        print(f"tenants={tenants:2d} jobs={jobs:2d}: {wall_s:7.2f} s  "
              f"({per_tenant_rate:12,.0f} acc/s/tenant, "
              f"x{degradation:.2f} vs 1 tenant, "
              f"{'ok' if sublinear else 'FAIL'})")

    record = {
        "benches": BENCHES,
        "tiers": 3,
        "accesses_per_tenant": args.accesses,
        "cpu_count": cpu_count(),
        "legs": legs,
        "sublinear_scaling": ok,
    }
    write_record(args.output, record)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
