"""CPU-driven page-migration baselines (paper §2.1): ANB, DAMON, full
PTE scanning, and PEBS-style sampling, plus the no-migration control."""

from repro.baselines.base import (
    EpochPolicy,
    EpochView,
    MigrationPolicy,
    NoMigration,
    PolicyCosts,
    PolicyDecision,
)
from repro.baselines.anb import AutoNumaBalancing
from repro.baselines.damon import Damon, Region
from repro.baselines.ptescan import PteScanner
from repro.baselines.pebs import PebsSampler
from repro.baselines.tpp import Tpp

__all__ = [
    "EpochPolicy",
    "EpochView",
    "MigrationPolicy",
    "NoMigration",
    "PolicyCosts",
    "PolicyDecision",
    "AutoNumaBalancing",
    "Damon",
    "Region",
    "PteScanner",
    "PebsSampler",
    "Tpp",
]
