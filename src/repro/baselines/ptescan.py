"""Full PTE scanning: the exhaustive variant of §2.1 Solution 2.

Where DAMON samples one page per region, the classic scanners
(kstaled, Thermostat, MULTI-CLOCK, ...) walk *every* valid PTE each
epoch, read-and-clear the access bit, and accumulate a per-page
counter over multiple epochs.  Two structural limitations carry over:

* the access bit is Boolean — one epoch contributes at most 1 count no
  matter how many times the page was hit, so hot and warm pages are
  separated only by *persistence*, not intensity;
* the bit is set on TLB misses only, so TLB-resident hot pages
  undercount;
* scanning all PTEs costs CPU proportional to the footprint, every
  epoch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import MigrationPolicy
from repro.memory.page_table import PageTable
from repro.memory.tiers import TieredMemory

#: Cost per scanned PTE (walk is amortised by sequential layout), us.
SCAN_COST_US = 0.05

DEFAULT_SCAN_PERIOD_S = 0.1


class PteScanner(MigrationPolicy):
    """Periodic full-table scanner with accumulated access counts.

    Args:
        scan_period_s: time between full scans.
        hot_epochs: number of set-bit epochs (within the window) after
            which a page is declared hot.
        window_epochs: sliding accumulation window length.
    """

    name = "pte-scan"

    def __init__(
        self,
        memory: TieredMemory,
        page_table: Optional[PageTable] = None,
        scan_period_s: float = DEFAULT_SCAN_PERIOD_S,
        hot_epochs: int = 3,
        window_epochs: int = 8,
        batched: bool = True,
    ):
        super().__init__(memory, page_table, batched=batched)
        if hot_epochs <= 0 or window_epochs < hot_epochs:
            raise ValueError("need 0 < hot_epochs <= window_epochs")
        self.scan_period_s = float(scan_period_s)
        self.hot_epochs = int(hot_epochs)
        self.window_epochs = int(window_epochs)
        n = memory.num_logical_pages
        self._bit_history = np.zeros(n, dtype=np.int32)
        self._epochs_in_window = 0
        self._next_scan_s = self.scan_period_s
        self.scans = 0

    def _scan(self) -> None:
        n = self.memory.num_logical_pages
        all_pages = np.arange(n)
        bits = self.page_table.scan_and_clear_accessed(all_pages)
        self._bit_history += bits.astype(np.int32)
        self._epochs_in_window += 1
        self.scans += 1
        self.costs.charge(n * SCAN_COST_US, "pte_scan")
        hot = np.nonzero(self._bit_history >= self.hot_epochs)[0]
        hot = hot[self.memory.node_map[hot] == 1]
        self.record_hot(hot)
        if self._epochs_in_window >= self.window_epochs:
            self._bit_history[:] = 0
            self._epochs_in_window = 0

    def _detect(self, pages: np.ndarray, now_s: float, epoch_s: float) -> None:
        self.page_table.touch(pages)
        # Access bits refresh at most once per epoch, so multiple due
        # scans inside one epoch collapse into a single effective scan
        # (the later passes would read only cleared bits).
        if now_s >= self._next_scan_s:
            while now_s >= self._next_scan_s:
                self._next_scan_s += self.scan_period_s
            self._scan()
