"""DAMON: the region-based PTE-scanning baseline (§2.1 Solution 2).

Models the kernel's Data Access MONitor as evaluated in the paper
(Linux 6.11, DAMON-based promotion):

* the monitored address space is partitioned into **regions**; every
  *sampling interval* DAMON checks the access bit of one page per
  region (clearing it afterwards), incrementing the region's
  ``nr_accesses`` when set;
* every *aggregation interval* regions are scored, adjacent regions
  with similar counts are **merged**, and regions are **split** to
  keep adaptivity, bounded by ``min_nr_regions``/``max_nr_regions``;
* regions whose ``nr_accesses`` crosses the hot threshold are promoted
  — *every page of the region* is treated as hot, which is the
  granularity blur behind Observation 1: one hot page drags its whole
  region's warm pages into the hot list.

Because the simulation advances in epochs that are long relative to
the 5ms sampling interval, the access-bit checks inside an epoch are
evaluated statistically: a sampled page's bit reads as set with
probability ``1 − exp(−rate_miss × interval)``, where ``rate_miss`` is
the page's TLB-*missing* access rate during the epoch — the access
bit is only set on a page walk, so TLB-resident pages undercount
(§2.1's staleness caveat).  This is exact in expectation for Poisson
arrivals and preserves the two DAMON failure modes the paper
demonstrates: region blur and intensity blindness (a bit per sample,
not a count).

CPU cost: every sample is a PTE walk + clear, and the sampling never
stops — even "after page migration reaches an equilibrium state",
which is how DAMON degrades Redis by 16% while ANB backs off (§7.2).
DAMON's sampling work is footprint-independent (one page per region),
so its costs are *not* scaled under time dilation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines.base import MigrationPolicy
from repro.memory.page_table import PageTable
from repro.memory.tiers import TieredMemory

#: Cost per sampled PTE (walk + read-clear + bookkeeping), us.
SAMPLE_COST_US = 0.6
#: Cost of one aggregation pass (merge/split over the region list), us.
AGGREGATE_COST_US = 15.0

DEFAULT_SAMPLING_INTERVAL_S = 0.005
DEFAULT_AGGREGATION_INTERVAL_S = 0.1


@dataclass
class Region:
    """One DAMON region: [start, end) logical pages."""

    start: int
    end: int
    nr_accesses: int = 0

    @property
    def size(self) -> int:
        return self.end - self.start


class Damon(MigrationPolicy):
    """DAMON model with adaptive region split/merge.

    Args:
        min_nr_regions / max_nr_regions: kernel defaults 10 / 1000.
        hot_threshold: minimum fraction of the aggregation window's
            samples a region must score to be promotable.
        quota_pages: DAMOS-style quota — at most this many pages are
            promoted per aggregation, taken from the highest-scoring
            regions first (0 derives footprint/32).
        merge_threshold: max |Δnr_accesses| for adjacent-region merge.
        access_scale: under time dilation, real access counts per page
            are ``access_scale`` times the model's counts (set by the
            engine; affects only the statistical bit probability).
    """

    name = "damon"

    def __init__(
        self,
        memory: TieredMemory,
        page_table: Optional[PageTable] = None,
        sampling_interval_s: float = DEFAULT_SAMPLING_INTERVAL_S,
        aggregation_interval_s: float = DEFAULT_AGGREGATION_INTERVAL_S,
        min_nr_regions: int = 10,
        max_nr_regions: int = 1000,
        hot_threshold: float = 0.05,
        quota_pages: int = 0,
        merge_threshold: int = 2,
        access_scale: float = 1.0,
        seed: int = 42,
        batched: bool = True,
    ):
        super().__init__(memory, page_table, batched=batched)
        if sampling_interval_s <= 0 or aggregation_interval_s <= 0:
            raise ValueError("intervals must be positive")
        if not 2 <= min_nr_regions <= max_nr_regions:
            raise ValueError("bad region bounds")
        self.sampling_interval_s = float(sampling_interval_s)
        self.aggregation_interval_s = float(aggregation_interval_s)
        self.min_nr_regions = int(min_nr_regions)
        self.max_nr_regions = int(max_nr_regions)
        self.hot_threshold = float(hot_threshold)
        self.quota_pages = (
            int(quota_pages) if quota_pages else max(32, memory.num_logical_pages // 32)
        )
        self.merge_threshold = int(merge_threshold)
        self.access_scale = float(access_scale)
        self._rng = np.random.default_rng(seed)
        n = memory.num_logical_pages
        bounds = np.linspace(0, n, self.min_nr_regions + 1).astype(int)
        self.regions: List[Region] = [
            Region(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a
        ]
        # Batched engine: per-region sample counts live in this array
        # (index-aligned with self.regions, which only mutates inside
        # _aggregate) and are materialised into Region.nr_accesses at
        # aggregation time.
        self._nr_accesses = np.zeros(len(self.regions), dtype=np.int64)
        self._sample_debt_s = 0.0
        self._next_aggregate_s = self.aggregation_interval_s
        self._samples_this_window = 0
        self.samples_taken = 0
        self.aggregations = 0

    # ------------------------------------------------------------------
    # sampling

    def _tlb_miss_ratio(self) -> float:
        tlb = self.page_table.tlb
        total = tlb.hits + tlb.misses
        return tlb.misses / total if total else 1.0

    def _sample_passes(self, num_passes: int, counts: np.ndarray,
                       epoch_s: float) -> None:
        """Run ``num_passes`` sampling passes over the current regions.

        Vectorised: pass p picks one uniform page per region; the bit
        probability follows the page's TLB-missing access rate.
        """
        if num_passes <= 0 or not self.regions:
            return
        starts = np.array([r.start for r in self.regions])
        sizes = np.array([r.size for r in self.regions])
        picks = starts[None, :] + (
            self._rng.random((num_passes, len(self.regions))) * sizes[None, :]
        ).astype(np.int64)
        rate = (
            counts[picks] * self.access_scale * self._tlb_miss_ratio()
            / max(epoch_s, 1e-12)
        )
        p_bit = 1.0 - np.exp(-rate * self.sampling_interval_s)
        hits = (self._rng.random(picks.shape) < p_bit).sum(axis=0)
        if self.batched:
            self._nr_accesses += hits
        else:
            for region, h in zip(self.regions, hits.tolist()):
                region.nr_accesses += int(h)
        total = num_passes * len(self.regions)
        self.samples_taken += total
        self._samples_this_window += num_passes
        self.costs.charge(total * SAMPLE_COST_US, "pte_sample")

    # ------------------------------------------------------------------
    # aggregation (merge/split)

    def _merge_regions(self) -> None:
        merged: List[Region] = []
        for region in self.regions:
            if (
                merged
                and abs(merged[-1].nr_accesses - region.nr_accesses)
                <= self.merge_threshold
                and len(self.regions) > self.min_nr_regions
            ):
                last = merged[-1]
                total = last.size + region.size
                last.nr_accesses = (
                    last.nr_accesses * last.size + region.nr_accesses * region.size
                ) // total
                last.end = region.end
            else:
                merged.append(region)
        self.regions = merged

    def _split_regions(self) -> None:
        if len(self.regions) * 2 > self.max_nr_regions:
            return
        split: List[Region] = []
        for region in self.regions:
            if region.size < 2:
                split.append(region)
                continue
            lo = region.start + max(1, region.size // 4)
            hi = region.end - max(1, region.size // 4)
            cut = int(self._rng.integers(lo, max(lo + 1, hi)))
            split.append(Region(region.start, cut, region.nr_accesses))
            split.append(Region(cut, region.end, region.nr_accesses))
        self.regions = split

    def _aggregate(self) -> None:
        """Score regions, promote the hottest under quota, then
        merge + split (the DAMOS hot-page scheme with a size quota)."""
        self.aggregations += 1
        self.costs.charge(AGGREGATE_COST_US, "aggregate")
        if self.batched:
            # Materialise the array counts so scoring and merge/split
            # read the same values the reference loop maintains live.
            for region, n in zip(self.regions, self._nr_accesses.tolist()):
                region.nr_accesses = int(n)
        max_samples = max(1, self._samples_this_window)
        threshold = max(1.0, self.hot_threshold * max_samples)
        # Highest scoring regions first (quota prioritisation).
        budget = self.quota_pages
        for region in sorted(
            self.regions, key=lambda r: (-r.nr_accesses, r.start)
        ):
            if region.nr_accesses < threshold or budget <= 0:
                break
            pages = np.arange(region.start, region.end)
            pages = pages[self.memory.node_map[pages] == 1][:budget]
            budget -= int(pages.size)
            self.record_hot(pages)
        self._merge_regions()
        self._split_regions()
        for region in self.regions:
            region.nr_accesses = 0
        self._nr_accesses = np.zeros(len(self.regions), dtype=np.int64)
        self._samples_this_window = 0

    def _detect(self, pages: np.ndarray, now_s: float, epoch_s: float) -> None:
        # Drive the page table/TLB so the miss-ratio estimate (and any
        # co-resident policy semantics) stay realistic.
        self.page_table.touch(pages)
        counts = np.bincount(pages, minlength=self.memory.num_logical_pages)
        end_s = now_s + epoch_s
        # Position aggregation boundaries inside the epoch; sampling
        # passes between boundaries run in batches.
        cursor = now_s
        while self._next_aggregate_s <= end_s:
            span = self._next_aggregate_s - cursor
            self._sample_passes(
                int(span / self.sampling_interval_s), counts, epoch_s
            )
            cursor = self._next_aggregate_s
            self._next_aggregate_s += self.aggregation_interval_s
            self._aggregate()
        self._sample_debt_s += end_s - cursor
        passes = int(self._sample_debt_s / self.sampling_interval_s)
        if passes:
            self._sample_debt_s -= passes * self.sampling_interval_s
            self._sample_passes(passes, counts, epoch_s)
