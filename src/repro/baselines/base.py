"""Common interface for page-migration policies: the epoch pipeline's
``EpochPolicy`` protocol plus the CPU-driven baseline base class.

The simulation engine drives every policy — the CPU-driven baselines
*and* the M5 manager — through one contract: once per epoch it builds
an :class:`EpochView` (the epoch's page-granular access stream, the
simulated clock, and handles to the memory system) and calls
``policy.on_epoch(view)``.  The policy updates its internal detector,
accumulates CPU overhead (the §4.2 cost), appends newly identified hot
pages to its *hot-page list* (the §4.1 S1 instrumentation: "store the
PFNs of identified hot pages into a hot-page list"), and returns a
:class:`PolicyDecision` naming the pages it wants promoted plus the
epoch's identification overhead.  The engine applies the decision —
promotions first, then watermark demotions via
:meth:`EpochPolicy.demotion_victims` — so policies never mutate tier
state behind the pipeline's back (the M5 manager, whose in-kernel
Promoter *is* the migration path, is the documented exception).

:class:`MigrationPolicy` remains the base class for the CPU-driven
detectors; its legacy per-epoch feed ``on_epoch(pages, now_s,
epoch_s)`` is still accepted for direct detector-level tests.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.memory.page_table import PageTable
from repro.memory.tiers import TieredMemory

_EMPTY_PAGES = np.empty(0, dtype=np.int64)


@dataclass
class EpochView:
    """What one pipeline epoch exposes to the policy stage.

    Attributes:
        epoch: 1-based epoch index.
        lpages: the epoch's logical page access sequence, in order.
        now_s: simulated time at the start of the epoch.
        epoch_s: (estimated) duration of this epoch in simulated
            seconds — detectors with real-time cadences (scan periods,
            sampling intervals) position their events inside the epoch
            with it.
        migrate: whether this run migrates pages (False is the §4.1 S1
            identification-only mode: identify, return no promotions).
        batch_limit: maximum pages the engine migrates per epoch.
        memory: the tiered-memory system (tier occupancy, frame maps).
        mglru: the kernel's MGLRU instance — demotion-victim selection
            (:meth:`EpochPolicy.demotion_victims`) reads its coldness.
    """

    epoch: int
    lpages: np.ndarray
    now_s: float
    epoch_s: float
    migrate: bool
    batch_limit: Optional[int]
    memory: TieredMemory
    mglru: object = None


@dataclass
class PolicyDecision:
    """What the policy stage hands back to the pipeline.

    ``promotions`` are logical page ids the engine should move to DDR
    this epoch (empty in identification-only mode).  ``promoted`` /
    ``demoted`` report migrations the policy *already applied itself*
    this epoch — only the M5 manager, whose Promoter is the in-kernel
    migration path, uses them; pure identifiers leave them at zero.
    ``overhead_us`` is the epoch's identification CPU cost, and
    ``nominated`` counts pages newly nominated (telemetry only).
    """

    promotions: np.ndarray = field(default_factory=lambda: _EMPTY_PAGES)
    overhead_us: float = 0.0
    nominated: int = 0
    promoted: int = 0
    demoted: int = 0


@runtime_checkable
class EpochPolicy(Protocol):
    """The pluggable policy interface of the epoch pipeline.

    Implementations need four things:

    * ``name`` — registry-style identifier;
    * ``on_epoch(view)`` — observe one epoch, return a
      :class:`PolicyDecision`;
    * ``demotion_victims(view)`` — called *after* the decision's
      promotions were applied; return logical pages to demote (the
      TPP-style proactive watermark path).  Return an empty array when
      the policy has no proactive demotion;
    * ``hot_pfns`` — the accumulated hot-page list (identification
      order, PFNs at identification time) for §4.1 scoring;
    * ``overhead_events()`` — per-event CPU cost breakdown in µs.
    """

    name: str

    def on_epoch(self, view: EpochView) -> PolicyDecision: ...

    def demotion_victims(self, view: EpochView) -> np.ndarray: ...

    @property
    def hot_pfns(self) -> Sequence[int]: ...

    def overhead_events(self) -> Dict[str, float]: ...


@dataclass
class PolicyCosts:
    """CPU-time accounting for hot-page identification.

    All values are microseconds of kernel CPU time charged to the
    core shared with the application (the paper pins the migration
    processes and the benchmark to the same core, §6).
    """

    total_us: float = 0.0
    epoch_us: float = 0.0
    #: Per-event cost multiplier.  Under time dilation, policies whose
    #: work scales with footprint or access volume (ANB unmaps/faults,
    #: full PTE scans, PEBS samples) charge dilated costs, because the
    #: real system does `scale` times more of that work than the
    #: scaled-down model; rate-based policies (DAMON's fixed-region
    #: sampling) keep scale = 1.
    scale: float = 1.0
    events: dict = field(default_factory=dict)

    def charge(self, us: float, event: str) -> None:
        us *= self.scale
        self.total_us += us
        self.epoch_us += us
        self.events[event] = self.events.get(event, 0.0) + us

    def begin_epoch(self) -> None:
        self.epoch_us = 0.0


class MigrationPolicy(abc.ABC):
    """Base class for hot-page identification + migration policies.

    Subclasses implement :meth:`_detect`; the base class provides the
    full :class:`EpochPolicy` contract on top of it.
    """

    name = "base"

    def __init__(
        self,
        memory: TieredMemory,
        page_table: Optional[PageTable] = None,
        batched: bool = True,
    ):
        self.memory = memory
        self.page_table = (
            page_table
            if page_table is not None
            else PageTable(
                memory.num_logical_pages,
                tenant=getattr(memory, "tenant", 0),
            )
        )
        self.costs = PolicyCosts()
        #: Engine selector for the hot-page bookkeeping: vectorized
        #: first-occurrence filtering vs the per-page reference loop.
        self.batched = bool(batched)
        # Hot-page list: logical page ids in identification order, plus
        # the PFN each page had when identified (for PAC lookups).
        self.hot_pages: List[int] = []
        self.hot_pfns: List[int] = []
        self._hot_seen = set()
        # Boolean mirror of _hot_seen for vectorized filtering.
        self._hot_mask = np.zeros(memory.num_logical_pages, dtype=bool)
        self._pending_candidates: List[int] = []

    # ------------------------------------------------------------------
    # identification

    def record_hot(self, logical_pages) -> None:
        """Append newly identified hot pages to the hot-page list."""
        pages = np.atleast_1d(np.asarray(logical_pages, dtype=np.int64))
        if not self.batched:
            self._record_hot_reference(pages)
            return
        if pages.size == 0:
            return
        # First occurrence of each unseen page, in stream order — the
        # order the reference loop appends in.
        uniq, first_pos = np.unique(pages, return_index=True)
        uniq = uniq[np.argsort(first_pos, kind="stable")]
        fresh = uniq[~self._hot_mask[uniq]]
        if fresh.size == 0:
            return
        self._hot_mask[fresh] = True
        fresh_list = fresh.tolist()
        self._hot_seen.update(fresh_list)
        self.hot_pages.extend(fresh_list)
        self.hot_pfns.extend(self.memory.frame_map[fresh].tolist())
        self._pending_candidates.extend(fresh_list)

    def _record_hot_reference(self, pages: np.ndarray) -> None:
        """One membership test and append per page — the reference
        engine."""
        for lpage in pages.tolist():
            if lpage in self._hot_seen:
                continue
            self._hot_seen.add(lpage)
            self._hot_mask[lpage] = True
            self.hot_pages.append(lpage)
            self.hot_pfns.append(int(self.memory.frame_map[lpage]))
            self._pending_candidates.append(lpage)

    def observe(self, pages: np.ndarray, now_s: float, epoch_s: float = 1.0) -> None:
        """Feed one epoch of page accesses through the detector.

        Args:
            pages: the epoch's logical page access sequence.
            now_s: simulated time at the start of the epoch.
            epoch_s: (estimated) duration of this epoch in simulated
                seconds.
        """
        self.costs.begin_epoch()
        self._detect(np.asarray(pages, dtype=np.int64), float(now_s), float(epoch_s))
        self.page_table.tlb.age()

    def on_epoch(self, view, now_s: Optional[float] = None, epoch_s: float = 1.0):
        """Run the policy stage of one pipeline epoch.

        Given an :class:`EpochView`, this is the :class:`EpochPolicy`
        entry point: feed the detector and return a
        :class:`PolicyDecision`.  The legacy detector-level signature
        ``on_epoch(pages, now_s, epoch_s)`` is still accepted (it only
        feeds the detector and returns ``None``).
        """
        if not isinstance(view, EpochView):
            self.observe(view, 0.0 if now_s is None else now_s, epoch_s)
            return None
        self.observe(view.lpages, view.now_s, view.epoch_s)
        decision = PolicyDecision(overhead_us=self.costs.epoch_us)
        if view.migrate:
            decision.promotions = self.migration_candidates(view.batch_limit)
            decision.nominated = int(decision.promotions.size)
        return decision

    @abc.abstractmethod
    def _detect(self, pages: np.ndarray, now_s: float, epoch_s: float) -> None: ...

    # ------------------------------------------------------------------
    # migration

    def migration_candidates(self, limit: Optional[int] = None) -> np.ndarray:
        """Hot pages identified since the last call (FIFO order)."""
        take = len(self._pending_candidates) if limit is None else int(limit)
        batch = self._pending_candidates[:take]
        self._pending_candidates = self._pending_candidates[take:]
        return np.asarray(batch, dtype=np.int64)

    def demotion_victims(self, view: EpochView) -> np.ndarray:
        """Proactive demotions, chosen after promotions were applied.

        Most baselines demote only on allocation pressure (the engine
        evicts an MGLRU victim per promotion once DDR is full), so the
        default is none; watermark-driven policies (TPP) override.
        """
        return _EMPTY_PAGES

    def overhead_events(self) -> Dict[str, float]:
        """Per-event CPU-cost breakdown (µs), for RunResult reporting."""
        return dict(self.costs.events)

    @property
    def epoch_overhead_us(self) -> float:
        return self.costs.epoch_us

    @property
    def total_overhead_us(self) -> float:
        return self.costs.total_us


class NoMigration(MigrationPolicy):
    """The paper's baseline: leave every page on CXL DRAM."""

    name = "none"

    def _detect(self, pages: np.ndarray, now_s: float, epoch_s: float) -> None:
        # Still drive the page table so fault/TLB behaviour is
        # consistent across policies (no unmaps happen, so no faults).
        self.page_table.touch(pages)
