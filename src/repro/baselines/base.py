"""Common interface for CPU-driven page-migration policies.

The simulation engine drives every policy the same way: once per
epoch it hands over the epoch's page-granular access stream (logical
page ids, in order) and the current simulated time.  The policy
updates its internal detector, accumulates CPU overhead (the §4.2
cost), appends newly identified hot pages to its *hot-page list* (the
§4.1 S1 instrumentation: "store the PFNs of identified hot pages into
a hot-page list"), and can be asked for migration candidates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.memory.page_table import PageTable
from repro.memory.tiers import TieredMemory


@dataclass
class PolicyCosts:
    """CPU-time accounting for hot-page identification.

    All values are microseconds of kernel CPU time charged to the
    core shared with the application (the paper pins the migration
    processes and the benchmark to the same core, §6).
    """

    total_us: float = 0.0
    epoch_us: float = 0.0
    #: Per-event cost multiplier.  Under time dilation, policies whose
    #: work scales with footprint or access volume (ANB unmaps/faults,
    #: full PTE scans, PEBS samples) charge dilated costs, because the
    #: real system does `scale` times more of that work than the
    #: scaled-down model; rate-based policies (DAMON's fixed-region
    #: sampling) keep scale = 1.
    scale: float = 1.0
    events: dict = field(default_factory=dict)

    def charge(self, us: float, event: str) -> None:
        us *= self.scale
        self.total_us += us
        self.epoch_us += us
        self.events[event] = self.events.get(event, 0.0) + us

    def begin_epoch(self) -> None:
        self.epoch_us = 0.0


class MigrationPolicy(abc.ABC):
    """Base class for hot-page identification + migration policies."""

    name = "base"

    def __init__(self, memory: TieredMemory, page_table: Optional[PageTable] = None):
        self.memory = memory
        self.page_table = (
            page_table
            if page_table is not None
            else PageTable(memory.num_logical_pages)
        )
        self.costs = PolicyCosts()
        # Hot-page list: logical page ids in identification order, plus
        # the PFN each page had when identified (for PAC lookups).
        self.hot_pages: List[int] = []
        self.hot_pfns: List[int] = []
        self._hot_seen = set()
        self._pending_candidates: List[int] = []

    # ------------------------------------------------------------------
    # identification

    def record_hot(self, logical_pages) -> None:
        """Append newly identified hot pages to the hot-page list."""
        for lpage in np.atleast_1d(np.asarray(logical_pages, dtype=np.int64)).tolist():
            if lpage in self._hot_seen:
                continue
            self._hot_seen.add(lpage)
            self.hot_pages.append(lpage)
            self.hot_pfns.append(int(self.memory.frame_map[lpage]))
            self._pending_candidates.append(lpage)

    def on_epoch(self, pages: np.ndarray, now_s: float, epoch_s: float = 1.0) -> None:
        """Feed one epoch of page accesses through the detector.

        Args:
            pages: the epoch's logical page access sequence.
            now_s: simulated time at the start of the epoch.
            epoch_s: (estimated) duration of this epoch in simulated
                seconds — detectors with real-time cadences (scan
                periods, sampling intervals) position their events
                inside the epoch with it.
        """
        self.costs.begin_epoch()
        self._detect(np.asarray(pages, dtype=np.int64), float(now_s), float(epoch_s))
        self.page_table.tlb.age()

    @abc.abstractmethod
    def _detect(self, pages: np.ndarray, now_s: float, epoch_s: float) -> None: ...

    # ------------------------------------------------------------------
    # migration

    def migration_candidates(self, limit: Optional[int] = None) -> np.ndarray:
        """Hot pages identified since the last call (FIFO order)."""
        take = len(self._pending_candidates) if limit is None else int(limit)
        batch = self._pending_candidates[:take]
        self._pending_candidates = self._pending_candidates[take:]
        return np.asarray(batch, dtype=np.int64)

    @property
    def epoch_overhead_us(self) -> float:
        return self.costs.epoch_us

    @property
    def total_overhead_us(self) -> float:
        return self.costs.total_us


class NoMigration(MigrationPolicy):
    """The paper's baseline: leave every page on CXL DRAM."""

    name = "none"

    def _detect(self, pages: np.ndarray, now_s: float, epoch_s: float) -> None:
        # Still drive the page table so fault/TLB behaviour is
        # consistent across policies (no unmaps happen, so no faults).
        self.page_table.touch(pages)
