"""PEBS-style sampling: §2.1 Solution 3 (the Memtis family).

Samples one out of every ``sample_period`` DRAM accesses into a PEBS
buffer; when the buffer fills, an interrupt fires and the CPU drains
it into per-page sample counters (Memtis additionally halves counters
periodically — a cooling knob reproduced here).  Hot pages are those
whose sample count crosses a threshold.

Two properties the paper calls out:

* precision and overhead trade off through the sampling rate — the
  paper cites >15% slowdown when sampling 1/100 LLC misses [75];
* the Intel CPUs of the paper's testbed cannot PEBS-sample CXL-bound
  misses at all, which is why Memtis is *excluded* from the paper's
  hardware evaluation (§4).  The simulator has no such limitation, so
  the policy is available for what-if comparisons.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import MigrationPolicy
from repro.memory.page_table import PageTable
from repro.memory.tiers import TieredMemory

#: Cost to process one sampled record during buffer drain, us.
PROCESS_COST_US = 0.3
#: Fixed interrupt entry/exit cost per buffer drain, us.
INTERRUPT_COST_US = 4.0


class PebsSampler(MigrationPolicy):
    """Address-sampling policy with Memtis-style cooling.

    Args:
        sample_period: take 1 of every N accesses (default 1/100, the
            aggressive setting discussed in §4.2).
        buffer_records: PEBS buffer capacity (drain on full).
        hot_threshold: samples needed to declare a page hot.
        cooling_interval_s: halve all counters this often.
    """

    name = "pebs"

    def __init__(
        self,
        memory: TieredMemory,
        page_table: Optional[PageTable] = None,
        sample_period: int = 100,
        buffer_records: int = 1024,
        hot_threshold: int = 4,
        cooling_interval_s: float = 1.0,
        seed: int = 21,
        batched: bool = True,
    ):
        super().__init__(memory, page_table, batched=batched)
        if sample_period <= 0 or buffer_records <= 0 or hot_threshold <= 0:
            raise ValueError("sampling parameters must be positive")
        self.sample_period = int(sample_period)
        self.buffer_records = int(buffer_records)
        self.hot_threshold = int(hot_threshold)
        self.cooling_interval_s = float(cooling_interval_s)
        self._rng = np.random.default_rng(seed)
        self._buffer_fill = 0
        self._next_cooling_s = self.cooling_interval_s
        self._sample_counts = np.zeros(memory.num_logical_pages, dtype=np.int64)
        self.samples_taken = 0
        self.interrupts = 0

    def _detect(self, pages: np.ndarray, now_s: float, epoch_s: float) -> None:
        self.page_table.touch(pages)
        # Bernoulli thinning at 1/sample_period.
        taken = pages[self._rng.random(pages.size) < 1.0 / self.sample_period]
        self.samples_taken += int(taken.size)
        self._buffer_fill += int(taken.size)
        np.add.at(self._sample_counts, taken, 1)
        # Interrupt + drain for each buffer fill crossed.
        drains = self._buffer_fill // self.buffer_records
        if drains:
            self._buffer_fill %= self.buffer_records
            self.interrupts += drains
            self.costs.charge(drains * INTERRUPT_COST_US, "interrupt")
            self.costs.charge(
                drains * self.buffer_records * PROCESS_COST_US, "drain"
            )
            hot = np.nonzero(self._sample_counts >= self.hot_threshold)[0]
            hot = hot[self.memory.node_map[hot] == 1]
            self.record_hot(hot)
        if now_s >= self._next_cooling_s:
            self._next_cooling_s += self.cooling_interval_s
            self._sample_counts //= 2
