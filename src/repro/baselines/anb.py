"""Automatic NUMA Balancing (ANB): the hinting-page-fault baseline.

Models §2.1 Solution 1 / the kernel's NUMA balancing as the paper
evaluates it (Linux 5.19):

* a periodic scanner walks the address space, *unmapping* a window of
  pages (clearing PTE present bits and shooting down TLB entries
  across cores); the kernel default rate is ~256MB per scan period;
* a later access to an unmapped page takes a **hinting page fault**;
  the fault handler re-maps the page and records a NUMA fault for it;
* pages observed faulting (i.e. *recently touched at least once*) are
  promoted — ANB learns one bit of recency per scan window, which is
  exactly why it "often identifies warm pages as hot pages"
  (Observation 1): a page touched once looks identical to a page
  touched a million times;
* the scan period *adapts*: when scanning stops discovering new
  candidates the period backs off, which is why "ANB rarely unmaps
  pages" once migration reaches equilibrium (§7.2) — and why its
  steady-state overhead undercuts DAMON's.

CPU cost, charged to the shared core (§4.2): PTE writes + TLB
shootdowns during scanning, and fault handling on every hinting
fault — the latter dominates and scales with application access
breadth, which is how ANB inflates kernel CPU cycles by up to 487%
and Redis p99 by 34%.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import MigrationPolicy
from repro.memory.page_table import PageTable
from repro.memory.tiers import TieredMemory
from repro.memory.tlb import TlbShootdownModel

#: Kernel-ish cost constants (microseconds).
UNMAP_COST_US = 0.25       # PTE walk + write per sampled page
FAULT_COST_US = 2.5        # hinting-fault entry/exit + NUMA accounting

DEFAULT_SCAN_PERIOD_S = 0.1
MIN_SCAN_PERIOD_S = 0.1
MAX_SCAN_PERIOD_S = 60.0  # Linux numa_balancing_scan_period_max default
#: Period adaptation: back off when a window discovers few new pages.
BACKOFF_NOVELTY = 0.10
BACKOFF_FACTOR = 1.5
SPEEDUP_FACTOR = 1.25


class AutoNumaBalancing(MigrationPolicy):
    """ANB model with sequential scan windows and fault promotion.

    Args:
        scan_window_pages: pages unmapped per scan period.  The default
            mirrors the kernel's 256MB-per-second rate: with the
            default 0.1s period this walks the footprint in tens of
            seconds of simulated time.
        scan_period_s: initial time between scan windows (adapts).
        two_touch: require a second fault in the same residency window
            before promoting (kernel behaviour for shared pages).
    """

    name = "anb"

    def __init__(
        self,
        memory: TieredMemory,
        page_table: Optional[PageTable] = None,
        scan_window_pages: Optional[int] = None,
        scan_period_s: float = DEFAULT_SCAN_PERIOD_S,
        two_touch: bool = False,
        shootdown_model: Optional[TlbShootdownModel] = None,
        adaptive: bool = True,
        seed: int = 7,
        batched: bool = True,
    ):
        super().__init__(memory, page_table, batched=batched)
        n = memory.num_logical_pages
        self.scan_window_pages = (
            int(scan_window_pages) if scan_window_pages else max(16, n // 256)
        )
        self.scan_period_s = float(scan_period_s)
        self.two_touch = bool(two_touch)
        self.adaptive = bool(adaptive)
        self.shootdowns = (
            shootdown_model if shootdown_model is not None else TlbShootdownModel()
        )
        # The kernel's scan iterator starts wherever the task's VMA
        # walk happens to begin — model with a random offset so the
        # cursor is uncorrelated with the workload's own layout.
        self._scan_cursor = int(np.random.default_rng(seed).integers(n))
        self._next_scan_s = 0.0
        self._fault_count = np.zeros(n, dtype=np.int32)
        self._last_window_unmapped = 0
        self._hot_before_window = 0
        self.pages_unmapped = 0
        self.faults_handled = 0
        self.scan_windows = 0

    def _adapt_period(self) -> None:
        """Back off when the previous window found little new."""
        if not self.adaptive or self._last_window_unmapped == 0:
            return
        novelty = (len(self.hot_pages) - self._hot_before_window) / max(
            1, self._last_window_unmapped
        )
        if novelty < BACKOFF_NOVELTY:
            self.scan_period_s = min(
                self.scan_period_s * BACKOFF_FACTOR, MAX_SCAN_PERIOD_S
            )
        else:
            self.scan_period_s = max(
                self.scan_period_s / SPEEDUP_FACTOR, MIN_SCAN_PERIOD_S
            )

    def _scan_if_due(self, now_s: float) -> None:
        while now_s >= self._next_scan_s:
            self._adapt_period()
            self._next_scan_s += self.scan_period_s
            self._hot_before_window = len(self.hot_pages)
            n = self.memory.num_logical_pages
            window = (self._scan_cursor + np.arange(self.scan_window_pages)) % n
            self._scan_cursor = (self._scan_cursor + self.scan_window_pages) % n
            # Only CXL-resident pages need promotion hints; the kernel
            # scans slow-node VMAs.
            window = window[self.memory.node_map[window] == 1]
            unmapped = self.page_table.unmap(window)
            self.pages_unmapped += unmapped
            self.scan_windows += 1
            self._last_window_unmapped = unmapped
            self.costs.charge(unmapped * UNMAP_COST_US, "unmap")
            self.costs.charge(self.shootdowns.cost_us(unmapped), "tlb_shootdown")

    def _detect(self, pages: np.ndarray, now_s: float, epoch_s: float) -> None:
        self._scan_if_due(now_s)
        faulted_mask = self.page_table.touch(pages)
        if not faulted_mask.any():
            return
        fault_pages = np.unique(pages[faulted_mask])
        self.faults_handled += int(fault_pages.size)
        self.costs.charge(fault_pages.size * FAULT_COST_US, "hinting_fault")
        self._fault_count[fault_pages] += 1
        threshold = 2 if self.two_touch else 1
        promote = fault_pages[self._fault_count[fault_pages] >= threshold]
        self.record_hot(promote)
