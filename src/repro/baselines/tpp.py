"""TPP (Transparent Page Placement): the other hinting-fault baseline.

The paper cites TPP [42] as the latest fault-based solution but
evaluates ANB instead ("TPP has some known problems [63] that we have
also experienced").  The model is still provided for completeness —
it is the design Meta upstreamed for CXL tiering, and it differs from
plain ANB in three ways:

* **decoupled watermarks** — the fast tier keeps free headroom for new
  allocations by demoting *proactively* (kswapd-style) once free
  pages fall under a demotion watermark, instead of demoting only
  when a promotion needs room;
* **two-touch promotion filter** — a faulting page is promoted only if
  it is on the slow tier's *active list*, i.e. it was accessed
  recently before the hinting fault (approximated with a last-seen
  window), cutting cold-page ping-pong;
* **promotion rate limit** — promotions are capped per period to
  bound migration bandwidth.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.anb import FAULT_COST_US, UNMAP_COST_US
from repro.baselines.base import EpochView, MigrationPolicy
from repro.memory.page_table import PageTable
from repro.memory.tiers import NodeKind, TieredMemory
from repro.memory.tlb import TlbShootdownModel

DEFAULT_SCAN_PERIOD_S = 0.1
#: Re-fault window: the second fault must land within this horizon.
DEFAULT_REFAULT_WINDOW_S = 2.0
#: Promotion rate limit in pages per second (the kernel throttles
#: promotion bandwidth; 256 model pages/s ~ 256MB/s real at the
#: default footprint scale).
DEFAULT_PROMOTION_RATE = 256.0


class Tpp(MigrationPolicy):
    """TPP model: watermark-driven, two-touch, rate-limited.

    Args:
        demotion_watermark: fraction of DDR capacity kept free; the
            caller (engine) is expected to honour
            :meth:`demotion_candidates` each epoch.
        refault_window_s: horizon for the two-touch filter.
        promotion_rate_pages_s: promotion rate limit.
    """

    name = "tpp"

    def __init__(
        self,
        memory: TieredMemory,
        page_table: Optional[PageTable] = None,
        scan_window_pages: Optional[int] = None,
        scan_period_s: float = DEFAULT_SCAN_PERIOD_S,
        demotion_watermark: float = 0.02,
        refault_window_s: float = DEFAULT_REFAULT_WINDOW_S,
        promotion_rate_pages_s: float = DEFAULT_PROMOTION_RATE,
        shootdown_model: Optional[TlbShootdownModel] = None,
        seed: int = 11,
        batched: bool = True,
    ):
        super().__init__(memory, page_table, batched=batched)
        if not 0 <= demotion_watermark < 1:
            raise ValueError("demotion_watermark must be in [0, 1)")
        if refault_window_s <= 0 or promotion_rate_pages_s <= 0:
            raise ValueError("window and rate must be positive")
        n = memory.num_logical_pages
        self.scan_window_pages = (
            int(scan_window_pages) if scan_window_pages else max(16, n // 256)
        )
        self.scan_period_s = float(scan_period_s)
        self.demotion_watermark = float(demotion_watermark)
        self.refault_window_s = float(refault_window_s)
        self.promotion_rate_pages_s = float(promotion_rate_pages_s)
        self.shootdowns = (
            shootdown_model if shootdown_model is not None else TlbShootdownModel()
        )
        self._scan_cursor = int(np.random.default_rng(seed).integers(n))
        self._next_scan_s = 0.0
        # Last time each page was seen accessed (its "active list"
        # recency); faults on pages idle longer than the window are
        # first touches and do not promote.
        self._last_seen_s = np.full(n, -np.inf)
        self._promotion_budget = 0.0
        self._last_now_s = 0.0
        self.pages_unmapped = 0
        self.faults_handled = 0
        self.refault_promotions = 0

    def _scan_if_due(self, now_s: float) -> None:
        while now_s >= self._next_scan_s:
            self._next_scan_s += self.scan_period_s
            n = self.memory.num_logical_pages
            window = (self._scan_cursor + np.arange(self.scan_window_pages)) % n
            self._scan_cursor = (self._scan_cursor + self.scan_window_pages) % n
            window = window[self.memory.node_map[window] == 1]
            unmapped = self.page_table.unmap(window)
            self.pages_unmapped += unmapped
            self.costs.charge(unmapped * UNMAP_COST_US, "unmap")
            self.costs.charge(self.shootdowns.cost_us(unmapped), "tlb_shootdown")

    def _detect(self, pages: np.ndarray, now_s: float, epoch_s: float) -> None:
        # Refill the promotion token bucket.
        self._promotion_budget = min(
            self._promotion_budget
            + (now_s - self._last_now_s) * self.promotion_rate_pages_s,
            self.promotion_rate_pages_s * 2.0,
        )
        self._last_now_s = now_s
        self._scan_if_due(now_s)
        faulted_mask = self.page_table.touch(pages)
        if not faulted_mask.any():
            self._last_seen_s[np.unique(pages)] = now_s
            return
        fault_pages = np.unique(pages[faulted_mask])
        self.faults_handled += int(fault_pages.size)
        self.costs.charge(fault_pages.size * FAULT_COST_US, "hinting_fault")
        # Two-touch: promote only pages that were already active (seen
        # accessed within the window *before* this fault).
        since_seen = now_s - self._last_seen_s[fault_pages]
        active = fault_pages[since_seen <= self.refault_window_s]
        budget = int(self._promotion_budget)
        promote = active[:budget]
        self._promotion_budget -= promote.size
        self.refault_promotions += int(promote.size)
        self.record_hot(promote)
        self._last_seen_s[np.unique(pages)] = now_s

    def demotion_candidates(self) -> int:
        """Pages to demote proactively to restore the free watermark.

        TPP demotes ahead of allocation pressure; the engine should
        demote this many MGLRU victims when the value is positive.
        """
        target_free = int(self.memory.ddr.capacity_pages * self.demotion_watermark)
        return max(0, target_free - self.memory.ddr.free_pages)

    def demotion_victims(self, view: EpochView) -> np.ndarray:
        """kswapd-style proactive demotion: the coldest DDR-resident
        pages (per MGLRU) needed to restore the free watermark, judged
        after this epoch's promotions landed."""
        need = self.demotion_candidates()
        if need <= 0 or view.mglru is None:
            return np.empty(0, dtype=np.int64)
        ddr_pages = self.memory.pages_on(NodeKind.DDR)
        return view.mglru.coldest(need, among=ddr_pages)
