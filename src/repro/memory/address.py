"""Physical-address arithmetic shared by every subsystem.

The paper assumes a 48-bit physical address (PA) space managed in 4KB
pages, with DRAM accessed at 64B cache-line granularity.  Hence a DRAM
access is identified by ``PA[47:6]`` and the page frame number (PFN) by
``PA[47:12]``.  Word indices within a page are ``PA[11:6]`` (64 words of
64B per 4KB page).

All helpers accept either Python ints or numpy integer arrays so the
hot simulation paths stay vectorised.
"""

from __future__ import annotations

import numpy as np

#: Bytes per 64B word (one cache line).
WORD_SIZE = 64
#: log2(WORD_SIZE)
WORD_SHIFT = 6
#: Bytes per 4KB page.
PAGE_SIZE = 4096
#: log2(PAGE_SIZE)
PAGE_SHIFT = 12
#: 64B words per 4KB page.
WORDS_PER_PAGE = PAGE_SIZE // WORD_SIZE
#: log2(WORDS_PER_PAGE)
WORDS_PER_PAGE_SHIFT = PAGE_SHIFT - WORD_SHIFT
#: Width of the physical address space assumed throughout the paper.
PA_BITS = 48
#: Highest valid physical address (exclusive).
PA_SPACE = 1 << PA_BITS

#: Per-tenant window stride inside each tier's PA region (1TB): fleet
#: tenant ``t`` owns ``[tier_base + t*stride, tier_base + (t+1)*stride)``
#: of every tier, so frames of different tenants can never collide.
TENANT_PA_STRIDE = 1 << 40


def page_of(pa):
    """Return the PFN (``PA[47:12]``) for a byte address."""
    return pa >> PAGE_SHIFT


def word_line_of(pa):
    """Return the global 64B word (cache-line) index, ``PA[47:6]``."""
    return pa >> WORD_SHIFT


def word_index_in_page(pa):
    """Return the word index within the page, ``PA[11:6]`` in [0, 64)."""
    return (pa >> WORD_SHIFT) & (WORDS_PER_PAGE - 1)


def page_of_word_line(line):
    """Convert a 64B word-line index back to its PFN.

    This is the 6-bit right shift performed by the address-to-PFN
    converter in the PAC hardware (Figure 2).
    """
    return line >> WORDS_PER_PAGE_SHIFT


def word_index_of_line(line):
    """Return the in-page word index of a 64B word-line index."""
    return line & (WORDS_PER_PAGE - 1)


def pa_of_page(pfn):
    """Return the base byte address of a page."""
    return pfn << PAGE_SHIFT


def pa_of_word_line(line):
    """Return the base byte address of a 64B word line."""
    return line << WORD_SHIFT


def pages_for_bytes(nbytes: int) -> int:
    """Number of whole 4KB pages needed to cover ``nbytes``."""
    return -(-int(nbytes) // PAGE_SIZE)


def validate_pa(pa: int) -> int:
    """Validate a single physical byte address and return it.

    Raises:
        ValueError: if the address lies outside the 48-bit PA space.
    """
    if not 0 <= pa < PA_SPACE:
        raise ValueError(f"physical address {pa:#x} outside 48-bit space")
    return pa


class AddressRegion:
    """A contiguous physical address region ``[start, start + size)``.

    Used both for the device memory window exposed by the CXL
    controller and for the WAC monitoring window (the paper monitors a
    128MB region at a time, §3 "Scalability").
    """

    __slots__ = ("start", "size")

    def __init__(self, start: int, size: int):
        if size <= 0:
            raise ValueError("region size must be positive")
        validate_pa(start)
        validate_pa(start + size - 1)
        self.start = int(start)
        self.size = int(size)

    @property
    def end(self) -> int:
        """Exclusive end byte address."""
        return self.start + self.size

    @property
    def num_pages(self) -> int:
        return pages_for_bytes(self.size)

    @property
    def num_word_lines(self) -> int:
        return -(-self.size // WORD_SIZE)

    @property
    def first_page(self) -> int:
        return page_of(self.start)

    def contains(self, pa):
        """Vectorised membership test for byte addresses."""
        return (pa >= self.start) & (pa < self.end)

    def contains_page(self, pfn):
        """Vectorised membership test for PFNs."""
        return (pfn >= page_of(self.start)) & (pfn < page_of(self.end - 1) + 1)

    def offset_of(self, pa):
        """Byte offset of ``pa`` inside the region (no bounds check)."""
        return pa - self.start

    def __repr__(self) -> str:
        return f"AddressRegion(start={self.start:#x}, size={self.size:#x})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AddressRegion)
            and self.start == other.start
            and self.size == other.size
        )

    def __hash__(self) -> int:
        return hash((self.start, self.size))


def tenant_window(
    tier_base: int,
    tenant: int,
    size: int,
    stride: int = TENANT_PA_STRIDE,
) -> AddressRegion:
    """Tenant ``tenant``'s private PA window inside one tier.

    Tier regions are carved into fixed-stride slots, one per tenant,
    so the windows of any two tenants are disjoint by construction
    (the tenant-isolation property the fleet's Hypothesis tests
    assert).  Tenant 0's window starts exactly at ``tier_base``,
    keeping single-tenant layouts bit-identical to the historical
    two-node map.
    """
    if tenant < 0:
        raise ValueError("tenant must be non-negative")
    if size > stride:
        raise ValueError(
            f"tenant window of {size:#x} bytes exceeds the "
            f"{stride:#x}-byte per-tenant stride"
        )
    return AddressRegion(tier_base + tenant * stride, size)


def as_line_array(addresses) -> np.ndarray:
    """Coerce byte addresses to a uint64 array of 64B line indices."""
    arr = np.asarray(addresses, dtype=np.uint64)
    return arr >> np.uint64(WORD_SHIFT)


def as_page_array(addresses) -> np.ndarray:
    """Coerce byte addresses to a uint64 array of PFNs."""
    arr = np.asarray(addresses, dtype=np.uint64)
    return arr >> np.uint64(PAGE_SHIFT)
