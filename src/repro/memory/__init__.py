"""Tiered-memory substrate: addresses, nodes, page table, TLB, MGLRU,
and the page-migration engine."""

from repro.memory.address import (
    PAGE_SHIFT,
    PAGE_SIZE,
    WORD_SHIFT,
    WORD_SIZE,
    WORDS_PER_PAGE,
    AddressRegion,
)
from repro.memory.tiers import MemoryNode, NodeKind, TieredMemory
from repro.memory.page_table import PageTable
from repro.memory.tlb import Tlb, TlbShootdownModel
from repro.memory.mglru import MultiGenLru
from repro.memory.migration import MigrationEngine, MigrationCostModel, PinReason
from repro.memory.ifmm import FlatMemoryMode, IfmmStats

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "WORD_SHIFT",
    "WORD_SIZE",
    "WORDS_PER_PAGE",
    "AddressRegion",
    "MemoryNode",
    "NodeKind",
    "TieredMemory",
    "PageTable",
    "Tlb",
    "TlbShootdownModel",
    "MultiGenLru",
    "MigrationEngine",
    "MigrationCostModel",
    "PinReason",
    "FlatMemoryMode",
    "IfmmStats",
]
