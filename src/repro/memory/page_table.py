"""Page-table model exposing the PTE bits the baselines depend on.

CPU-driven page-migration solutions manipulate two PTE bits:

* the **present bit** — ANB-style solutions clear it ("unmap") so the
  next access raises a hinting page fault (§2.1 Solution 1);
* the **access bit** — PTE-scanning solutions read-and-clear it each
  epoch (§2.1 Solution 2); crucially the bit can only be set again
  after the cached TLB entry for the page is evicted, which this model
  enforces via the attached :class:`~repro.memory.tlb.Tlb`.

The table is indexed by *logical* page number; frame placement lives
in :class:`~repro.memory.tiers.TieredMemory`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.memory.tlb import Tlb


class PageTable:
    """Vectorised PTE array for one application.

    ``tenant`` tags the table with its owning fleet tenant (0 for
    single-run simulations): each tenant has its own address space,
    and the tag is what the isolation tests key ownership on.
    """

    def __init__(
        self, num_pages: int, tlb: Optional[Tlb] = None, tenant: int = 0
    ):
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        if tenant < 0:
            raise ValueError("tenant must be non-negative")
        self.num_pages = int(num_pages)
        self.tenant = int(tenant)
        self.present = np.ones(num_pages, dtype=bool)
        self.accessed = np.zeros(num_pages, dtype=bool)
        self.tlb = tlb if tlb is not None else Tlb(num_pages)
        # counters for overhead accounting
        self.hinting_faults = 0
        self.pte_writes = 0

    def touch(self, pages: np.ndarray) -> np.ndarray:
        """Apply a batch of page accesses.

        Sets the access bit for pages whose translation misses the TLB
        (hardware sets the A bit on a page walk; a TLB hit bypasses the
        walk so the bit stays stale — the §2.1 Solution 2 caveat).

        Returns:
            Boolean mask of accesses that raised hinting page faults
            (page not present).
        """
        pages = np.asarray(pages, dtype=np.int64)
        faulted = ~self.present[pages]
        if faulted.any():
            fault_pages = np.unique(pages[faulted])
            self.present[fault_pages] = True
            self.hinting_faults += int(fault_pages.size)
            self.pte_writes += int(fault_pages.size)
        missed = self.tlb.access(pages)
        walk_pages = pages[missed]
        if walk_pages.size:
            self.accessed[walk_pages] = True
        return faulted

    def unmap(self, pages: np.ndarray) -> int:
        """Clear present bits + shoot down TLB entries (ANB sampling).

        Returns the number of pages actually unmapped.
        """
        pages = np.asarray(pages, dtype=np.int64)
        was_present = self.present[pages]
        self.present[pages] = False
        self.pte_writes += int(was_present.sum())
        self.tlb.shootdown(pages)
        return int(was_present.sum())

    def scan_and_clear_accessed(self, pages: np.ndarray) -> np.ndarray:
        """Read-and-clear access bits over ``pages`` (DAMON/PTE-scan).

        Returns the boolean access-bit snapshot before clearing.
        """
        pages = np.asarray(pages, dtype=np.int64)
        snapshot = self.accessed[pages].copy()
        self.accessed[pages] = False
        self.pte_writes += int(pages.size)
        return snapshot

    def reset_counters(self) -> None:
        self.hinting_faults = 0
        self.pte_writes = 0
