"""TLB model: cached translations, passive eviction, and shootdowns.

Two behaviours matter for reproducing the paper:

1. **Access-bit staleness** (§2.1 Solution 2): the PTE access bit is
   set only on a page walk, i.e. on a TLB *miss*.  While a page's
   translation stays cached, further accesses leave the bit untouched,
   so scanners undercount hot pages that stay TLB-resident.  The model
   caches up to ``capacity`` translations with random replacement plus
   a per-epoch decay probability standing in for context switches and
   conflict misses ("passively invalidates TLB entries, depending on
   architectural events").

2. **Shootdown cost** (§2.1 Solution 1): ANB-style unmapping must
   invalidate entries across all cores; each shootdown costs CPU
   cycles on every core, which the overhead model charges.
"""

from __future__ import annotations

import numpy as np


class TlbShootdownModel:
    """CPU cost constants for TLB invalidations.

    The default per-shootdown cost is in the range reported for IPI
    based shootdowns on multi-core Xeons (a few microseconds of
    combined sender/receiver work).
    """

    def __init__(self, cost_us_per_shootdown: float = 4.0, num_cores: int = 8):
        if cost_us_per_shootdown < 0:
            raise ValueError("cost must be non-negative")
        self.cost_us_per_shootdown = float(cost_us_per_shootdown)
        self.num_cores = int(num_cores)

    def cost_us(self, num_shootdowns: int) -> float:
        return num_shootdowns * self.cost_us_per_shootdown


class Tlb:
    """Set-of-pages TLB with random replacement.

    Args:
        num_pages: size of the logical page space.
        capacity: number of cached translations (Xeon-class second
            level TLBs hold a few thousand 4K entries).
        decay: per-``age()`` probability that a cached entry is evicted
            by background architectural events.
        seed: RNG seed for reproducible replacement.
    """

    def __init__(
        self,
        num_pages: int,
        capacity: int = 2048,
        decay: float = 0.20,
        seed: int = 1234,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        self.num_pages = int(num_pages)
        self.capacity = int(capacity)
        self.decay = float(decay)
        self._rng = np.random.default_rng(seed)
        self._cached = np.zeros(num_pages, dtype=bool)
        self._resident = 0
        self.misses = 0
        self.hits = 0
        self.shootdowns = 0

    @property
    def resident(self) -> int:
        return self._resident

    def access(self, pages: np.ndarray) -> np.ndarray:
        """Look up a batch of pages; cache the missing translations.

        Returns:
            Boolean mask (aligned with ``pages``) of accesses that
            missed the TLB — i.e. that performed a page walk and set
            the PTE access bit.
        """
        pages = np.asarray(pages, dtype=np.int64)
        missed = ~self._cached[pages]
        self.hits += int((~missed).sum())
        new_pages = np.unique(pages[missed])
        self.misses += int(missed.sum())
        if new_pages.size:
            self._insert(new_pages)
        return missed

    def _insert(self, new_pages: np.ndarray) -> None:
        overflow = self._resident + new_pages.size - self.capacity
        if overflow > 0:
            resident_pages = np.nonzero(self._cached)[0]
            evict = self._rng.choice(
                resident_pages, size=min(overflow, resident_pages.size), replace=False
            )
            self._cached[evict] = False
            self._resident -= int(evict.size)
        self._cached[new_pages] = True
        self._resident += int(new_pages.size)
        if self._resident > self.capacity:
            # more new pages than capacity: keep a random subset
            resident_pages = np.nonzero(self._cached)[0]
            evict = self._rng.choice(
                resident_pages, size=self._resident - self.capacity, replace=False
            )
            self._cached[evict] = False
            self._resident = self.capacity

    def shootdown(self, pages: np.ndarray) -> int:
        """Invalidate specific pages (active shootdown, ANB-style).

        Returns the number of entries actually invalidated.
        """
        pages = np.asarray(pages, dtype=np.int64)
        present = self._cached[pages]
        n = int(present.sum())
        self._cached[pages] = False
        self._resident -= n
        self.shootdowns += int(pages.size)
        return n

    def age(self) -> None:
        """Apply background eviction (context switches, conflicts)."""
        if self._resident == 0 or self.decay == 0.0:
            return
        resident_pages = np.nonzero(self._cached)[0]
        drop = self._rng.random(resident_pages.size) < self.decay
        self._cached[resident_pages[drop]] = False
        self._resident -= int(drop.sum())

    def flush(self) -> None:
        self._cached[:] = False
        self._resident = 0
