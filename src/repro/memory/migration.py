"""Page-migration engine: the model behind ``migrate_pages()``.

Carries the paper's cost arithmetic: migrating one 4KB page costs
about 54 microseconds on the testbed (§7.2), so a migrated page must
collect ≳318 extra DDR hits (54us / (270ns − 100ns)) before migration
pays off.  The engine also implements Promoter's safety checks
(§5.2 ④): pages pinned for DMA or explicitly bound to a device node
are rejected rather than migrated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.memory.mglru import MultiGenLru
from repro.memory.tiers import NodeKind, TieredMemory


class PinReason(enum.Enum):
    """Why a page cannot be migrated (Promoter's rejection cases)."""

    NONE = "none"
    DMA = "dma"
    NODE_BOUND = "node_bound"


class MigrationCostModel:
    """Time cost of page promotion/demotion.

    Args:
        cost_us_per_page: end-to-end cost of moving one 4KB page
            (unmap, copy, remap, TLB shootdown); paper: ~54 us.
    """

    def __init__(self, cost_us_per_page: float = 54.0):
        if cost_us_per_page < 0:
            raise ValueError("cost must be non-negative")
        self.cost_us_per_page = float(cost_us_per_page)

    def cost_us(self, num_pages: int) -> float:
        return num_pages * self.cost_us_per_page

    def breakeven_accesses(
        self, slow_latency_ns: float = 270.0, fast_latency_ns: float = 100.0
    ) -> float:
        """Accesses needed to amortise one migration (§7.2: ≈318)."""
        delta = slow_latency_ns - fast_latency_ns
        if delta <= 0:
            return float("inf")
        return self.cost_us_per_page * 1000.0 / delta


@dataclass
class MigrationStats:
    """Aggregate outcome of migration activity."""

    promoted: int = 0
    demoted: int = 0
    rejected: int = 0
    time_us: float = 0.0
    rejected_by_reason: Dict[PinReason, int] = field(default_factory=dict)


class MigrationEngine:
    """Moves pages between tiers, demoting via MGLRU when DDR is full."""

    def __init__(
        self,
        memory: TieredMemory,
        cost_model: Optional[MigrationCostModel] = None,
        mglru: Optional[MultiGenLru] = None,
        ddr_reserve_pages: int = 0,
        batched: bool = True,
    ):
        self.memory = memory
        self.cost_model = cost_model if cost_model is not None else MigrationCostModel()
        self.mglru = (
            mglru if mglru is not None else MultiGenLru(memory.num_logical_pages)
        )
        self.ddr_reserve_pages = int(ddr_reserve_pages)
        #: Engine selector: bulk frame moves vs the per-page reference
        #: loop.  The batched path reproduces the reference loop's
        #: frame assignments exactly (see :meth:`promote`).
        self.batched = bool(batched)
        self._pins = np.zeros(memory.num_logical_pages, dtype=np.int8)
        # Cached "any page pinned" flag so the promote fast path does
        # not pay an O(footprint) any() per call.
        self._has_pins = False
        self._PIN_CODE = {
            PinReason.NONE: 0,
            PinReason.DMA: 1,
            PinReason.NODE_BOUND: 2,
        }
        self._CODE_PIN = {v: k for k, v in self._PIN_CODE.items()}
        self.stats = MigrationStats()

    def pin(self, pages: np.ndarray, reason: PinReason) -> None:
        """Mark pages as unmigratable (DMA-pinned or node-bound)."""
        if reason is PinReason.NONE:
            raise ValueError("use unpin() to clear pins")
        self._pins[np.asarray(pages, dtype=np.int64)] = self._PIN_CODE[reason]
        self._has_pins = True

    def unpin(self, pages: np.ndarray) -> None:
        self._pins[np.asarray(pages, dtype=np.int64)] = 0
        self._has_pins = bool(self._pins.any())

    def pin_reason(self, page: int) -> PinReason:
        return self._CODE_PIN[int(self._pins[page])]

    def _reject_pinned(self, pages: np.ndarray) -> np.ndarray:
        pages = np.asarray(pages, dtype=np.int64)
        pinned = self._pins[pages] != 0
        for code in np.unique(self._pins[pages][pinned]):
            reason = self._CODE_PIN[int(code)]
            n = int((self._pins[pages] == code).sum())
            self.stats.rejected_by_reason[reason] = (
                self.stats.rejected_by_reason.get(reason, 0) + n
            )
        self.stats.rejected += int(pinned.sum())
        return pages[~pinned]

    def promote(self, pages: np.ndarray) -> int:
        """Migrate logical pages to DDR, demoting MGLRU victims as needed.

        Mirrors the paper's end-to-end methodology (§7): "After the
        given DDR DRAM capacity is used up, whenever the page-migration
        solution migrates a certain number of pages to DDR DRAM, it
        demotes the same number of pages to CXL DRAM."

        Returns:
            Number of pages actually promoted.
        """
        # One request moves a page once: dedupe before any accounting.
        pages = np.unique(np.asarray(pages, dtype=np.int64))
        pages = self._reject_pinned(pages)
        # Drop pages already on DDR.
        on_cxl = pages[self.memory.node_map[pages] == 1]
        if on_cxl.size == 0:
            return 0
        budget = self.memory.ddr.free_pages - self.ddr_reserve_pages
        free = min(max(budget, 0), int(on_cxl.size))
        paired = int(on_cxl.size) - free
        # The bulk path must reproduce the reference loop's frame
        # assignments exactly.  Pins re-enter the picture mid-loop
        # (a pinned victim perturbs the budget), and a full CXL node
        # makes the victim demote fail — both rare; replay those
        # sequentially rather than modelling them twice.
        if (not self.batched or self._has_pins
                or (paired > 0 and self.memory.cxl.free_pages < 1)):
            promoted = self._promote_reference(pages, on_cxl, budget)
        else:
            promoted = free
            if free:
                self.memory.move_pages(on_cxl[:free], NodeKind.DDR)
                self.mglru.track(on_cxl[:free])
            if paired:
                promoted += self._promote_paired(pages, on_cxl[free:])
        self.stats.promoted += promoted
        self.stats.time_us += self.cost_model.cost_us(promoted)
        return promoted

    def _promote_paired(self, pages: np.ndarray, remaining: np.ndarray) -> int:
        """Promote with zero DDR headroom: every promotion demotes one
        MGLRU victim, reproducing the reference loop's alternating
        demote/promote frame traffic in bulk.

        The victim list can be hoisted out of the loop: demoted victims
        leave the candidate pool, pages promoted mid-loop join it but
        are in the request (hence forbidden), and nothing else changes
        generation or heat mid-call — so the reference loop's i-th
        victim is the i-th entry of one up-front coldest() sweep with
        the requested pages masked out.

        Frame assignments follow from the LIFO free lists: each
        demotion's DDR frame is immediately reused by the paired
        promotion, so promoted page i inherits victim i's DDR frame,
        victim 0 takes the CXL free-list head, and victim i+1 takes
        promoted page i's old CXL frame.
        """
        ddr_pages = self.memory.pages_on(NodeKind.DDR)
        victims = self.mglru.coldest(len(ddr_pages), among=ddr_pages)
        victims = victims[~np.isin(victims, pages)]
        t = min(int(remaining.size), int(victims.size))
        if t == 0:
            return 0
        victims, promos = victims[:t], remaining[:t]
        frame_of = self.memory.frame_map
        ddr_frames = frame_of[victims].copy()
        cxl_frames = frame_of[promos].copy()
        victim_frames = np.empty(t, dtype=np.int64)
        victim_frames[0] = self.memory.cxl.allocate_frame()
        victim_frames[1:] = cxl_frames[:-1]
        self.memory.cxl.free_frame(int(cxl_frames[-1]))
        # The DDR free list is untouched net of the loop: each freed
        # victim frame is popped right back by the paired promotion.
        self.memory._frame_of[victims] = victim_frames
        self.memory._node_of[victims] = self.memory._NODE_CODE[NodeKind.CXL]
        self.memory._frame_of[promos] = ddr_frames
        self.memory._node_of[promos] = self.memory._NODE_CODE[NodeKind.DDR]
        self.mglru.untrack(victims)
        self.mglru.track(promos)
        self.stats.demoted += t
        self.stats.time_us += self.cost_model.cost_us(t)
        return t

    def _promote_reference(
        self, pages: np.ndarray, on_cxl: np.ndarray, budget: int
    ) -> int:
        """One demote/promote pair per page — the reference engine."""
        promoted = 0
        for lpage in on_cxl.tolist():
            if budget <= 0:
                # Demote one victim to make room; never demote a page
                # named in this request (whether being promoted now or
                # already resident on DDR).
                ddr_pages = self.memory.pages_on(NodeKind.DDR)
                forbidden = set(pages.tolist())
                victims = self.mglru.coldest(len(ddr_pages), among=ddr_pages)
                victim = next((v for v in victims.tolist() if v not in forbidden), None)
                if victim is None:
                    break
                self.demote(np.array([victim]))
                budget += 1
            self.memory.move_page(lpage, NodeKind.DDR)
            self.mglru.track(np.array([lpage]))
            promoted += 1
            budget -= 1
        return promoted

    def demote(self, pages: np.ndarray) -> int:
        """Migrate logical pages from DDR down to CXL."""
        pages = np.unique(np.asarray(pages, dtype=np.int64))
        pages = self._reject_pinned(pages)
        on_ddr = pages[self.memory.node_map[pages] == 0]
        if self.batched:
            # The reference loop stops at the first failed CXL
            # allocation, i.e. it demotes exactly the first
            # free_pages-many pages of the batch.
            demoted = min(int(on_ddr.size), self.memory.cxl.free_pages)
            if demoted:
                self.memory.move_pages(on_ddr[:demoted], NodeKind.CXL)
                self.mglru.untrack(on_ddr[:demoted])
        else:
            demoted = self._demote_reference(on_ddr)
        self.stats.demoted += demoted
        self.stats.time_us += self.cost_model.cost_us(demoted)
        return demoted

    def _demote_reference(self, on_ddr: np.ndarray) -> int:
        """One page move per demotion — the reference engine."""
        demoted = 0
        for lpage in on_ddr.tolist():
            try:
                self.memory.move_page(lpage, NodeKind.CXL)
            except MemoryError:
                break
            self.mglru.untrack(np.array([lpage]))
            demoted += 1
        return demoted

    def reset_stats(self) -> None:
        self.stats = MigrationStats()
