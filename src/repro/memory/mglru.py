"""Multi-Generation LRU (MGLRU) model for choosing demotion victims.

M5 delegates *demotion* to MGLRU (§5.2): once DDR DRAM fills up, every
promotion of a hot page must be paid for by demoting a cold page to
CXL DRAM, and MGLRU picks those victims.  The model follows the kernel
design at page granularity: pages belong to generations; a page
accessed during an aging interval is logically moved to the youngest
generation; eviction (here: demotion) scans from the oldest
generation upward.
"""

from __future__ import annotations

import numpy as np


class MultiGenLru:
    """Generation tracker over the logical page space.

    Args:
        num_pages: logical page-space size.
        num_generations: kernel default is 4 (``MAX_NR_GENS``).
    """

    def __init__(
        self, num_pages: int, num_generations: int = 4, batched: bool = True
    ):
        if num_generations < 2:
            raise ValueError("need at least 2 generations")
        self.num_pages = int(num_pages)
        self.num_generations = int(num_generations)
        #: Engine selector: vectorized generation updates vs the
        #: per-access reference loop (identical end state).
        self.batched = bool(batched)
        # Generation sequence number per page; -1 = untracked.
        self._gen = np.full(num_pages, -1, dtype=np.int64)
        # Decayed access counts, the kernel's refault/tier signal: they
        # break ties *within* a generation so a page touched once per
        # interval is evicted before one touched thousands of times.
        self._heat = np.zeros(num_pages, dtype=np.float64)
        self._max_seq = 0
        self.aging_rounds = 0

    @property
    def max_seq(self) -> int:
        return self._max_seq

    @property
    def min_seq(self) -> int:
        return max(0, self._max_seq - (self.num_generations - 1))

    def track(self, pages: np.ndarray) -> None:
        """Start tracking pages (e.g. pages promoted onto DDR).

        Newly promoted pages join the *youngest* generation, exactly
        as the kernel's promotion path does — otherwise a fresh
        promotion would be the next demotion victim and migration
        would ping-pong.
        """
        pages = np.asarray(pages, dtype=np.int64)
        fresh = self._gen[pages] < 0
        self._gen[pages[fresh]] = self._max_seq

    def untrack(self, pages: np.ndarray) -> None:
        """Stop tracking pages (e.g. after demotion off the node)."""
        pages = np.asarray(pages, dtype=np.int64)
        self._gen[pages] = -1
        self._heat[pages] = 0.0

    def record_accesses(self, pages: np.ndarray) -> None:
        """Promote accessed pages to the youngest generation.

        Repeated occurrences in the batch accumulate into the heat
        signal, so access intensity survives epoch granularity.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if not self.batched:
            self._record_accesses_reference(pages)
            return
        tracked_pages = pages[self._gen[pages] >= 0]
        self._gen[tracked_pages] = self._max_seq
        np.add.at(self._heat, tracked_pages, 1.0)

    def _record_accesses_reference(self, pages: np.ndarray) -> None:
        """One generation/heat update per access — the reference
        engine.  Generation assignment is idempotent and heat adds are
        exact integer-valued float additions, so the end state matches
        the vectorized kernel bit for bit."""
        for page in pages.tolist():
            if self._gen[page] >= 0:
                self._gen[page] = self._max_seq
                self._heat[page] += 1.0

    def age(self, heat_decay: float = 0.5) -> None:
        """Open a new youngest generation (the kernel's ``inc_max_seq``)."""
        self._max_seq += 1
        self.aging_rounds += 1
        # Clamp stragglers into the window so generation count is bounded.
        floor = self.min_seq
        tracked = self._gen >= 0
        behind = tracked & (self._gen < floor)
        self._gen[behind] = floor
        self._heat *= heat_decay

    def generation_of(self, page: int) -> int:
        """Relative generation: 0 = youngest, larger = older; -1 if untracked."""
        g = int(self._gen[page])
        if g < 0:
            return -1
        return self._max_seq - g

    def coldest(self, n: int, among: np.ndarray = None) -> np.ndarray:
        """Pick up to ``n`` demotion victims, oldest generations first.

        Args:
            among: restrict candidates to these pages (e.g. DDR-resident
                pages); defaults to every tracked page.
        """
        if among is None:
            candidates = np.nonzero(self._gen >= 0)[0]
        else:
            among = np.asarray(among, dtype=np.int64)
            candidates = among[self._gen[among] >= 0]
        if candidates.size == 0 or n <= 0:
            return np.empty(0, dtype=np.int64)
        gens = self._gen[candidates]
        # Oldest (smallest seq) first; within a generation, coldest
        # heat first; final tie broken by page id for determinism.
        order = np.lexsort((candidates, self._heat[candidates], gens))
        return candidates[order[: min(int(n), candidates.size)]]

    def tracked_count(self) -> int:
        return int((self._gen >= 0).sum())
