"""Intel Flat Memory Mode (IFMM) model: the §9 synergy discussion.

IFMM [39, 74] makes local DDR an *exclusive cache* of CXL memory at
64B-word granularity: every CXL word address is one-to-one mapped to a
DDR word slot, and accessing a CXL-resident word **swaps** it with the
word currently in its DDR slot — no page tables, no TLB shootdowns, no
4KB copies.  Its structural limitation, which the paper points out, is
the one-to-one mapping: it only works when DDR and CXL have the same
capacity, and a hot word can only displace the one word it aliases
with.

The paper proposes using M5 *with* IFMM when CXL is larger than DDR:
IFMM serves hot words in sparse pages, M5 migrates dense hot pages.
This model implements the word-swap semantics and counters so that the
synergy experiment (`benchmarks/test_ext_ifmm_synergy.py`) can compare
IFMM-alone, M5-alone, and M5+IFMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.address import WORD_SHIFT


@dataclass
class IfmmStats:
    """Access outcomes of the flat-mode controller."""

    ddr_hits: int = 0
    cxl_swaps: int = 0

    @property
    def total(self) -> int:
        return self.ddr_hits + self.cxl_swaps

    @property
    def hit_rate(self) -> float:
        return self.ddr_hits / self.total if self.total else 0.0


class FlatMemoryMode:
    """Word-granular exclusive DDR cache with one-to-one swap mapping.

    Args:
        ddr_words: number of 64B word slots in DDR.
        cxl_words: number of 64B words of CXL memory; each CXL word w
            aliases DDR slot ``w % ddr_words``.  With equal capacities
            this is the 1:1 mapping IFMM requires; with larger CXL,
            multiple CXL words contend for one slot — the regime where
            the paper says M5 must help.
        swap_extra_ns: extra latency of a swap access over a plain CXL
            read (the swap writes back the displaced word).
    """

    def __init__(self, ddr_words: int, cxl_words: int, swap_extra_ns: float = 40.0):
        if ddr_words <= 0 or cxl_words <= 0:
            raise ValueError("word counts must be positive")
        if cxl_words < ddr_words:
            raise ValueError("CXL must be at least as large as DDR")
        self.ddr_words = int(ddr_words)
        self.cxl_words = int(cxl_words)
        self.swap_extra_ns = float(swap_extra_ns)
        # For each DDR slot, which CXL word currently sits in it.
        # Initially the identity prefix: CXL word w (w < ddr_words)
        # starts in its own slot.
        self._in_slot = np.arange(self.ddr_words, dtype=np.int64)
        self.stats = IfmmStats()

    def slot_of(self, word: int) -> int:
        return int(word) % self.ddr_words

    def resident(self, word: int) -> bool:
        """Is the CXL word currently cached in DDR?"""
        return self._in_slot[self.slot_of(word)] == int(word)

    def access(self, words: np.ndarray) -> np.ndarray:
        """Access a sequence of CXL word indices (order matters).

        Returns a boolean mask: True where the access hit DDR, False
        where it swapped (served from CXL + writeback).
        """
        words = np.asarray(words, dtype=np.int64)
        hits = np.empty(words.size, dtype=bool)
        # Swap semantics are inherently sequential per slot; process
        # via python loop over a run-length-compressed view: repeated
        # consecutive accesses to the same word all hit after the
        # first.
        # lint: disable=PERF001 -- per-slot swap state makes each access
        # depend on the previous one; no vectorization preserves the
        # hit/swap sequence
        for i, word in enumerate(words.tolist()):
            slot = word % self.ddr_words
            if self._in_slot[slot] == word:
                hits[i] = True
            else:
                self._in_slot[slot] = word
                hits[i] = False
        self.stats.ddr_hits += int(hits.sum())
        self.stats.cxl_swaps += int((~hits).sum())
        return hits

    def access_addresses(self, addresses: np.ndarray, base: int = 0) -> np.ndarray:
        """Convenience: byte addresses relative to ``base``."""
        pa = np.asarray(addresses, dtype=np.uint64) - np.uint64(base)
        return self.access((pa >> np.uint64(WORD_SHIFT)).astype(np.int64))

    def service_time_ns(
        self,
        hits_mask: np.ndarray,
        ddr_latency_ns: float = 100.0,
        cxl_latency_ns: float = 270.0,
    ) -> float:
        """Aggregate service time for one access batch."""
        hits = int(np.asarray(hits_mask, dtype=bool).sum())
        misses = int(np.asarray(hits_mask).size) - hits
        return hits * ddr_latency_ns + misses * (
            cxl_latency_ns + self.swap_extra_ns
        )

    def reset(self) -> None:
        self._in_slot = np.arange(self.ddr_words, dtype=np.int64)
        self.stats = IfmmStats()
