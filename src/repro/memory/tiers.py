"""Tiered-memory model: a fast DDR node plus a slow CXL node.

The model keeps the paper's NUMA framing: CXL device memory is exposed
as a CPU-less remote NUMA node, and the application's pages live on
exactly one node at a time.  Logical (application) pages are mapped to
physical frames inside each node's physical-address region, so the
CXL controller's profilers see real physical addresses and the
migration engine can rebind pages between nodes.

The node-level statistics published here (``nr_pages``, ``bw``,
``bw_den``) are precisely the Monitor functions of Table 1.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

import numpy as np

from repro.memory.address import PAGE_SHIFT, PAGE_SIZE, AddressRegion


class NodeKind(enum.Enum):
    """Which tier a memory node belongs to."""

    DDR = "ddr"
    CXL = "cxl"


#: Default physical layout: DDR at 0, CXL device memory high in the PA
#: space, mirroring how BIOS maps HDM ranges above local DRAM.
DDR_BASE = 0x0000_0000_0000
CXL_BASE = 0x2000_0000_0000 >> 1  # 16TB mark, well clear of DDR

#: Load-to-use latencies used throughout the paper's arithmetic
#: (§7.2 break-even: 54us / (270ns - 100ns) ≈ 318 accesses).
DDR_LATENCY_NS = 100.0
CXL_LATENCY_NS = 270.0


class MemoryNode:
    """One memory node (tier) with a frame allocator and counters."""

    def __init__(
        self,
        kind: NodeKind,
        capacity_pages: int,
        base_pa: int,
        latency_ns: float,
    ):
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self.kind = kind
        self.capacity_pages = int(capacity_pages)
        self.region = AddressRegion(base_pa, capacity_pages * PAGE_SIZE)
        self.latency_ns = float(latency_ns)
        # LIFO free list of frame numbers relative to the region.
        self._free = list(range(capacity_pages - 1, -1, -1))
        self.accesses_this_epoch = 0
        self.accesses_total = 0

    @property
    def first_frame(self) -> int:
        return self.region.first_page

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return self.capacity_pages - len(self._free)

    def allocate_frame(self) -> int:
        """Allocate one frame; returns the absolute PFN."""
        if not self._free:
            raise MemoryError(f"{self.kind.value} node out of frames")
        return self.first_frame + self._free.pop()

    def free_frame(self, pfn: int) -> None:
        rel = int(pfn) - self.first_frame
        if not 0 <= rel < self.capacity_pages:
            raise ValueError(f"PFN {pfn:#x} not in {self.kind.value} node")
        self._free.append(rel)

    def record_accesses(self, n: int) -> None:
        self.accesses_this_epoch += int(n)
        self.accesses_total += int(n)

    def begin_epoch(self) -> None:
        self.accesses_this_epoch = 0


class TieredMemory:
    """DDR + CXL tiered memory with logical-page → frame mapping.

    Args:
        ddr_pages: capacity of the fast tier in pages (the paper caps
            this at ~half the footprint, e.g. 3GB DDR for ~6GB apps).
        cxl_pages: capacity of the slow tier in pages.
        num_logical_pages: the application's footprint in pages.
    """

    def __init__(
        self,
        ddr_pages: int,
        cxl_pages: int,
        num_logical_pages: int,
        ddr_latency_ns: float = DDR_LATENCY_NS,
        cxl_latency_ns: float = CXL_LATENCY_NS,
    ):
        if num_logical_pages <= 0:
            raise ValueError("num_logical_pages must be positive")
        if num_logical_pages > ddr_pages + cxl_pages:
            raise ValueError("footprint exceeds total memory capacity")
        self.ddr = MemoryNode(NodeKind.DDR, ddr_pages, DDR_BASE, ddr_latency_ns)
        self.cxl = MemoryNode(NodeKind.CXL, cxl_pages, CXL_BASE, cxl_latency_ns)
        self.num_logical_pages = int(num_logical_pages)

        # page → absolute PFN and page → node kind (vectorised maps).
        self._frame_of = np.full(num_logical_pages, -1, dtype=np.int64)
        self._node_of = np.full(num_logical_pages, -1, dtype=np.int8)
        self._NODE_CODE = {NodeKind.DDR: 0, NodeKind.CXL: 1}
        # epoch time bookkeeping for bandwidth computation
        self.epoch_seconds: float = 1.0

    # ------------------------------------------------------------------
    # allocation / placement

    def node(self, kind: NodeKind) -> MemoryNode:
        return self.ddr if kind is NodeKind.DDR else self.cxl

    def allocate_all(self, kind: NodeKind = NodeKind.CXL) -> None:
        """Allocate every logical page on one node.

        The paper's methodology (§4.1 S2 and §7.2) starts every run
        with all application pages cgroup-bound to CXL DRAM.
        """
        node = self.node(kind)
        for lpage in range(self.num_logical_pages):
            if self._frame_of[lpage] >= 0:
                raise RuntimeError("pages already allocated")
            self._frame_of[lpage] = node.allocate_frame()
            self._node_of[lpage] = self._NODE_CODE[kind]

    def allocate_interleaved(self, ddr_fraction: float, seed: int = 0) -> None:
        """Allocate pages randomly split between nodes (for the §5.2
        bandwidth-proportionality experiment).

        The split is drawn from a generator seeded by ``seed`` so the
        placement is a pure function of ``(ddr_fraction, seed)`` —
        callers thread ``SimConfig.seed`` through for experiment
        reproducibility (the default keeps the historical layout).
        """
        if not 0.0 <= ddr_fraction <= 1.0:
            raise ValueError("ddr_fraction must be in [0, 1]")
        rng = np.random.default_rng(seed)
        to_ddr = rng.random(self.num_logical_pages) < ddr_fraction
        for lpage in range(self.num_logical_pages):
            kind = NodeKind.DDR if to_ddr[lpage] else NodeKind.CXL
            node = self.node(kind)
            if node.free_pages == 0:
                kind = NodeKind.CXL if kind is NodeKind.DDR else NodeKind.DDR
                node = self.node(kind)
            self._frame_of[lpage] = node.allocate_frame()
            self._node_of[lpage] = self._NODE_CODE[kind]

    def node_of_page(self, lpage: int) -> NodeKind:
        code = self._node_of[lpage]
        if code < 0:
            raise KeyError(f"logical page {lpage} not allocated")
        return NodeKind.DDR if code == 0 else NodeKind.CXL

    def frame_of_page(self, lpage: int) -> int:
        pfn = self._frame_of[lpage]
        if pfn < 0:
            raise KeyError(f"logical page {lpage} not allocated")
        return int(pfn)

    @property
    def frame_map(self) -> np.ndarray:
        """Read-only view of the logical-page → PFN map."""
        return self._frame_of

    @property
    def node_map(self) -> np.ndarray:
        """Read-only view of page→node codes (0=DDR, 1=CXL, -1=free)."""
        return self._node_of

    def pages_on(self, kind: NodeKind) -> np.ndarray:
        """Logical page ids currently resident on ``kind``."""
        return np.nonzero(self._node_of == self._NODE_CODE[kind])[0]

    def logical_page_of_pfn(self, pfn: int) -> Optional[int]:
        """Reverse-map an absolute PFN to its logical page (or None)."""
        hits = np.nonzero(self._frame_of == int(pfn))[0]
        return int(hits[0]) if hits.size else None

    def logical_pages_of_pfns(self, pfns) -> np.ndarray:
        """Vectorised reverse map; unknown PFNs yield -1."""
        pfns = np.asarray(pfns, dtype=np.int64)
        order = np.argsort(self._frame_of)
        sorted_frames = self._frame_of[order]
        idx = np.searchsorted(sorted_frames, pfns)
        idx = np.clip(idx, 0, len(sorted_frames) - 1)
        found = sorted_frames[idx] == pfns
        out = np.full(pfns.shape, -1, dtype=np.int64)
        out[found] = order[idx[found]]
        return out

    # ------------------------------------------------------------------
    # migration primitive (cost accounting lives in MigrationEngine)

    def move_page(self, lpage: int, to: NodeKind) -> int:
        """Rebind a logical page to a frame on ``to``; returns new PFN."""
        code = self._NODE_CODE[to]
        if self._node_of[lpage] == code:
            return int(self._frame_of[lpage])
        src = self.node(self.node_of_page(lpage))
        dst = self.node(to)
        new_pfn = dst.allocate_frame()  # may raise MemoryError if full
        src.free_frame(int(self._frame_of[lpage]))
        self._frame_of[lpage] = new_pfn
        self._node_of[lpage] = code
        return new_pfn

    # ------------------------------------------------------------------
    # access path

    def translate(self, logical_addresses: np.ndarray) -> np.ndarray:
        """Translate logical byte addresses to physical byte addresses."""
        la = np.asarray(logical_addresses, dtype=np.uint64)
        lpages = (la >> np.uint64(PAGE_SHIFT)).astype(np.int64)
        frames = self._frame_of[lpages]
        if (frames < 0).any():
            raise KeyError("access to unallocated logical page")
        offset = la & np.uint64(PAGE_SIZE - 1)
        return (frames.astype(np.uint64) << np.uint64(PAGE_SHIFT)) | offset

    def record_epoch_accesses(self, logical_pages: np.ndarray) -> None:
        """Account a batch of page-granular accesses to node counters."""
        codes = self._node_of[np.asarray(logical_pages, dtype=np.int64)]
        n_ddr = int((codes == 0).sum())
        n_cxl = int((codes == 1).sum())
        self.ddr.record_accesses(n_ddr)
        self.cxl.record_accesses(n_cxl)

    def begin_epoch(self, epoch_seconds: float = 1.0) -> None:
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        self.epoch_seconds = float(epoch_seconds)
        self.ddr.begin_epoch()
        self.cxl.begin_epoch()

    # ------------------------------------------------------------------
    # Monitor statistics (Table 1)

    def nr_pages(self, kind: NodeKind) -> int:
        """Table 1 ``nr_pages(node)``: pages allocated on the node."""
        return int((self._node_of == self._NODE_CODE[kind]).sum())

    def bw(self, kind: NodeKind) -> float:
        """Table 1 ``bw(node)``: consumed read bandwidth, bytes/sec."""
        node = self.node(kind)
        return node.accesses_this_epoch * 64.0 / self.epoch_seconds

    def bw_den(self, kind: NodeKind) -> float:
        """Table 1 ``bw_den(node)``: bw per allocated capacity."""
        pages = self.nr_pages(kind)
        if pages == 0:
            return 0.0
        return self.bw(kind) / (pages * PAGE_SIZE)

    def stats(self) -> Dict[str, float]:
        """Convenience snapshot of all Monitor statistics."""
        return {
            "nr_pages_ddr": self.nr_pages(NodeKind.DDR),
            "nr_pages_cxl": self.nr_pages(NodeKind.CXL),
            "bw_ddr": self.bw(NodeKind.DDR),
            "bw_cxl": self.bw(NodeKind.CXL),
            "bw_den_ddr": self.bw_den(NodeKind.DDR),
            "bw_den_cxl": self.bw_den(NodeKind.CXL),
        }
