"""Tiered-memory model: a fast DDR node plus a slow CXL node.

The model keeps the paper's NUMA framing: CXL device memory is exposed
as a CPU-less remote NUMA node, and the application's pages live on
exactly one node at a time.  Logical (application) pages are mapped to
physical frames inside each node's physical-address region, so the
CXL controller's profilers see real physical addresses and the
migration engine can rebind pages between nodes.

The node-level statistics published here (``nr_pages``, ``bw``,
``bw_den``) are precisely the Monitor functions of Table 1.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

import numpy as np

from repro.memory.address import PAGE_SHIFT, PAGE_SIZE, AddressRegion


class NodeKind(enum.Enum):
    """Which tier a memory node belongs to."""

    DDR = "ddr"
    CXL = "cxl"


#: Default physical layout: DDR at 0, CXL device memory high in the PA
#: space, mirroring how BIOS maps HDM ranges above local DRAM.
DDR_BASE = 0x0000_0000_0000
CXL_BASE = 0x2000_0000_0000 >> 1  # 16TB mark, well clear of DDR

#: Load-to-use latencies used throughout the paper's arithmetic
#: (§7.2 break-even: 54us / (270ns - 100ns) ≈ 318 accesses).
DDR_LATENCY_NS = 100.0
CXL_LATENCY_NS = 270.0


class MemoryNode:
    """One memory node (tier) with a frame allocator and counters."""

    def __init__(
        self,
        kind: NodeKind,
        capacity_pages: int,
        base_pa: int,
        latency_ns: float,
    ):
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self.kind = kind
        self.capacity_pages = int(capacity_pages)
        self.region = AddressRegion(base_pa, capacity_pages * PAGE_SIZE)
        self.latency_ns = float(latency_ns)
        # LIFO free list of frame numbers relative to the region.
        self._free = list(range(capacity_pages - 1, -1, -1))
        self.accesses_this_epoch = 0
        self.accesses_total = 0

    @property
    def first_frame(self) -> int:
        return self.region.first_page

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return self.capacity_pages - len(self._free)

    def allocate_frame(self) -> int:
        """Allocate one frame; returns the absolute PFN."""
        if not self._free:
            raise MemoryError(f"{self.kind.value} node out of frames")
        return self.first_frame + self._free.pop()

    def allocate_frames(self, n: int) -> np.ndarray:
        """Allocate ``n`` frames at once; absolute PFNs in pop order.

        Identical frames, in the identical order, as ``n`` calls to
        :meth:`allocate_frame` — the free list is LIFO, so the batch is
        the reversed tail.
        """
        n = int(n)
        if n > len(self._free):
            raise MemoryError(f"{self.kind.value} node out of frames")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        rels = self._free[-1:-n - 1:-1]
        del self._free[-n:]
        return self.first_frame + np.asarray(rels, dtype=np.int64)

    def free_frame(self, pfn: int) -> None:
        rel = int(pfn) - self.first_frame
        if not 0 <= rel < self.capacity_pages:
            raise ValueError(f"PFN {pfn:#x} not in {self.kind.value} node")
        self._free.append(rel)

    def free_frames(self, pfns: np.ndarray) -> None:
        """Release a batch of frames, in array order (LIFO-faithful)."""
        rel = np.asarray(pfns, dtype=np.int64) - self.first_frame
        if ((rel < 0) | (rel >= self.capacity_pages)).any():
            raise ValueError(f"PFN batch not in {self.kind.value} node")
        self._free.extend(rel.tolist())

    def record_accesses(self, n: int) -> None:
        self.accesses_this_epoch += int(n)
        self.accesses_total += int(n)

    def begin_epoch(self) -> None:
        self.accesses_this_epoch = 0


class TieredMemory:
    """DDR + CXL tiered memory with logical-page → frame mapping.

    Args:
        ddr_pages: capacity of the fast tier in pages (the paper caps
            this at ~half the footprint, e.g. 3GB DDR for ~6GB apps).
        cxl_pages: capacity of the slow tier in pages.
        num_logical_pages: the application's footprint in pages.
    """

    def __init__(
        self,
        ddr_pages: int,
        cxl_pages: int,
        num_logical_pages: int,
        ddr_latency_ns: float = DDR_LATENCY_NS,
        cxl_latency_ns: float = CXL_LATENCY_NS,
        batched: bool = True,
    ):
        if num_logical_pages <= 0:
            raise ValueError("num_logical_pages must be positive")
        if num_logical_pages > ddr_pages + cxl_pages:
            raise ValueError("footprint exceeds total memory capacity")
        self.ddr = MemoryNode(NodeKind.DDR, ddr_pages, DDR_BASE, ddr_latency_ns)
        self.cxl = MemoryNode(NodeKind.CXL, cxl_pages, CXL_BASE, cxl_latency_ns)
        self.num_logical_pages = int(num_logical_pages)
        #: Engine selector for the access path: vectorized translate /
        #: accounting kernels vs per-access reference loops.  Results
        #: are identical; only the cost differs.
        self.batched = bool(batched)

        # page → absolute PFN and page → node kind (vectorised maps).
        self._frame_of = np.full(num_logical_pages, -1, dtype=np.int64)
        self._node_of = np.full(num_logical_pages, -1, dtype=np.int8)
        self._NODE_CODE = {NodeKind.DDR: 0, NodeKind.CXL: 1}
        # epoch time bookkeeping for bandwidth computation
        self.epoch_seconds: float = 1.0

    # ------------------------------------------------------------------
    # allocation / placement

    def node(self, kind: NodeKind) -> MemoryNode:
        return self.ddr if kind is NodeKind.DDR else self.cxl

    def allocate_all(self, kind: NodeKind = NodeKind.CXL) -> None:
        """Allocate every logical page on one node.

        The paper's methodology (§4.1 S2 and §7.2) starts every run
        with all application pages cgroup-bound to CXL DRAM.
        """
        node = self.node(kind)
        for lpage in range(self.num_logical_pages):
            if self._frame_of[lpage] >= 0:
                raise RuntimeError("pages already allocated")
            self._frame_of[lpage] = node.allocate_frame()
            self._node_of[lpage] = self._NODE_CODE[kind]

    def allocate_interleaved(self, ddr_fraction: float, seed: int = 0) -> None:
        """Allocate pages randomly split between nodes (for the §5.2
        bandwidth-proportionality experiment).

        The split is drawn from a generator seeded by ``seed`` so the
        placement is a pure function of ``(ddr_fraction, seed)`` —
        callers thread ``SimConfig.seed`` through for experiment
        reproducibility (the default keeps the historical layout).
        """
        if not 0.0 <= ddr_fraction <= 1.0:
            raise ValueError("ddr_fraction must be in [0, 1]")
        rng = np.random.default_rng(seed)
        to_ddr = rng.random(self.num_logical_pages) < ddr_fraction
        for lpage in range(self.num_logical_pages):
            kind = NodeKind.DDR if to_ddr[lpage] else NodeKind.CXL
            node = self.node(kind)
            if node.free_pages == 0:
                kind = NodeKind.CXL if kind is NodeKind.DDR else NodeKind.DDR
                node = self.node(kind)
            self._frame_of[lpage] = node.allocate_frame()
            self._node_of[lpage] = self._NODE_CODE[kind]

    def node_of_page(self, lpage: int) -> NodeKind:
        code = self._node_of[lpage]
        if code < 0:
            raise KeyError(f"logical page {lpage} not allocated")
        return NodeKind.DDR if code == 0 else NodeKind.CXL

    def frame_of_page(self, lpage: int) -> int:
        pfn = self._frame_of[lpage]
        if pfn < 0:
            raise KeyError(f"logical page {lpage} not allocated")
        return int(pfn)

    @property
    def frame_map(self) -> np.ndarray:
        """Read-only view of the logical-page → PFN map."""
        return self._frame_of

    @property
    def node_map(self) -> np.ndarray:
        """Read-only view of page→node codes (0=DDR, 1=CXL, -1=free)."""
        return self._node_of

    def pages_on(self, kind: NodeKind) -> np.ndarray:
        """Logical page ids currently resident on ``kind``."""
        return np.nonzero(self._node_of == self._NODE_CODE[kind])[0]

    def logical_page_of_pfn(self, pfn: int) -> Optional[int]:
        """Reverse-map an absolute PFN to its logical page (or None)."""
        hits = np.nonzero(self._frame_of == int(pfn))[0]
        return int(hits[0]) if hits.size else None

    def logical_pages_of_pfns(self, pfns) -> np.ndarray:
        """Vectorised reverse map; unknown PFNs yield -1."""
        pfns = np.asarray(pfns, dtype=np.int64)
        order = np.argsort(self._frame_of)
        sorted_frames = self._frame_of[order]
        idx = np.searchsorted(sorted_frames, pfns)
        idx = np.clip(idx, 0, len(sorted_frames) - 1)
        found = sorted_frames[idx] == pfns
        out = np.full(pfns.shape, -1, dtype=np.int64)
        out[found] = order[idx[found]]
        return out

    # ------------------------------------------------------------------
    # migration primitive (cost accounting lives in MigrationEngine)

    def move_page(self, lpage: int, to: NodeKind) -> int:
        """Rebind a logical page to a frame on ``to``; returns new PFN."""
        code = self._NODE_CODE[to]
        if self._node_of[lpage] == code:
            return int(self._frame_of[lpage])
        src = self.node(self.node_of_page(lpage))
        dst = self.node(to)
        new_pfn = dst.allocate_frame()  # may raise MemoryError if full
        src.free_frame(int(self._frame_of[lpage]))
        self._frame_of[lpage] = new_pfn
        self._node_of[lpage] = code
        return new_pfn

    def move_pages(self, lpages: np.ndarray, to: NodeKind) -> np.ndarray:
        """Bulk :meth:`move_page`: rebind ``lpages`` to frames on ``to``.

        Exactly equivalent to looping :meth:`move_page` over the array
        — destination frames come off the LIFO free list in the same
        order, and source frames are released in the same page order —
        provided no page already resides on ``to`` (callers filter, as
        the sequential loop's no-op branch would otherwise interleave
        differently).  Raises MemoryError before touching anything if
        the destination cannot hold the whole batch.
        """
        lpages = np.asarray(lpages, dtype=np.int64)
        if lpages.size == 0:
            return np.empty(0, dtype=np.int64)
        code = self._NODE_CODE[to]
        codes = self._node_of[lpages]
        if (codes < 0).any():
            raise KeyError("move of unallocated logical page")
        if (codes == code).any():
            raise ValueError("bulk move requires all pages off the target")
        new_pfns = self.node(to).allocate_frames(lpages.size)
        old_pfns = self._frame_of[lpages]
        for kind in (NodeKind.DDR, NodeKind.CXL):
            mask = codes == self._NODE_CODE[kind]
            if mask.any():
                self.node(kind).free_frames(old_pfns[mask])
        self._frame_of[lpages] = new_pfns
        self._node_of[lpages] = code
        return new_pfns

    # ------------------------------------------------------------------
    # access path

    def translate(self, logical_addresses: np.ndarray) -> np.ndarray:
        """Translate logical byte addresses to physical byte addresses."""
        if not self.batched:
            return self._translate_reference(logical_addresses)
        la = np.asarray(logical_addresses, dtype=np.uint64)
        lpages = (la >> np.uint64(PAGE_SHIFT)).astype(np.int64)
        frames = self._frame_of[lpages]
        if (frames < 0).any():
            raise KeyError("access to unallocated logical page")
        offset = la & np.uint64(PAGE_SIZE - 1)
        return (frames.astype(np.uint64) << np.uint64(PAGE_SHIFT)) | offset

    def _translate_reference(self, logical_addresses: np.ndarray) -> np.ndarray:
        """One page-table walk per access — the reference engine."""
        la = np.asarray(logical_addresses, dtype=np.uint64)
        out = np.empty(la.shape, dtype=np.uint64)
        for i, addr in enumerate(la.tolist()):
            frame = int(self._frame_of[addr >> PAGE_SHIFT])
            if frame < 0:
                raise KeyError("access to unallocated logical page")
            out[i] = (frame << PAGE_SHIFT) | (addr & (PAGE_SIZE - 1))
        return out

    def record_epoch_accesses(self, logical_pages: np.ndarray) -> None:
        """Account a batch of page-granular accesses to node counters."""
        if not self.batched:
            self._record_epoch_accesses_reference(logical_pages)
            return
        codes = self._node_of[np.asarray(logical_pages, dtype=np.int64)]
        n_ddr = int((codes == 0).sum())
        n_cxl = int((codes == 1).sum())
        self.ddr.record_accesses(n_ddr)
        self.cxl.record_accesses(n_cxl)

    def _record_epoch_accesses_reference(self, logical_pages) -> None:
        """One node-counter increment per access — the reference engine."""
        for lpage in np.asarray(logical_pages, dtype=np.int64).tolist():
            code = self._node_of[lpage]
            if code == 0:
                self.ddr.record_accesses(1)
            elif code == 1:
                self.cxl.record_accesses(1)

    def begin_epoch(self, epoch_seconds: float = 1.0) -> None:
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        self.epoch_seconds = float(epoch_seconds)
        self.ddr.begin_epoch()
        self.cxl.begin_epoch()

    # ------------------------------------------------------------------
    # Monitor statistics (Table 1)

    def nr_pages(self, kind: NodeKind) -> int:
        """Table 1 ``nr_pages(node)``: pages allocated on the node."""
        return int((self._node_of == self._NODE_CODE[kind]).sum())

    def bw(self, kind: NodeKind) -> float:
        """Table 1 ``bw(node)``: consumed read bandwidth, bytes/sec."""
        node = self.node(kind)
        return node.accesses_this_epoch * 64.0 / self.epoch_seconds

    def bw_den(self, kind: NodeKind) -> float:
        """Table 1 ``bw_den(node)``: bw per allocated capacity."""
        pages = self.nr_pages(kind)
        if pages == 0:
            return 0.0
        return self.bw(kind) / (pages * PAGE_SIZE)

    def stats(self) -> Dict[str, float]:
        """Convenience snapshot of all Monitor statistics."""
        return {
            "nr_pages_ddr": self.nr_pages(NodeKind.DDR),
            "nr_pages_cxl": self.nr_pages(NodeKind.CXL),
            "bw_ddr": self.bw(NodeKind.DDR),
            "bw_cxl": self.bw(NodeKind.CXL),
            "bw_den_ddr": self.bw_den(NodeKind.DDR),
            "bw_den_cxl": self.bw_den(NodeKind.CXL),
        }
