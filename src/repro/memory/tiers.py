"""Tiered-memory model: an ordered hierarchy of memory nodes.

The model keeps the paper's NUMA framing: CXL device memory is exposed
as a CPU-less remote NUMA node, and the application's pages live on
exactly one node at a time.  Logical (application) pages are mapped to
physical frames inside each node's physical-address region, so the
CXL controller's profilers see real physical addresses and the
migration engine can rebind pages between nodes.

The default layout is the paper's two-node DDR + CXL pair, but the
hierarchy is an ordered list of :class:`NodeSpec` entries (fastest
first), so fleet simulations can add further tiers — e.g. a slow or
pooled CXL node behind the direct-attached device — with derived base
physical addresses and latencies.  Node ``i`` in the list carries the
page-map code ``i`` (0 = DDR, 1 = CXL, 2+ = extra tiers), and all
kind-based APIs resolve to the *first* node of that kind, keeping the
two-node fast paths bit-identical to the historical layout.

The node-level statistics published here (``nr_pages``, ``bw``,
``bw_den``) are precisely the Monitor functions of Table 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.memory.address import PAGE_SHIFT, PAGE_SIZE, AddressRegion


class NodeKind(enum.Enum):
    """Which tier a memory node belongs to."""

    DDR = "ddr"
    CXL = "cxl"
    #: A slower CXL device behind a switch (pooled/far memory) — the
    #: third link of the fleet demotion chain (DRAM → CXL → pooled).
    CXL_POOLED = "pooled"


#: Default physical layout: DDR at 0, CXL device memory high in the PA
#: space, mirroring how BIOS maps HDM ranges above local DRAM.
DDR_BASE = 0x0000_0000_0000
CXL_BASE = 0x2000_0000_0000 >> 1  # 16TB mark, well clear of DDR
#: Pooled/far CXL memory mapped above the direct-attached HDM window.
CXL_POOLED_BASE = 0x2000_0000_0000  # 32TB mark

#: Load-to-use latencies used throughout the paper's arithmetic
#: (§7.2 break-even: 54us / (270ns - 100ns) ≈ 318 accesses).
DDR_LATENCY_NS = 100.0
CXL_LATENCY_NS = 270.0
#: Pooled CXL sits behind a switch: roughly one extra hop of latency
#: (TPP/Pond-style far-memory figures land in the 400–700ns band).
CXL_POOLED_LATENCY_NS = 600.0


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one memory node in an ordered hierarchy.

    Attributes:
        kind: tier family (drives defaults and kind-based lookups).
        capacity_pages: frames this node provides.
        latency_ns: load-to-use latency; ``None`` derives the kind's
            default (100/270/600ns for DDR/CXL/pooled).
        base_pa: base physical address of the node's frame region;
            ``None`` derives the kind's default window (so a plain
            DDR+CXL spec list reproduces the historical layout
            bit-for-bit).
        bandwidth_gbps: channel bandwidth for QoS arbitration
            (0 = unlimited; only fleet contention reads this).
        name: display label; defaults to ``kind.value``.
    """

    kind: NodeKind
    capacity_pages: int
    latency_ns: Optional[float] = None
    base_pa: Optional[int] = None
    bandwidth_gbps: float = 0.0
    name: Optional[str] = None

    _KIND_LATENCY = {
        NodeKind.DDR: DDR_LATENCY_NS,
        NodeKind.CXL: CXL_LATENCY_NS,
        NodeKind.CXL_POOLED: CXL_POOLED_LATENCY_NS,
    }
    _KIND_BASE = {
        NodeKind.DDR: DDR_BASE,
        NodeKind.CXL: CXL_BASE,
        NodeKind.CXL_POOLED: CXL_POOLED_BASE,
    }

    @property
    def resolved_latency_ns(self) -> float:
        if self.latency_ns is not None:
            return float(self.latency_ns)
        return self._KIND_LATENCY[self.kind]

    @property
    def resolved_base_pa(self) -> int:
        if self.base_pa is not None:
            return int(self.base_pa)
        return self._KIND_BASE[self.kind]

    @property
    def resolved_name(self) -> str:
        return self.name if self.name is not None else self.kind.value


class MemoryNode:
    """One memory node (tier) with a frame allocator and counters."""

    def __init__(
        self,
        kind: NodeKind,
        capacity_pages: int,
        base_pa: int,
        latency_ns: float,
        name: Optional[str] = None,
    ):
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self.kind = kind
        self.name = name if name is not None else kind.value
        self.capacity_pages = int(capacity_pages)
        self.region = AddressRegion(base_pa, capacity_pages * PAGE_SIZE)
        self.latency_ns = float(latency_ns)
        # LIFO free list of frame numbers relative to the region.
        self._free = list(range(capacity_pages - 1, -1, -1))
        self.accesses_this_epoch = 0
        self.accesses_total = 0

    @property
    def first_frame(self) -> int:
        return self.region.first_page

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return self.capacity_pages - len(self._free)

    def allocate_frame(self) -> int:
        """Allocate one frame; returns the absolute PFN."""
        if not self._free:
            raise MemoryError(f"{self.kind.value} node out of frames")
        return self.first_frame + self._free.pop()

    def allocate_frames(self, n: int) -> np.ndarray:
        """Allocate ``n`` frames at once; absolute PFNs in pop order.

        Identical frames, in the identical order, as ``n`` calls to
        :meth:`allocate_frame` — the free list is LIFO, so the batch is
        the reversed tail.
        """
        n = int(n)
        if n > len(self._free):
            raise MemoryError(f"{self.kind.value} node out of frames")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        rels = self._free[-1:-n - 1:-1]
        del self._free[-n:]
        return self.first_frame + np.asarray(rels, dtype=np.int64)

    def free_frame(self, pfn: int) -> None:
        rel = int(pfn) - self.first_frame
        if not 0 <= rel < self.capacity_pages:
            raise ValueError(f"PFN {pfn:#x} not in {self.kind.value} node")
        self._free.append(rel)

    def free_frames(self, pfns: np.ndarray) -> None:
        """Release a batch of frames, in array order (LIFO-faithful)."""
        rel = np.asarray(pfns, dtype=np.int64) - self.first_frame
        if ((rel < 0) | (rel >= self.capacity_pages)).any():
            raise ValueError(f"PFN batch not in {self.kind.value} node")
        self._free.extend(rel.tolist())

    def record_accesses(self, n: int) -> None:
        self.accesses_this_epoch += int(n)
        self.accesses_total += int(n)

    def begin_epoch(self) -> None:
        self.accesses_this_epoch = 0


class TieredMemory:
    """Ordered tiered memory with logical-page → frame mapping.

    The default is the paper's two-node layout (DDR + CXL); passing
    ``nodes`` builds an arbitrary ordered hierarchy (fastest first).
    Node ``i`` owns page-map code ``i``; kind-based APIs resolve to
    the first node of that kind, so DDR/CXL call sites keep working
    unchanged on deeper hierarchies.

    Args:
        ddr_pages: capacity of the fast tier in pages (the paper caps
            this at ~half the footprint, e.g. 3GB DDR for ~6GB apps).
        cxl_pages: capacity of the slow tier in pages.
        num_logical_pages: the application's footprint in pages.
        nodes: optional ordered :class:`NodeSpec` list replacing the
            two-node default (``ddr_pages``/``cxl_pages``/latencies
            are ignored when given).
    """

    def __init__(
        self,
        ddr_pages: int = 0,
        cxl_pages: int = 0,
        num_logical_pages: int = 0,
        ddr_latency_ns: float = DDR_LATENCY_NS,
        cxl_latency_ns: float = CXL_LATENCY_NS,
        batched: bool = True,
        nodes: Optional[Sequence[NodeSpec]] = None,
        tenant: int = 0,
    ):
        if num_logical_pages <= 0:
            raise ValueError("num_logical_pages must be positive")
        if tenant < 0:
            raise ValueError("tenant must be non-negative")
        #: Owning fleet tenant (0 for single-run simulations).
        self.tenant = int(tenant)
        if nodes is None:
            nodes = (
                NodeSpec(NodeKind.DDR, ddr_pages, ddr_latency_ns),
                NodeSpec(NodeKind.CXL, cxl_pages, cxl_latency_ns),
            )
        if len(nodes) < 2:
            raise ValueError("a tier hierarchy needs at least two nodes")
        total = sum(spec.capacity_pages for spec in nodes)
        if num_logical_pages > total:
            raise ValueError("footprint exceeds total memory capacity")
        self.node_specs: List[NodeSpec] = list(nodes)
        self.nodes: List[MemoryNode] = [
            MemoryNode(
                spec.kind,
                spec.capacity_pages,
                spec.resolved_base_pa,
                spec.resolved_latency_ns,
                name=spec.resolved_name,
            )
            for spec in nodes
        ]
        regions = sorted(
            (node.region.start, node.region.end) for node in self.nodes
        )
        for (_, prev_end), (start, _) in zip(regions, regions[1:]):
            if start < prev_end:
                raise ValueError("node physical-address regions overlap")
        #: First node of each kind, for kind-based lookups.
        self._kind_index: Dict[NodeKind, int] = {}
        for i, node in enumerate(self.nodes):
            self._kind_index.setdefault(node.kind, i)
        self.ddr = self.nodes[0]
        self.cxl = self.nodes[self._kind_index.get(NodeKind.CXL, 1)]
        self.num_logical_pages = int(num_logical_pages)
        #: Engine selector for the access path: vectorized translate /
        #: accounting kernels vs per-access reference loops.  Results
        #: are identical; only the cost differs.
        self.batched = bool(batched)

        # page → absolute PFN and page → node code (vectorised maps).
        self._frame_of = np.full(num_logical_pages, -1, dtype=np.int64)
        self._node_of = np.full(num_logical_pages, -1, dtype=np.int8)
        self._NODE_CODE = {
            kind: idx for kind, idx in self._kind_index.items()
        }
        # epoch time bookkeeping for bandwidth computation
        self.epoch_seconds: float = 1.0

    # ------------------------------------------------------------------
    # allocation / placement

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, kind: NodeKind) -> MemoryNode:
        return self.nodes[self.node_index(kind)]

    def node_index(self, kind: NodeKind) -> int:
        """Page-map code of the first node of ``kind``."""
        try:
            return self._kind_index[kind]
        except KeyError:
            raise KeyError(f"no {kind.value} node in this hierarchy") from None

    def node_at(self, index: int) -> MemoryNode:
        return self.nodes[index]

    def allocate_all(self, kind: NodeKind = NodeKind.CXL) -> None:
        """Allocate every logical page on one node.

        The paper's methodology (§4.1 S2 and §7.2) starts every run
        with all application pages cgroup-bound to CXL DRAM.
        """
        node = self.node(kind)
        code = self.node_index(kind)
        for lpage in range(self.num_logical_pages):
            if self._frame_of[lpage] >= 0:
                raise RuntimeError("pages already allocated")
            self._frame_of[lpage] = node.allocate_frame()
            self._node_of[lpage] = code

    def allocate_spill(self, order: Optional[Sequence[int]] = None) -> None:
        """Allocate every page on the first node in ``order`` with room.

        The fleet's cgroup-style cold start: pages bind to the near
        CXL tier and overflow down the hierarchy (CXL → pooled) once
        it fills.  ``order`` defaults to every node below DRAM, in
        hierarchy order.  When the first node fits the whole
        footprint, this is frame-for-frame identical to
        :meth:`allocate_all` on that node.
        """
        if order is None:
            order = list(range(1, len(self.nodes)))
        if not order:
            raise ValueError("spill order must name at least one node")
        slot = 0
        for lpage in range(self.num_logical_pages):
            if self._frame_of[lpage] >= 0:
                raise RuntimeError("pages already allocated")
            while self.nodes[order[slot]].free_pages == 0:
                slot += 1  # total capacity checked in __init__
            code = order[slot]
            self._frame_of[lpage] = self.nodes[code].allocate_frame()
            self._node_of[lpage] = code

    def allocate_interleaved(self, ddr_fraction: float, seed: int = 0) -> None:
        """Allocate pages randomly split between nodes (for the §5.2
        bandwidth-proportionality experiment).

        The split is drawn from a generator seeded by ``seed`` so the
        placement is a pure function of ``(ddr_fraction, seed)`` —
        callers thread ``SimConfig.seed`` through for experiment
        reproducibility (the default keeps the historical layout).
        """
        if not 0.0 <= ddr_fraction <= 1.0:
            raise ValueError("ddr_fraction must be in [0, 1]")
        rng = np.random.default_rng(seed)
        to_ddr = rng.random(self.num_logical_pages) < ddr_fraction
        for lpage in range(self.num_logical_pages):
            kind = NodeKind.DDR if to_ddr[lpage] else NodeKind.CXL
            node = self.node(kind)
            if node.free_pages == 0:
                kind = NodeKind.CXL if kind is NodeKind.DDR else NodeKind.DDR
                node = self.node(kind)
            self._frame_of[lpage] = node.allocate_frame()
            self._node_of[lpage] = self._NODE_CODE[kind]

    def node_of_page(self, lpage: int) -> NodeKind:
        return self.nodes[self.node_code_of_page(lpage)].kind

    def node_code_of_page(self, lpage: int) -> int:
        code = int(self._node_of[lpage])
        if code < 0:
            raise KeyError(f"logical page {lpage} not allocated")
        return code

    def frame_of_page(self, lpage: int) -> int:
        pfn = self._frame_of[lpage]
        if pfn < 0:
            raise KeyError(f"logical page {lpage} not allocated")
        return int(pfn)

    @property
    def frame_map(self) -> np.ndarray:
        """Read-only view of the logical-page → PFN map."""
        return self._frame_of

    @property
    def node_map(self) -> np.ndarray:
        """Read-only view of page→node codes (node list index; -1=free)."""
        return self._node_of

    def pages_on(self, kind: NodeKind) -> np.ndarray:
        """Logical page ids currently resident on ``kind``."""
        return self.pages_on_node(self._NODE_CODE[kind])

    def pages_on_node(self, index: int) -> np.ndarray:
        """Logical page ids currently resident on node ``index``."""
        return np.nonzero(self._node_of == index)[0]

    def logical_page_of_pfn(self, pfn: int) -> Optional[int]:
        """Reverse-map an absolute PFN to its logical page (or None)."""
        hits = np.nonzero(self._frame_of == int(pfn))[0]
        return int(hits[0]) if hits.size else None

    def logical_pages_of_pfns(self, pfns) -> np.ndarray:
        """Vectorised reverse map; unknown PFNs yield -1."""
        pfns = np.asarray(pfns, dtype=np.int64)
        order = np.argsort(self._frame_of)
        sorted_frames = self._frame_of[order]
        idx = np.searchsorted(sorted_frames, pfns)
        idx = np.clip(idx, 0, len(sorted_frames) - 1)
        found = sorted_frames[idx] == pfns
        out = np.full(pfns.shape, -1, dtype=np.int64)
        out[found] = order[idx[found]]
        return out

    # ------------------------------------------------------------------
    # migration primitive (cost accounting lives in MigrationEngine)

    def move_page(self, lpage: int, to: NodeKind) -> int:
        """Rebind a logical page to a frame on ``to``; returns new PFN."""
        return self.move_page_to(lpage, self._NODE_CODE[to])

    def move_page_to(self, lpage: int, to_index: int) -> int:
        """Rebind a logical page to a frame on node ``to_index``."""
        code = int(to_index)
        if self._node_of[lpage] == code:
            return int(self._frame_of[lpage])
        src = self.nodes[self.node_code_of_page(lpage)]
        dst = self.nodes[code]
        new_pfn = dst.allocate_frame()  # may raise MemoryError if full
        src.free_frame(int(self._frame_of[lpage]))
        self._frame_of[lpage] = new_pfn
        self._node_of[lpage] = code
        return new_pfn

    def move_pages(self, lpages: np.ndarray, to: NodeKind) -> np.ndarray:
        """Bulk :meth:`move_page`; see :meth:`move_pages_to`."""
        return self.move_pages_to(lpages, self._NODE_CODE[to])

    def move_pages_to(self, lpages: np.ndarray, to_index: int) -> np.ndarray:
        """Bulk rebind of ``lpages`` to frames on node ``to_index``.

        Exactly equivalent to looping :meth:`move_page_to` over the
        array — destination frames come off the LIFO free list in the
        same order, and source frames are released in the same page
        order (per source node, in hierarchy order) — provided no page
        already resides on the target (callers filter, as the
        sequential loop's no-op branch would otherwise interleave
        differently).  Raises MemoryError before touching anything if
        the destination cannot hold the whole batch.
        """
        lpages = np.asarray(lpages, dtype=np.int64)
        if lpages.size == 0:
            return np.empty(0, dtype=np.int64)
        code = int(to_index)
        codes = self._node_of[lpages]
        if (codes < 0).any():
            raise KeyError("move of unallocated logical page")
        if (codes == code).any():
            raise ValueError("bulk move requires all pages off the target")
        new_pfns = self.nodes[code].allocate_frames(lpages.size)
        old_pfns = self._frame_of[lpages]
        for src_code, src in enumerate(self.nodes):
            mask = codes == src_code
            if mask.any():
                src.free_frames(old_pfns[mask])
        self._frame_of[lpages] = new_pfns
        self._node_of[lpages] = code
        return new_pfns

    # ------------------------------------------------------------------
    # access path

    def translate(self, logical_addresses: np.ndarray) -> np.ndarray:
        """Translate logical byte addresses to physical byte addresses."""
        if not self.batched:
            return self._translate_reference(logical_addresses)
        la = np.asarray(logical_addresses, dtype=np.uint64)
        lpages = (la >> np.uint64(PAGE_SHIFT)).astype(np.int64)
        frames = self._frame_of[lpages]
        if (frames < 0).any():
            raise KeyError("access to unallocated logical page")
        offset = la & np.uint64(PAGE_SIZE - 1)
        return (frames.astype(np.uint64) << np.uint64(PAGE_SHIFT)) | offset

    def _translate_reference(self, logical_addresses: np.ndarray) -> np.ndarray:
        """One page-table walk per access — the reference engine."""
        la = np.asarray(logical_addresses, dtype=np.uint64)
        out = np.empty(la.shape, dtype=np.uint64)
        for i, addr in enumerate(la.tolist()):
            frame = int(self._frame_of[addr >> PAGE_SHIFT])
            if frame < 0:
                raise KeyError("access to unallocated logical page")
            out[i] = (frame << PAGE_SHIFT) | (addr & (PAGE_SIZE - 1))
        return out

    def record_epoch_accesses(self, logical_pages: np.ndarray) -> None:
        """Account a batch of page-granular accesses to node counters."""
        if not self.batched:
            self._record_epoch_accesses_reference(logical_pages)
            return
        codes = self._node_of[np.asarray(logical_pages, dtype=np.int64)]
        for idx, node in enumerate(self.nodes):
            node.record_accesses(int((codes == idx).sum()))

    def _record_epoch_accesses_reference(self, logical_pages) -> None:
        """One node-counter increment per access — the reference engine."""
        for lpage in np.asarray(logical_pages, dtype=np.int64).tolist():
            code = self._node_of[lpage]
            if code >= 0:
                self.nodes[code].record_accesses(1)

    def begin_epoch(self, epoch_seconds: float = 1.0) -> None:
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        self.epoch_seconds = float(epoch_seconds)
        for node in self.nodes:
            node.begin_epoch()

    # ------------------------------------------------------------------
    # Monitor statistics (Table 1)

    def nr_pages(self, kind: NodeKind) -> int:
        """Table 1 ``nr_pages(node)``: pages allocated on the node."""
        return self.nr_pages_at(self._NODE_CODE[kind])

    def nr_pages_at(self, index: int) -> int:
        """``nr_pages`` for node ``index`` in the hierarchy."""
        return int((self._node_of == index).sum())

    def bw(self, kind: NodeKind) -> float:
        """Table 1 ``bw(node)``: consumed read bandwidth, bytes/sec."""
        return self.bw_at(self._NODE_CODE[kind])

    def bw_at(self, index: int) -> float:
        """``bw`` for node ``index`` in the hierarchy."""
        node = self.nodes[index]
        return node.accesses_this_epoch * 64.0 / self.epoch_seconds

    def bw_den(self, kind: NodeKind) -> float:
        """Table 1 ``bw_den(node)``: bw per allocated capacity."""
        return self.bw_den_at(self._NODE_CODE[kind])

    def bw_den_at(self, index: int) -> float:
        """``bw_den`` for node ``index`` in the hierarchy."""
        pages = self.nr_pages_at(index)
        if pages == 0:
            return 0.0
        return self.bw_at(index) / (pages * PAGE_SIZE)

    def stats(self) -> Dict[str, float]:
        """Convenience snapshot of all Monitor statistics.

        Keys are derived from node names, so the two-node default
        keeps the historical ``*_ddr``/``*_cxl`` keys and deeper
        hierarchies gain ``*_pooled`` (etc.) entries.
        """
        out: Dict[str, float] = {}
        for i, node in enumerate(self.nodes):
            out[f"nr_pages_{node.name}"] = self.nr_pages_at(i)
        for i, node in enumerate(self.nodes):
            out[f"bw_{node.name}"] = self.bw_at(i)
        for i, node in enumerate(self.nodes):
            out[f"bw_den_{node.name}"] = self.bw_den_at(i)
        return out
