"""CXL device model: controller request path, MMIO interface, and the
PAC/WAC profiling counters of paper §3."""

from repro.cxl.controller import CxlController, CXL_EXTRA_LATENCY_NS
from repro.cxl.mmio import (
    COUNTER_WINDOW_BYTES,
    MMIO_REGION_BYTES,
    CounterWindow,
    MmioError,
    RegisterFile,
)
from repro.cxl.pac import PageAccessCounter
from repro.cxl.wac import WordAccessCounter

__all__ = [
    "CxlController",
    "CXL_EXTRA_LATENCY_NS",
    "COUNTER_WINDOW_BYTES",
    "MMIO_REGION_BYTES",
    "CounterWindow",
    "MmioError",
    "RegisterFile",
    "PageAccessCounter",
    "WordAccessCounter",
]
