"""Pre-digested access batches for the controller snoop fan-out.

Every snoop attached to the CXL controller used to rediscover the same
structure per epoch chunk — page keys, word keys, their uniques and
multiplicities.  An :class:`AccessBatch` wraps one region-filtered
chunk of physical addresses and memoizes the ``np.unique`` digest per
granularity shift, so the PAC, WAC and each attached tracker share one
pass over the data instead of running their own.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

_Digest = Tuple[np.ndarray, np.ndarray, np.ndarray]


class AccessBatch:
    """One chunk of physical byte addresses, digest-on-demand.

    Args:
        addresses: physical byte addresses (uint64), already filtered
            to the controller's region.
        region: the :class:`~repro.memory.address.Region` the
            addresses were filtered against, if any — consumers whose
            own window differs (e.g. the WAC's monitor window) must
            re-filter.
    """

    def __init__(self, addresses: np.ndarray, region: Any = None) -> None:
        self.addresses = np.atleast_1d(np.asarray(addresses, dtype=np.uint64))
        self.region = region
        self._digests: Dict[int, _Digest] = {}
        self._ordered: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    @property
    def size(self) -> int:
        return int(self.addresses.size)

    def _digest(self, shift: int) -> _Digest:
        digest = self._digests.get(shift)
        if digest is None:
            keys = self.addresses >> np.uint64(shift)
            digest = np.unique(keys, return_index=True, return_counts=True)
            self._digests[shift] = digest
        return digest

    def unique_keys(self, shift: int) -> Tuple[np.ndarray, np.ndarray]:
        """(unique keys ascending, multiplicities) at ``PA >> shift``."""
        uniques, _, counts = self._digest(shift)
        return uniques, counts

    def unique_keys_ordered(self, shift: int) -> Tuple[np.ndarray, np.ndarray]:
        """Like :meth:`unique_keys`, but in first-appearance order —
        what order-sensitive summaries (weighted Space-Saving) replay."""
        ordered = self._ordered.get(shift)
        if ordered is None:
            uniques, first_pos, counts = self._digest(shift)
            order = np.argsort(first_pos, kind="stable")
            ordered = (uniques[order], counts[order])
            self._ordered[shift] = ordered
        return ordered
