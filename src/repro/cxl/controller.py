"""CXL device controller model.

Models the request path of the FPGA CXL controller of Figure 1: host
requests enter through the CXL IP (PHY → link → transaction layer) and
flow to the memory controllers.  Between those two stages sits the
user-defined AFU region where PAC, WAC, HPT, and HWT snoop every
address.  The model also carries the device's latency contribution so
the performance model can charge CXL accesses correctly.

Any object exposing ``observe(addresses)`` can be attached as a snoop
(the shared interface of PAC/WAC and the M5 trackers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol

import numpy as np

from repro.cxl.batch import AccessBatch
from repro.memory.address import AddressRegion

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: Extra load-to-use latency of CXL DRAM vs DDR DRAM reported for the
#: paper's testbed class of devices (140–170ns, §1); combined with a
#: ~100ns DDR baseline this yields the 270ns figure used in the
#: paper's §7.2 break-even arithmetic.
CXL_EXTRA_LATENCY_NS = 170.0


class AddressSnoop(Protocol):
    """Anything that can watch the host→MC address stream."""

    def observe(self, addresses: np.ndarray) -> None: ...


class CxlController:
    """A CXL Type-2/3 device: memory expander plus AFU snoop hooks.

    Args:
        region: the device (HDM) physical-address region this
            controller serves.
        access_latency_ns: full load-to-use latency of device DRAM as
            seen by the host CPU.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, the controller registers request/drop counters
            and an attached-AFU gauge (no-op when the registry is
            disabled).
    """

    def __init__(
        self,
        region: AddressRegion,
        access_latency_ns: float = 270.0,
        metrics: Optional[MetricsRegistry] = None,
        batched: bool = True,
    ) -> None:
        self.region = region
        self.access_latency_ns = float(access_latency_ns)
        #: When True, snoops exposing ``observe_batch`` receive one
        #: shared :class:`~repro.cxl.batch.AccessBatch` whose unique-key
        #: digests are computed once per chunk instead of once per AFU.
        self.batched = bool(batched)
        self._snoops: List[AddressSnoop] = []
        self.requests_served = 0
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry(enabled=False)
        self._m_requests = metrics.counter(
            "cxl_requests_total", "Host requests served by the CXL device"
        )
        self._m_out_of_region = metrics.counter(
            "cxl_out_of_region_total",
            "Requests dropped because they target another node",
        )
        self._m_snoops = metrics.gauge(
            "cxl_attached_snoops", "AFU snoop functions on the request path"
        )

    def attach(self, snoop: AddressSnoop) -> None:
        """Attach an AFU function (PAC, WAC, HPT, HWT, ...)."""
        if not hasattr(snoop, "observe"):
            raise TypeError("snoop must expose observe(addresses)")
        self._snoops.append(snoop)
        self._m_snoops.set(len(self._snoops))

    def detach(self, snoop: AddressSnoop) -> None:
        self._snoops.remove(snoop)
        self._m_snoops.set(len(self._snoops))

    @property
    def snoops(self) -> tuple:
        return tuple(self._snoops)

    def serve(self, addresses: np.ndarray) -> int:
        """Serve a batch of host memory requests.

        Requests outside the device region are dropped (they belong to
        another node); attached AFUs see exactly the in-region stream,
        which is how the real hardware taps the CXL-IP→MC path.

        Returns:
            Number of requests actually served by this device.
        """
        pa = np.asarray(addresses, dtype=np.uint64)
        in_region = pa[self.region.contains(pa)]
        self._m_out_of_region.inc(int(pa.size - in_region.size))
        pa = in_region
        if pa.size == 0:
            return 0
        batch = None
        if self.batched and self._snoops:
            batch = AccessBatch(pa, region=self.region)
        for snoop in self._snoops:
            if batch is not None and hasattr(snoop, "observe_batch"):
                snoop.observe_batch(batch)
            else:
                snoop.observe(pa)
        self.requests_served += int(pa.size)
        self._m_requests.inc(int(pa.size))
        return int(pa.size)

    def service_time_ns(self, num_requests: int, parallelism: float = 1.0) -> float:
        """Aggregate service time for ``num_requests`` device accesses.

        ``parallelism`` models memory-level parallelism: the effective
        per-access stall is the full latency divided by the number of
        overlapping outstanding requests.
        """
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        return num_requests * self.access_latency_ns / parallelism
