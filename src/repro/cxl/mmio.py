"""MMIO window model for the PAC/WAC software interface.

The paper (§3, "Software") maps the counter SRAM and the
configuration/control registers of PAC and WAC into a 2MB MMIO region:
1MB is a movable window over the (up to 4MB) SRAM unit and 1MB holds
configuration and control registers.  Because the window is smaller
than the SRAM, software sets a *base-address* configuration register
and then reads ``base + offset``; sweeping the base register pages
through the whole SRAM.

This module reproduces those access semantics (window bounds, the
base register, register files) so the profiling software stack built
on top exercises the same interface contract as the paper's driver.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

#: Size of the full MMIO region (2MB, the platform limit cited in §3).
MMIO_REGION_BYTES = 2 * 1024 * 1024
#: Size of the movable counter window (1MB).
COUNTER_WINDOW_BYTES = 1 * 1024 * 1024
#: Size of the configuration/control register file (1MB).
REGISTER_FILE_BYTES = MMIO_REGION_BYTES - COUNTER_WINDOW_BYTES


class MmioError(Exception):
    """Raised on out-of-window or misaligned MMIO accesses."""


class RegisterFile:
    """Named 64-bit configuration/control registers.

    Registers are allocated by name at fixed offsets in declaration
    order, mirroring how the RTL exposes them at fixed MMIO offsets.
    """

    def __init__(self, names: Iterable[str]) -> None:
        self._offsets: Dict[str, int] = {}
        self._values: Dict[str, int] = {}
        for i, name in enumerate(names):
            offset = i * 8
            if offset >= REGISTER_FILE_BYTES:
                raise MmioError("register file overflow")
            self._offsets[name] = offset
            self._values[name] = 0

    def offset_of(self, name: str) -> int:
        return self._offsets[name]

    def write(self, name: str, value: int) -> None:
        if name not in self._values:
            raise MmioError(f"unknown register {name!r}")
        self._values[name] = int(value) & 0xFFFF_FFFF_FFFF_FFFF

    def read(self, name: str) -> int:
        if name not in self._values:
            raise MmioError(f"unknown register {name!r}")
        return self._values[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._offsets)


class CounterWindow:
    """The 1MB movable window over a counter SRAM.

    The SRAM is presented as an array of fixed-width counters.  The
    window exposes ``COUNTER_WINDOW_BYTES`` of it starting at the byte
    offset held in the ``base`` register (must be window-aligned,
    as the hardware adds ``base + offset`` without carry logic).
    """

    def __init__(self, sram: np.ndarray) -> None:
        if sram.ndim != 1:
            raise MmioError("counter SRAM must be one-dimensional")
        self._sram = sram
        self._base = 0

    @property
    def sram_bytes(self) -> int:
        return int(self._sram.nbytes)

    @property
    def base(self) -> int:
        return self._base

    def set_base(self, base: int) -> None:
        if base % COUNTER_WINDOW_BYTES != 0:
            raise MmioError("window base must be 1MB aligned")
        if not 0 <= base < max(self.sram_bytes, COUNTER_WINDOW_BYTES):
            raise MmioError(f"window base {base:#x} beyond SRAM")
        self._base = int(base)

    def _bounds_check(self, offset: int, nbytes: int) -> int:
        if offset < 0 or offset + nbytes > COUNTER_WINDOW_BYTES:
            raise MmioError(f"offset {offset:#x} outside 1MB window")
        absolute = self._base + offset
        if absolute + nbytes > self.sram_bytes:
            raise MmioError(f"window access {absolute:#x} beyond SRAM")
        return absolute

    def read_counters(self, offset: int, count: int) -> np.ndarray:
        """Read ``count`` counters starting at byte ``offset`` in the window."""
        itemsize = self._sram.itemsize
        absolute = self._bounds_check(offset, count * itemsize)
        start = absolute // itemsize
        return self._sram[start : start + count].copy()

    def read_all(self) -> np.ndarray:
        """Sweep the base register to read the entire SRAM (driver helper).

        This is exactly the loop the paper's PAC software performs:
        for each 1MB-aligned base, set the base register, then read the
        window contents.
        """
        saved = self._base
        chunks = []
        itemsize = self._sram.itemsize
        counters_per_window = COUNTER_WINDOW_BYTES // itemsize
        total = len(self._sram)
        base = 0
        while base * itemsize < self.sram_bytes:
            self.set_base(base * itemsize)
            take = min(counters_per_window, total - base)
            chunks.append(self.read_counters(0, take))
            base += counters_per_window
        self._base = saved
        return np.concatenate(chunks) if chunks else self._sram[:0].copy()
