"""Page Access Counter (PAC): exact per-4KB-page access counting.

PAC (paper §3, Figure 2) lives in the CXL controller between the CXL
IP and the memory controllers.  It snoops every memory-access address
``PA[47:6]``, right-shifts by 6 bits to obtain the PFN, and increments
an L-bit counter in an SRAM unit indexed by the PFN.  Saturated L-bit
counters are accumulated into 64-bit counters in an *access-count
table* allocated in host or device memory; after a run the host reads
the precise per-page counts from that table (plus the live SRAM
residue).

Because PAC tracks *every* DRAM access it serves as the ground truth
against which all page-migration solutions are scored (the
access-count-ratio metric of §4.1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.typing import ArrayLike

from repro.memory.address import (
    PAGE_SHIFT,
    WORDS_PER_PAGE_SHIFT,
    AddressRegion,
    as_line_array,
)
from repro.cxl.batch import AccessBatch
from repro.cxl.mmio import CounterWindow, RegisterFile


class PageAccessCounter:
    """Exact per-page access counter with L-bit SRAM and 64-bit spill.

    Args:
        region: the CXL device memory region being monitored.
        counter_bits: L, the SRAM counter width (paper default 16; a
            16-bit counter saturates only after ~20s of even
            memory-intensive traffic).
        sram_counters: optionally cap the number of SRAM counters; when
            the region has more pages than counters, PAC operates in
            the §3 "Scalability" *cache* mode, evicting counters to the
            access-count table on conflict.
    """

    def __init__(
        self,
        region: AddressRegion,
        counter_bits: int = 16,
        sram_counters: Optional[int] = None,
        batched: bool = True,
    ) -> None:
        if not 1 <= counter_bits <= 32:
            raise ValueError("counter_bits must be in [1, 32]")
        self.region = region
        self.counter_bits = counter_bits
        #: True: chunk-at-a-time counter updates (bincount/scatter).
        #: False: one increment-and-spill-on-saturation per access, the
        #: literal hardware semantics.  ``counts()`` is identical either
        #: way (both conserve table+SRAM totals); only the ``spills``
        #: statistic differs, since a chunk spill covers several
        #: saturations at once.
        self.batched = bool(batched)
        self._saturation = (1 << counter_bits) - 1
        self.num_pages = region.num_pages

        self._cache_mode = (
            sram_counters is not None and sram_counters < self.num_pages
        )
        if self._cache_mode:
            self._num_sram = int(sram_counters)
            # Direct-mapped counter cache: tag array holds the PFN
            # (relative to region start) currently cached per set.
            self._tags = np.full(self._num_sram, -1, dtype=np.int64)
        else:
            self._num_sram = self.num_pages
            self._tags = None

        # L-bit SRAM counters (stored in uint32, saturating at 2^L-1).
        self._sram = np.zeros(self._num_sram, dtype=np.uint32)
        # 64-bit access-count table in host/device memory.
        self._table = np.zeros(self.num_pages, dtype=np.uint64)
        # Statistics.
        self.total_accesses = 0
        self.spills = 0
        self.evictions = 0
        # MMIO plumbing.
        self.registers = RegisterFile(
            ["window_base", "enable", "reset", "region_start", "region_size"]
        )
        self.registers.write("enable", 1)
        self.registers.write("region_start", region.start)
        self.registers.write("region_size", region.size)
        self.window = CounterWindow(self._sram)

    @property
    def enabled(self) -> bool:
        return bool(self.registers.read("enable"))

    def observe(self, addresses: np.ndarray) -> None:
        """Snoop a batch of byte addresses headed for the MCs.

        Addresses outside the monitored region are ignored (the
        hardware only sees requests routed to its own device memory).
        """
        if not self.enabled:
            return
        pa = np.asarray(addresses, dtype=np.uint64)
        pa = pa[self.region.contains(pa)]
        if pa.size == 0:
            return
        lines = as_line_array(pa)
        # The address-to-PFN converter: right shift by 6 bits of the
        # 64B line index (total 12 bits off the byte address).
        pfns = (lines >> np.uint64(WORDS_PER_PAGE_SHIFT)).astype(np.int64)
        rel = pfns - self.region.first_page
        self.total_accesses += int(rel.size)
        if self._cache_mode:
            self._observe_cached(rel)
        elif self.batched:
            self._observe_direct(rel)
        else:
            self._observe_direct_reference(rel)

    def observe_batch(self, batch: AccessBatch) -> None:
        """Snoop a pre-digested :class:`~repro.cxl.batch.AccessBatch`.

        Reuses the batch's memoized page-granularity uniques when the
        batch was filtered against this counter's own region; any other
        configuration falls back to :meth:`observe`.
        """
        if not self.enabled:
            return
        if (batch.region is not self.region or self._cache_mode
                or not self.batched):
            self.observe(batch.addresses)
            return
        if batch.size == 0:
            return
        pfns, counts = batch.unique_keys(PAGE_SHIFT)
        rel = pfns.astype(np.int64) - self.region.first_page
        self.total_accesses += batch.size
        self._apply_direct(rel, counts.astype(np.uint64))

    def _observe_direct(self, rel: np.ndarray) -> None:
        uniq, counts = np.unique(rel, return_counts=True)
        self._apply_direct(uniq, counts.astype(np.uint64))

    def _apply_direct(self, rel: np.ndarray, counts: np.ndarray) -> None:
        """Add per-slot chunk counts (``rel`` unique slot indices,
        ``counts`` their totals), spilling saturated counters.  Sparse
        on purpose: only the chunk's slots are touched, never the full
        SRAM array."""
        new = self._sram[rel].astype(np.uint64) + counts
        overflow = new > self._saturation
        if overflow.any():
            # Accumulate the saturated portion into the 64-bit table
            # and reset the SRAM counter (paper §3: "PAC may reset
            # saturated counters after accumulating them").
            self.spills += int(overflow.sum())
            self._table[rel[overflow]] += new[overflow]
            new[overflow] = 0
        self._sram[rel] = new.astype(np.uint32)

    def _observe_direct_reference(self, rel: np.ndarray) -> None:
        """One increment per access, spilling at each saturation
        crossing — the per-access hardware semantics."""
        for r in rel.tolist():
            count = int(self._sram[r]) + 1
            if count > self._saturation:
                self._table[r] += np.uint64(count)
                self.spills += 1
                count = 0
            self._sram[r] = count

    def _observe_cached(self, rel: np.ndarray) -> None:
        # Direct-mapped cache of counters; sequential semantics matter
        # only for eviction ordering, which we preserve per unique
        # conflict — run-length compress the stream first, then apply
        # each run of consecutive same-page accesses in one step.
        starts = np.nonzero(np.diff(rel, prepend=rel[0] - 1))[0]
        run_pfns = rel[starts]
        run_lens = np.diff(starts, append=rel.size)
        run_sets = run_pfns % self._num_sram
        period = self._saturation + 1
        # lint: disable=PERF001 -- loop is over run-length-compressed
        # runs, not accesses; direct-mapped eviction order is
        # inherently sequential per SRAM set
        for pfn_rel, set_idx, n in zip(
            run_pfns.tolist(), run_sets.tolist(), run_lens.tolist()
        ):
            tag = self._tags[set_idx]
            if tag != pfn_rel:
                if tag >= 0:
                    # Write back the evicted count, then install the
                    # newcomer with count 1 (paper: "writes 1 to the
                    # counter in the SRAM unit").
                    self._table[tag] += self._sram[set_idx]
                    self.evictions += 1
                self._tags[set_idx] = pfn_rel
                total = n  # install writes 1, then n-1 increments
            else:
                total = int(self._sram[set_idx]) + n
            # n sequential increments from the current value: every
            # time the counter exceeds saturation it spills exactly
            # saturation+1 into the table and resets to zero, so the
            # run collapses to a division instead of a Python loop.
            nspills = total // period
            if nspills:
                self._table[pfn_rel] += nspills * period
                self.spills += nspills
            self._sram[set_idx] = total % period

    def flush(self) -> None:
        """Drain live SRAM counts into the access-count table."""
        if self._cache_mode:
            live = self._tags >= 0
            np.add.at(self._table, self._tags[live], self._sram[live].astype(np.uint64))
            self._sram[live] = 0
            self._tags[live] = -1
        else:
            self._table += self._sram.astype(np.uint64)
            self._sram[:] = 0

    def counts(self) -> np.ndarray:
        """Precise per-page access counts over the region (64-bit).

        Combines the access-count table with any unspilled SRAM
        residue; does not disturb the live counters.
        """
        total = self._table.copy()
        if self._cache_mode:
            live = self._tags >= 0
            np.add.at(total, self._tags[live], self._sram[live].astype(np.uint64))
        else:
            total += self._sram.astype(np.uint64)
        return total

    def count_of_page(self, pfn: int) -> int:
        """Access count for an absolute PFN (the §4.1 table lookup)."""
        rel = int(pfn) - self.region.first_page
        if not 0 <= rel < self.num_pages:
            return 0
        return int(self.counts()[rel])

    def counts_of_pages(self, pfns: ArrayLike) -> np.ndarray:
        """Vectorised access-count lookup for absolute PFNs."""
        rel = np.asarray(pfns, dtype=np.int64) - self.region.first_page
        table = self.counts()
        valid = (rel >= 0) & (rel < self.num_pages)
        out = np.zeros(rel.shape, dtype=np.uint64)
        out[valid] = table[rel[valid]]
        return out

    def top_k(self, k: int) -> np.ndarray:
        """Absolute PFNs of the top-``k`` hottest pages (ties broken by
        lower PFN, sorted hottest first)."""
        table = self.counts()
        k = min(int(k), self.num_pages)
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        # argsort on (count desc, pfn asc) for deterministic output.
        order = np.lexsort((np.arange(self.num_pages), -table.astype(np.int64)))
        rel = order[:k]
        rel = rel[table[rel] > 0]
        return rel + self.region.first_page

    def top_k_access_count(self, k: int) -> int:
        """Sum of counts of the true top-``k`` pages (§4.1 S5)."""
        table = np.sort(self.counts())[::-1]
        return int(table[: min(int(k), table.size)].sum())

    def reset(self) -> None:
        """Clear all counters (SRAM + table)."""
        self._sram[:] = 0
        self._table[:] = 0
        if self._cache_mode:
            self._tags[:] = -1
        self.total_accesses = 0
        self.spills = 0
        self.evictions = 0

    def read_sram_via_mmio(self) -> np.ndarray:
        """Read the raw SRAM contents through the 1MB MMIO window."""
        return self.window.read_all()
