"""Word Access Counter (WAC): exact per-64B-word access counting.

WAC (paper §3) shares PAC's architecture but skips the address-to-PFN
conversion: the SRAM unit is indexed directly by the 64B word-line
index.  Because counting every word of a large device memory would
need gigabytes of counters, the paper's WAC monitors a *128MB window*
at a time with 4-bit counters, sweeping the window across the device
memory over multiple intervals or runs (§3 "Scalability").
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np
from numpy.typing import ArrayLike

from repro.memory.address import (
    WORD_SHIFT,
    WORDS_PER_PAGE,
    AddressRegion,
)
from repro.cxl.batch import AccessBatch
from repro.cxl.mmio import CounterWindow, RegisterFile

#: Window size used by the paper's WAC deployment.
DEFAULT_WINDOW_BYTES = 128 * 1024 * 1024
#: Counter width used by the paper's WAC deployment.
DEFAULT_COUNTER_BITS = 4


class WordAccessCounter:
    """Exact per-word access counter over a movable monitoring window.

    Args:
        device_region: full CXL device memory region.
        window_bytes: size of the monitored sub-region (paper: 128MB).
        counter_bits: L for the SRAM counters (paper: 4).
    """

    def __init__(
        self,
        device_region: AddressRegion,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        counter_bits: int = DEFAULT_COUNTER_BITS,
        batched: bool = True,
    ) -> None:
        if not 1 <= counter_bits <= 32:
            raise ValueError("counter_bits must be in [1, 32]")
        if window_bytes <= 0:
            raise ValueError("window_bytes must be positive")
        self.device_region = device_region
        self.window_bytes = min(int(window_bytes), device_region.size)
        self.counter_bits = counter_bits
        #: Same contract as the PAC flag: chunked vs per-access counter
        #: updates; ``counts()`` is identical, ``spills`` may differ.
        self.batched = bool(batched)
        self._saturation = (1 << counter_bits) - 1

        self.monitor_region = AddressRegion(device_region.start, self.window_bytes)
        num_lines = self.monitor_region.num_word_lines
        self._sram = np.zeros(num_lines, dtype=np.uint32)
        # 64-bit spill table covering only the monitored window.
        self._table = np.zeros(num_lines, dtype=np.uint64)
        self.total_accesses = 0
        self.spills = 0

        self.registers = RegisterFile(
            ["window_base", "enable", "reset", "monitor_start", "monitor_size"]
        )
        self.registers.write("enable", 1)
        self._sync_registers()
        self.window = CounterWindow(self._sram)

    def _sync_registers(self) -> None:
        self.registers.write("monitor_start", self.monitor_region.start)
        self.registers.write("monitor_size", self.monitor_region.size)

    @property
    def enabled(self) -> bool:
        return bool(self.registers.read("enable"))

    def set_monitor_window(self, start: int) -> None:
        """Move the monitoring window (clears all counters).

        The paper sweeps the window across CXL memory "over multiple
        intervals during a single run" or across runs.
        """
        region = AddressRegion(start, self.window_bytes)
        if region.start < self.device_region.start or region.end > self.device_region.end:
            raise ValueError("monitor window outside device memory")
        self.monitor_region = region
        self._sram[:] = 0
        self._table[:] = 0
        self.total_accesses = 0
        self.spills = 0
        self._sync_registers()

    def observe(self, addresses: np.ndarray) -> None:
        """Snoop byte addresses; count only those inside the window."""
        if not self.enabled:
            return
        pa = np.asarray(addresses, dtype=np.uint64)
        pa = pa[self.monitor_region.contains(pa)]
        if pa.size == 0:
            return
        rel = ((pa - np.uint64(self.monitor_region.start)) >> np.uint64(WORD_SHIFT)).astype(
            np.int64
        )
        self.total_accesses += int(rel.size)
        if self.batched:
            uniq, counts = np.unique(rel, return_counts=True)
            self._apply(uniq, counts.astype(np.uint64))
        else:
            self._observe_reference(rel)

    def observe_batch(self, batch: AccessBatch) -> None:
        """Snoop a pre-digested :class:`~repro.cxl.batch.AccessBatch`.

        The batch is filtered against the whole device region, which is
        wider than the monitor window, so the word-granularity uniques
        are re-filtered here before scattering.
        """
        if not self.enabled:
            return
        if not self.batched or batch.size == 0:
            self.observe(batch.addresses)
            return
        lines, counts = batch.unique_keys(WORD_SHIFT)
        lo = np.uint64(self.monitor_region.start >> WORD_SHIFT)
        hi = np.uint64(self.monitor_region.end >> WORD_SHIFT)
        in_window = (lines >= lo) & (lines < hi)
        if not in_window.any():
            return
        rel = (lines[in_window] - lo).astype(np.int64)
        weights = counts[in_window].astype(np.uint64)
        self.total_accesses += int(weights.sum())
        self._apply(rel, weights)

    def _apply(self, rel: np.ndarray, counts: np.ndarray) -> None:
        """Add per-line chunk counts (``rel`` unique line indices,
        ``counts`` their totals), spilling saturated counters.  Sparse
        on purpose: only the chunk's lines are touched, never the full
        window-sized SRAM array."""
        new = self._sram[rel].astype(np.uint64) + counts
        overflow = new > self._saturation
        if overflow.any():
            self.spills += int(overflow.sum())
            self._table[rel[overflow]] += new[overflow]
            new[overflow] = 0
        self._sram[rel] = new.astype(np.uint32)

    def _observe_reference(self, rel: np.ndarray) -> None:
        """One increment per access, spilling at each saturation
        crossing — the per-access hardware semantics."""
        for r in rel.tolist():
            count = int(self._sram[r]) + 1
            if count > self._saturation:
                self._table[r] += np.uint64(count)
                self.spills += 1
                count = 0
            self._sram[r] = count

    def counts(self) -> np.ndarray:
        """Precise per-word counts over the monitored window."""
        return self._table + self._sram.astype(np.uint64)

    def counts_by_page(self) -> np.ndarray:
        """Per-word counts reshaped to (pages, 64 words)."""
        counts = self.counts()
        pages = len(counts) // WORDS_PER_PAGE
        return counts[: pages * WORDS_PER_PAGE].reshape(pages, WORDS_PER_PAGE)

    def unique_words_per_page(self, min_accesses: int = 1) -> np.ndarray:
        """Distinct accessed 64B words per page in the window.

        This is the statistic behind Figure 4 (access sparsity).

        Args:
            min_accesses: only report pages with at least this many
                total accesses.  A page's word-usage pattern is only
                observable once it has been accessed enough times; the
                paper's runs are minutes long so every allocated page
                qualifies, while scaled-down traces need the filter.
                Unqualified pages report 0.
        """
        by_page = self.counts_by_page()
        uniques = (by_page > 0).sum(axis=1)
        totals = by_page.sum(axis=1)
        uniques[totals < max(1, int(min_accesses))] = 0
        return uniques

    def sparsity_profile(
        self, thresholds: Sequence[int] = (4, 8, 16, 32, 48), min_accesses: int = 1
    ) -> Dict[int, float]:
        """P(page has at most N unique accessed words) for each N,
        over pages with at least ``min_accesses`` accesses."""
        uniques = self.unique_words_per_page(min_accesses)
        touched = uniques[uniques > 0]
        if touched.size == 0:
            return {n: 0.0 for n in thresholds}
        return {n: float((touched <= n).mean()) for n in thresholds}

    def top_k_lines(self, k: int) -> np.ndarray:
        """Absolute 64B line indices of the top-``k`` hottest words."""
        counts = self.counts()
        k = min(int(k), counts.size)
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        order = np.lexsort((np.arange(counts.size), -counts.astype(np.int64)))
        rel = order[:k]
        rel = rel[counts[rel] > 0]
        return rel + (self.monitor_region.start >> WORD_SHIFT)

    def top_k_access_count(self, k: int) -> int:
        counts = np.sort(self.counts())[::-1]
        return int(counts[: min(int(k), counts.size)].sum())

    def counts_of_lines(self, lines: ArrayLike) -> np.ndarray:
        """Vectorised count lookup for absolute 64B line indices."""
        rel = np.asarray(lines, dtype=np.int64) - (
            self.monitor_region.start >> WORD_SHIFT
        )
        table = self.counts()
        valid = (rel >= 0) & (rel < table.size)
        out = np.zeros(rel.shape, dtype=np.uint64)
        out[valid] = table[rel[valid]]
        return out

    def reset(self) -> None:
        self._sram[:] = 0
        self._table[:] = 0
        self.total_accesses = 0
        self.spills = 0
