"""Migration requests, outcomes, and the async engine's statistics.

One :class:`MigrationRequest` is the unit of work flowing through the
asynchronous migration subsystem: a logical page, a direction, and the
retry bookkeeping the engine's abort/backoff policy needs.  The
possible fates of a request are enumerated by :class:`Outcome` —
mirroring Nomad's transactional page migration (copy, recheck, then
commit or abort) plus the Promoter safety rejections (§5.2 ④) and the
TPP-style fast-tier-full failure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class Direction(enum.Enum):
    """Which way a page is moving between the tiers."""

    PROMOTE = "promote"  # CXL → DDR
    DEMOTE = "demote"  # DDR → CXL


class Outcome(enum.Enum):
    """How one migration transaction ended."""

    #: Shadow copy survived the dirty recheck; page rebound to the
    #: destination tier.
    COMMITTED = "committed"
    #: Page was already resident on the destination tier; nothing to do.
    NOOP = "noop"
    #: The page was written between copy start and the recheck
    #: (Nomad's mid-copy write): the shadow copy is stale, discard it.
    ABORT_DIRTY = "abort_dirty"
    #: Failure injection fired (robustness testing hook).
    ABORT_INJECTED = "abort_injected"
    #: Destination tier could not supply a frame (TPP's promotion
    #: failure when DDR is full and no victim could be demoted).
    ABORT_ENOMEM = "abort_enomem"
    #: Promoter safety check: DMA-pinned or node-bound page.
    REJECT_PINNED = "reject_pinned"

    @property
    def is_abort(self) -> bool:
        return self in (
            Outcome.ABORT_DIRTY,
            Outcome.ABORT_INJECTED,
            Outcome.ABORT_ENOMEM,
        )


@dataclass
class MigrationRequest:
    """One queued page movement.

    Attributes:
        lpage: logical page id to move.
        direction: promotion or demotion.
        enqueued_epoch: epoch the request first entered the queue.
        not_before_epoch: backoff gate — the engine will not attempt
            the request again before this epoch.
        retries: how many aborted attempts the request has survived.
    """

    lpage: int
    direction: Direction
    enqueued_epoch: int = 0
    not_before_epoch: int = 0
    retries: int = 0


@dataclass
class AsyncMigrationStats:
    """Aggregate outcome counters of the async migration subsystem."""

    enqueued: int = 0
    duplicates: int = 0
    committed: int = 0
    promoted: int = 0
    demoted: int = 0
    aborted: int = 0
    aborted_dirty: int = 0
    aborted_injected: int = 0
    aborted_enomem: int = 0
    retries: int = 0
    dropped_queue_full: int = 0
    dropped_retries: int = 0
    rejected_pinned: int = 0
    noop: int = 0
    #: Copies attempted (commits *and* aborted copies — an aborted
    #: transaction still consumed copy bandwidth).
    pages_copied: int = 0
    copy_bytes: int = 0

    def as_extra(self, prefix: str = "mig_") -> Dict[str, float]:
        """Flatten into ``RunResult.extra``-style numeric fields."""
        return {
            prefix + key: float(value)
            for key, value in vars(self).items()
        }


@dataclass
class TickReport:
    """What one engine tick (one epoch of async work) did."""

    epoch: int = 0
    attempted: int = 0
    committed: int = 0
    promoted: int = 0
    demoted: int = 0
    aborted: int = 0
    aborted_dirty: int = 0
    aborted_injected: int = 0
    aborted_enomem: int = 0
    retried: int = 0
    dropped_retries: int = 0
    rejected_pinned: int = 0
    noop: int = 0
    pages_copied: int = 0
    copy_bytes: int = 0
    outcomes: Dict[Outcome, int] = field(default_factory=dict)
