"""Bounded, deduplicating migration queue with retry backoff.

The queue is the boundary between nomination (policies, Promoter) and
execution (the :class:`~repro.migration.engine.AsyncMigrationEngine`).
It enforces three invariants:

* **bounded** — at most ``capacity`` requests are pending; overflow is
  dropped and counted rather than growing without limit (the same
  discipline the bounded ``ProcFile`` applies to the user/kernel
  handoff);
* **deduplicated** — a page has at most one in-flight request; nominating
  an already-queued page is a cheap no-op (counted as a duplicate).
  Once a request leaves the queue for good (commit, rejection, or
  drop-after-retries) the page becomes nominatable again;
* **backoff-aware** — aborted requests re-enter with a
  ``not_before_epoch`` gate; :meth:`take` skips gated requests without
  reordering the eligible ones.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set

from repro.migration.request import Direction, MigrationRequest


class MigrationQueue:
    """FIFO of :class:`MigrationRequest` with a hard capacity."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity = int(capacity)
        self._queue: Deque[MigrationRequest] = deque()
        self._queued_pages: Set[int] = set()
        self.dropped_full = 0
        self.duplicates = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, lpage: int) -> bool:
        return int(lpage) in self._queued_pages

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._queue)

    def push(self, lpage: int, direction: Direction, epoch: int = 0) -> bool:
        """Enqueue one page movement; False if duplicate or full."""
        lpage = int(lpage)
        if lpage in self._queued_pages:
            self.duplicates += 1
            return False
        if len(self._queue) >= self.capacity:
            self.dropped_full += 1
            return False
        self._queue.append(
            MigrationRequest(lpage, direction, enqueued_epoch=int(epoch))
        )
        self._queued_pages.add(lpage)
        return True

    def push_many(
        self, lpages: Iterable[int], direction: Direction, epoch: int = 0
    ) -> int:
        """Enqueue a batch; returns how many were accepted."""
        return sum(1 for p in lpages if self.push(p, direction, epoch))

    def take(self, epoch: int, limit: Optional[int] = None) -> List[MigrationRequest]:
        """Dequeue up to ``limit`` requests eligible at ``epoch``.

        Requests still inside their backoff window stay queued in
        order.  Taken requests keep their dedupe reservation until the
        caller settles them via :meth:`requeue` or :meth:`release`.
        """
        budget = len(self._queue) if limit is None else int(limit)
        taken: List[MigrationRequest] = []
        kept: List[MigrationRequest] = []
        while self._queue and budget > 0:
            req = self._queue.popleft()
            if req.not_before_epoch > epoch:
                kept.append(req)
                continue
            taken.append(req)
            budget -= 1
        # Gated requests return to the front, original order preserved.
        self._queue.extendleft(reversed(kept))
        return taken

    def requeue(self, request: MigrationRequest, not_before_epoch: int) -> None:
        """Return an aborted request to the back of the queue."""
        if request.lpage not in self._queued_pages:
            self._queued_pages.add(request.lpage)
        request.not_before_epoch = int(not_before_epoch)
        self._queue.append(request)

    def unget(self, request: MigrationRequest) -> None:
        """Return an *unattempted* request to the front of the queue.

        Used when the engine runs out of epoch budget mid-batch: the
        request keeps its position, retry count, and backoff gate.
        """
        self._queued_pages.add(request.lpage)
        self._queue.appendleft(request)

    def release(self, lpage: int) -> None:
        """Settle a taken request: the page is nominatable again."""
        self._queued_pages.discard(int(lpage))
