"""Failure-injection hooks for the async migration subsystem.

Robustness tests drive the transactional copier through its abort
paths without having to construct the triggering memory state by hand:

* ``abort_rate`` — probability a copy fails mid-flight (models DMA
  errors, races with unmap, or Nomad's "fall back" conditions beyond
  dirty pages);
* ``force_enomem`` — pretend the fast tier can never supply a frame,
  exercising the ENOMEM → demote-first/abort path deterministically;
* ``dirty_pages`` — extra pages reported dirty at every recheck, on
  top of the epoch's snooped writes.

The injector is seeded, so failure sequences are reproducible run to
run (the engine derives the seed from ``SimConfig.seed``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np


class FailureInjector:
    """Deterministic failure source for migration transactions."""

    def __init__(
        self,
        abort_rate: float = 0.0,
        seed: int = 0,
        force_enomem: bool = False,
        dirty_pages: Optional[Iterable[int]] = None,
    ) -> None:
        if not 0.0 <= abort_rate <= 1.0:
            raise ValueError("abort_rate must be in [0, 1]")
        self.abort_rate = float(abort_rate)
        self.force_enomem = bool(force_enomem)
        self.dirty_pages: Set[int] = {int(p) for p in (dirty_pages or ())}
        self._rng = np.random.default_rng(seed)
        self.injected_aborts = 0

    def should_abort_copy(self) -> bool:
        """Roll the injected mid-copy failure for one transaction."""
        if self.abort_rate <= 0.0:
            return False
        if self.abort_rate >= 1.0 or self._rng.random() < self.abort_rate:
            self.injected_aborts += 1
            return True
        return False

    def is_dirty(self, lpage: int) -> bool:
        """Injected dirtiness (checked in addition to snooped writes)."""
        return int(lpage) in self.dirty_pages

    def deny_frame(self) -> bool:
        """Injected fast-tier allocation failure (forced ENOMEM)."""
        return self.force_enomem
