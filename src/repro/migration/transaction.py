"""Transactional page copy: shadow copy → dirty recheck → commit/abort.

Models Nomad-style transactional page migration: the page stays mapped
while a shadow copy is made to the destination tier; before the remap
commits, the copier rechecks whether the page was written during the
copy window (against the epoch's snooped writes plus any injected
dirtiness).  A dirty page means the shadow copy is stale — the
transaction aborts and the copy bandwidth was wasted, but the
application never observed a stalled page (that is the point of the
transactional scheme).

Commit-side failures are also modelled: promotion needs a DDR frame,
and when the fast tier is full the copier either demotes an MGLRU
victim first (TPP's demote-then-promote discipline) or aborts with
ENOMEM, per configuration.  Pinned pages are rejected outright before
any copy work (Promoter's §5.2 ④ safety check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from repro.memory.migration import MigrationEngine
from repro.memory.tiers import NodeKind
from repro.migration.injection import FailureInjector
from repro.migration.request import Direction, MigrationRequest, Outcome


@dataclass
class TransactionResult:
    """Outcome of one transactional page migration attempt."""

    request: MigrationRequest
    outcome: Outcome
    #: Page copies performed (0 for rejections/ENOMEM-before-copy, 1
    #: for a plain copy, 2 when a demote-first fallback also copied).
    copies: int = 0
    #: Victim demoted by the fast-tier-full fallback, if any.
    fallback_victim: Optional[int] = None


class TransactionalCopier:
    """Executes one migration request as a Nomad-style transaction.

    Args:
        engine: the synchronous :class:`MigrationEngine` — supplies the
            memory system, MGLRU, pin table, and the stats the rest of
            the pipeline already reads (``promoted``/``demoted``/
            ``time_us``).
        injector: failure-injection hooks.
        enomem_fallback: when True, a full DDR triggers a demote-first
            fallback; when False it aborts the promotion with ENOMEM.
        remap_us: kernel CPU cost charged per committed page (the
            unmap/remap/TLB-shootdown share of the paper's 54 µs; the
            copy itself is charged as memory traffic, not CPU time).
    """

    def __init__(
        self,
        engine: MigrationEngine,
        injector: Optional[FailureInjector] = None,
        enomem_fallback: bool = True,
        remap_us: float = 12.0,
    ) -> None:
        if remap_us < 0:
            raise ValueError("remap_us must be non-negative")
        self.engine = engine
        self.memory = engine.memory
        self.mglru = engine.mglru
        self.injector = injector if injector is not None else FailureInjector()
        self.enomem_fallback = bool(enomem_fallback)
        self.remap_us = float(remap_us)

    # ------------------------------------------------------------------

    def _is_pinned(self, lpage: int) -> bool:
        return bool(self.engine._pins[lpage] != 0)

    def _record_rejection(self, lpage: int) -> None:
        reason = self.engine.pin_reason(lpage)
        self.engine.stats.rejected += 1
        self.engine.stats.rejected_by_reason[reason] = (
            self.engine.stats.rejected_by_reason.get(reason, 0) + 1
        )

    def _commit_move(self, lpage: int, to: NodeKind) -> None:
        self.memory.move_page(lpage, to)
        if to is NodeKind.DDR:
            self.mglru.track(np.array([lpage]))
            self.engine.stats.promoted += 1
        else:
            self.mglru.untrack(np.array([lpage]))
            self.engine.stats.demoted += 1
        self.engine.stats.time_us += self.remap_us

    def _demote_first_victim(self, protect: int) -> Optional[int]:
        """Pick a demotable MGLRU victim on DDR (never ``protect``)."""
        ddr_pages = self.memory.pages_on(NodeKind.DDR)
        if ddr_pages.size == 0:
            return None
        for victim in self.mglru.coldest(ddr_pages.size, among=ddr_pages).tolist():
            if victim != protect and not self._is_pinned(victim):
                return victim
        return None

    def _ensure_frame(
        self, req: MigrationRequest, dst: NodeKind, result: TransactionResult
    ) -> bool:
        """Secure a destination frame; False means ENOMEM abort."""
        if self.injector.deny_frame():
            return False
        node = self.memory.node(dst)
        free = node.free_pages
        if dst is NodeKind.DDR:
            free -= self.engine.ddr_reserve_pages
        if free > 0:
            return True
        if dst is not NodeKind.DDR or not self.enomem_fallback:
            return False
        victim = self._demote_first_victim(protect=req.lpage)
        if victim is None:
            return False  # no demotable victim → ENOMEM
        try:
            self._commit_move(victim, NodeKind.CXL)
        except MemoryError:
            return False
        result.fallback_victim = victim
        result.copies += 1
        return True

    # ------------------------------------------------------------------

    def execute(
        self, request: MigrationRequest, dirty: Set[int]
    ) -> TransactionResult:
        """Run one request through copy → recheck → commit/abort.

        Args:
            request: the queued page movement to attempt.
            dirty: logical pages the snoop stage saw written inside
                this epoch's copy window.
        """
        result = TransactionResult(request=request, outcome=Outcome.NOOP)
        lpage = request.lpage
        dst = (
            NodeKind.DDR
            if request.direction is Direction.PROMOTE
            else NodeKind.CXL
        )

        if self._is_pinned(lpage):
            self._record_rejection(lpage)
            result.outcome = Outcome.REJECT_PINNED
            return result
        if self.memory.node_of_page(lpage) is dst:
            result.outcome = Outcome.NOOP
            return result
        if not self._ensure_frame(request, dst, result):
            result.outcome = Outcome.ABORT_ENOMEM
            return result

        # Shadow copy: bandwidth is consumed whether or not we commit.
        result.copies += 1
        if self.injector.should_abort_copy():
            result.outcome = Outcome.ABORT_INJECTED
            return result
        if lpage in dirty or self.injector.is_dirty(lpage):
            result.outcome = Outcome.ABORT_DIRTY
            return result

        try:
            self._commit_move(lpage, dst)
        except MemoryError:
            result.outcome = Outcome.ABORT_ENOMEM
            return result
        result.outcome = Outcome.COMMITTED
        return result
