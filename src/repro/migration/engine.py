"""Asynchronous migration engine: budgets, aborts, retry, backoff.

The engine replaces the instantaneous migration path when
``SimConfig.migration_mode == "async"``.  Nominations (policy
promotions, Promoter writes, watermark demotions) *enqueue* work; once
per epoch the pipeline calls :meth:`AsyncMigrationEngine.tick`, which
executes queued requests as Nomad-style transactions under two
budgets:

* an **in-flight page budget** — at most ``inflight_budget`` page
  copies per epoch (a demote-first fallback counts as a second copy);
* a **bandwidth throttle** — when ``copy_gbps`` is set, the copies a
  tick may perform are additionally bounded by what the migration copy
  engine can move in one epoch of simulated time.

Aborted transactions are retried with exponential backoff up to
``max_retries`` times, then dropped — the escape hatch that keeps a
perpetually dirty page from clogging the queue.  Dropped (and
committed, and rejected) pages leave the queue's dedupe set, so the
policy can nominate them again later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Set

import numpy as np

from repro.memory.address import PAGE_SIZE
from repro.memory.migration import MigrationEngine
from repro.migration.injection import FailureInjector
from repro.migration.queue import MigrationQueue
from repro.migration.request import (
    AsyncMigrationStats,
    Direction,
    MigrationRequest,
    Outcome,
    TickReport,
)
from repro.migration.transaction import TransactionalCopier, TransactionResult

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.config import SimConfig

#: Cap on the exponential-backoff shift (keeps gates finite).
_MAX_BACKOFF_SHIFT = 16


@dataclass
class AsyncMigrationConfig:
    """Knobs of the asynchronous migration subsystem.

    Attributes:
        inflight_budget: max page copies per epoch tick.
        queue_capacity: bounded queue size (overflow is dropped).
        abort_rate: injected mid-copy failure probability.
        max_retries: aborted requests retry this many times, then drop.
        backoff_epochs: base backoff; retry *n* waits
            ``backoff_epochs * 2**(n-1)`` epochs.
        copy_gbps: migration copy-engine bandwidth in GB/s (0 = only
            the in-flight budget throttles).
        enomem_fallback: demote an MGLRU victim when DDR is full
            (False aborts the promotion with ENOMEM instead).
        remap_us: kernel CPU cost per committed page (see
            :class:`~repro.migration.transaction.TransactionalCopier`).
        page_scale: real 4KB pages grouped into one model page (used
            by the bandwidth throttle; mirrors
            ``SimConfig.footprint_scale``).
        seed: failure-injection RNG seed.
    """

    inflight_budget: int = 128
    queue_capacity: int = 4096
    abort_rate: float = 0.0
    max_retries: int = 3
    backoff_epochs: int = 1
    copy_gbps: float = 0.0
    enomem_fallback: bool = True
    remap_us: float = 12.0
    page_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.inflight_budget < 1:
            raise ValueError("inflight_budget must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_epochs < 0:
            raise ValueError("backoff_epochs must be non-negative")
        if self.copy_gbps < 0:
            raise ValueError("copy_gbps must be non-negative")
        if self.page_scale < 1:
            raise ValueError("page_scale must be >= 1")

    @classmethod
    def from_sim_config(cls, cfg: SimConfig) -> AsyncMigrationConfig:
        """Derive the subsystem's config from a ``SimConfig``."""
        return cls(
            inflight_budget=cfg.migration_inflight_budget,
            queue_capacity=cfg.migration_queue_capacity,
            abort_rate=cfg.migration_abort_rate,
            max_retries=cfg.migration_max_retries,
            backoff_epochs=cfg.migration_backoff_epochs,
            copy_gbps=cfg.migration_copy_gbps,
            enomem_fallback=cfg.migration_enomem_policy == "demote-first",
            remap_us=cfg.migration_remap_us,
            page_scale=max(1.0, cfg.footprint_scale),
            seed=cfg.seed,
        )


class AsyncMigrationEngine:
    """Bounded-queue transactional migration over a sync engine.

    The synchronous :class:`MigrationEngine` stays the owner of the pin
    table and the ``promoted``/``demoted``/``time_us`` stats the rest
    of the pipeline reads; this engine adds the queue, the budgets, and
    the abort/retry state machine on top.
    """

    def __init__(
        self,
        engine: MigrationEngine,
        config: Optional[AsyncMigrationConfig] = None,
        injector: Optional[FailureInjector] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else AsyncMigrationConfig()
        self.queue = MigrationQueue(self.config.queue_capacity)
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry(enabled=False)
        self._m_enqueued = metrics.counter(
            "migration_enqueued_total", "Requests accepted into the queue"
        )
        self._m_dropped_full = metrics.counter(
            "migration_dropped_queue_full_total",
            "Requests dropped because the bounded queue was full",
        )
        self._m_outcomes = metrics.counter(
            "migration_outcomes_total",
            "Transaction outcomes per tick settlement",
            labels=("outcome",),
        )
        self._m_copy_bytes = metrics.counter(
            "migration_copy_bytes_total", "Model bytes moved by the copy engine"
        )
        self._m_pending = metrics.gauge(
            "migration_pending", "Requests queued after the latest tick"
        )
        self._m_batch = metrics.histogram(
            "migration_tick_attempts",
            "Transactions attempted per tick",
            buckets=tuple(float(1 << e) for e in range(0, 13)),
        )
        self.injector = (
            injector
            if injector is not None
            else FailureInjector(
                abort_rate=self.config.abort_rate, seed=self.config.seed
            )
        )
        self.copier = TransactionalCopier(
            engine,
            injector=self.injector,
            enomem_fallback=self.config.enomem_fallback,
            remap_us=self.config.remap_us,
        )
        self.stats = AsyncMigrationStats()
        self.current_epoch = 0
        self.last_report: Optional[TickReport] = None

    # ------------------------------------------------------------------
    # enqueue side (policies / Promoter)

    @property
    def pending(self) -> int:
        """Requests currently queued."""
        return len(self.queue)

    def _enqueue(self, lpages: Iterable[int], direction: Direction) -> int:
        accepted = 0
        dup_before = self.queue.duplicates
        full_before = self.queue.dropped_full
        for lpage in np.atleast_1d(np.asarray(lpages, dtype=np.int64)).tolist():
            if self.queue.push(lpage, direction, self.current_epoch):
                accepted += 1
        self.stats.enqueued += accepted
        self.stats.duplicates += self.queue.duplicates - dup_before
        self.stats.dropped_queue_full += self.queue.dropped_full - full_before
        self._m_enqueued.inc(accepted)
        self._m_dropped_full.inc(self.queue.dropped_full - full_before)
        return accepted

    def enqueue_promotions(self, lpages: Iterable[int]) -> int:
        """Queue pages for promotion; returns how many were accepted."""
        return self._enqueue(lpages, Direction.PROMOTE)

    def enqueue_demotions(self, lpages: Iterable[int]) -> int:
        """Queue pages for demotion; returns how many were accepted."""
        return self._enqueue(lpages, Direction.DEMOTE)

    # ------------------------------------------------------------------
    # execute side (pipeline tick)

    def _bandwidth_pages(self, epoch_s: float) -> Optional[int]:
        """Model pages the copy engine can move in ``epoch_s``."""
        if self.config.copy_gbps <= 0 or epoch_s <= 0:
            return None
        real_bytes = self.config.copy_gbps * 1e9 * epoch_s
        return int(real_bytes / (PAGE_SIZE * self.config.page_scale))

    def _copies_needed(self, request: MigrationRequest) -> int:
        """Worst-case copy-budget cost of one request."""
        if (
            request.direction is Direction.PROMOTE
            and self.config.enomem_fallback
            and self.engine.memory.ddr.free_pages - self.engine.ddr_reserve_pages
            <= 0
        ):
            return 2  # demote-first fallback copies the victim too
        return 1

    def _backoff_gate(self, epoch: int, retries: int) -> int:
        shift = min(max(retries - 1, 0), _MAX_BACKOFF_SHIFT)
        wait = self.config.backoff_epochs * (1 << shift)
        return epoch + max(1, wait)

    def _settle(
        self,
        request: MigrationRequest,
        result: TransactionResult,
        report: TickReport,
        epoch: int,
    ) -> None:
        outcome = result.outcome
        report.attempted += 1
        report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
        report.pages_copied += result.copies
        report.copy_bytes += result.copies * PAGE_SIZE
        self.stats.pages_copied += result.copies
        self.stats.copy_bytes += result.copies * PAGE_SIZE
        self._m_outcomes.labels(outcome=outcome.value).inc()
        self._m_copy_bytes.inc(result.copies * PAGE_SIZE)
        if result.fallback_victim is not None:
            # The demote-first victim committed even if the promotion
            # itself later aborted.
            report.committed += 1
            report.demoted += 1
            self.stats.committed += 1
            self.stats.demoted += 1

        if outcome is Outcome.COMMITTED:
            self.queue.release(request.lpage)
            report.committed += 1
            self.stats.committed += 1
            if request.direction is Direction.PROMOTE:
                report.promoted += 1
                self.stats.promoted += 1
            else:
                report.demoted += 1
                self.stats.demoted += 1
            return
        if outcome is Outcome.NOOP:
            self.queue.release(request.lpage)
            report.noop += 1
            self.stats.noop += 1
            return
        if outcome is Outcome.REJECT_PINNED:
            self.queue.release(request.lpage)
            report.rejected_pinned += 1
            self.stats.rejected_pinned += 1
            return

        # Abort path: dirty / injected / ENOMEM → retry or drop.
        report.aborted += 1
        self.stats.aborted += 1
        kind = {
            Outcome.ABORT_DIRTY: "aborted_dirty",
            Outcome.ABORT_INJECTED: "aborted_injected",
            Outcome.ABORT_ENOMEM: "aborted_enomem",
        }[outcome]
        setattr(report, kind, getattr(report, kind) + 1)
        setattr(self.stats, kind, getattr(self.stats, kind) + 1)
        request.retries += 1
        if request.retries > self.config.max_retries:
            self.queue.release(request.lpage)
            report.dropped_retries += 1
            self.stats.dropped_retries += 1
            return
        report.retried += 1
        self.stats.retries += 1
        self.queue.requeue(request, self._backoff_gate(epoch, request.retries))

    def tick(
        self,
        epoch: int,
        dirty_pages: Optional[Iterable[int]] = None,
        epoch_s: float = 0.0,
    ) -> TickReport:
        """Execute one epoch of queued migrations under the budgets.

        Args:
            epoch: current epoch (drives backoff gates).
            dirty_pages: logical pages written inside this epoch's
                copy window (the snooped write set the dirty recheck
                tests against).
            epoch_s: the epoch's estimated duration, for the
                bandwidth throttle (ignored when ``copy_gbps`` is 0).
        """
        self.current_epoch = int(epoch)
        report = TickReport(epoch=int(epoch))
        dirty: Set[int] = (
            set(int(p) for p in np.atleast_1d(np.asarray(dirty_pages)).tolist())
            if dirty_pages is not None and np.asarray(dirty_pages).size
            else set()
        )
        budget = self.config.inflight_budget
        bw_pages = self._bandwidth_pages(epoch_s)
        if bw_pages is not None:
            budget = min(budget, bw_pages)
        if budget <= 0:
            # Even a fully starved tick must refresh the queue-depth
            # gauge: a throttled copy engine with a pinned queue is
            # exactly what the SLO watchdog watches migration_pending
            # for.
            self._m_pending.set(len(self.queue))
            self.last_report = report
            return report

        batch = self.queue.take(epoch, budget)
        for i, request in enumerate(batch):
            needs = self._copies_needed(request)
            if needs > budget:
                # Out of copy budget: everything unattempted returns to
                # the front of the queue, order preserved.
                for leftover in reversed(batch[i:]):
                    self.queue.unget(leftover)
                break
            result = self.copier.execute(request, dirty)
            self._settle(request, result, report, epoch)
            budget -= result.copies
        if report.attempted:
            self._m_batch.observe(float(report.attempted))
        self._m_pending.set(len(self.queue))
        self.last_report = report
        return report

    def reset_stats(self) -> None:
        self.stats = AsyncMigrationStats()
