"""Asynchronous, transactional page-migration subsystem.

Replaces the instantaneous migration path when
``SimConfig.migration_mode == "async"``: a bounded queue with per-epoch
in-flight budgets and a bandwidth throttle, Nomad-style transactional
copies (shadow copy → dirty recheck → commit/abort), retry with
exponential backoff, a drop-after-N-retries escape hatch, and failure
injection hooks for robustness testing.
"""

from repro.migration.engine import AsyncMigrationConfig, AsyncMigrationEngine
from repro.migration.injection import FailureInjector
from repro.migration.queue import MigrationQueue
from repro.migration.request import (
    AsyncMigrationStats,
    Direction,
    MigrationRequest,
    Outcome,
    TickReport,
)
from repro.migration.transaction import TransactionalCopier, TransactionResult

__all__ = [
    "AsyncMigrationConfig",
    "AsyncMigrationEngine",
    "AsyncMigrationStats",
    "Direction",
    "FailureInjector",
    "MigrationQueue",
    "MigrationRequest",
    "Outcome",
    "TickReport",
    "TransactionResult",
    "TransactionalCopier",
]
