"""Correctness tooling: invariant checking and differential oracles.

Three layers guard the repro's trackers and migration paths (see
``docs/verification.md``):

* :mod:`repro.verify.invariants` — per-epoch assertions wired into the
  pipeline behind ``SimConfig.check_invariants`` / ``repro run
  --check-invariants``: counter conservation, tier conservation,
  tracker/queue bounds, non-negative perf times.
* :mod:`repro.verify.differential` — paired-configuration oracles
  (``repro verify`` / ``tools/run_differential.py``): exact vs batched
  sketch, PAC cache vs direct mode, instant vs async-unlimited
  migration, reference vs batched engine (full pipeline, bit-exact),
  per-kernel batched vs reference state, and a 1-tenant, 2-tier fleet
  vs the single-run engine (bit-exact), diffed with per-field
  tolerances.
* ``tests/verify/`` — Hypothesis property suites encoding the paper's
  analytical guarantees (CM-Sketch never underestimates, Space-Saving
  overestimates within N/K, exact-oracle CAM selection, MGLRU victim
  validity).
"""

from repro.verify.differential import (
    MIGRATION_TOLERANCES,
    ORACLES,
    DiffRow,
    OracleReport,
    diff_run_results,
    engine_oracle,
    fleet_oracle,
    kernels_oracle,
    migration_oracle,
    pac_oracle,
    resume_oracle,
    run_all,
    sketch_oracle,
)
from repro.verify.invariants import (
    InvariantChecker,
    InvariantViolation,
    Violation,
)

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "DiffRow",
    "OracleReport",
    "MIGRATION_TOLERANCES",
    "ORACLES",
    "diff_run_results",
    "sketch_oracle",
    "pac_oracle",
    "migration_oracle",
    "engine_oracle",
    "fleet_oracle",
    "kernels_oracle",
    "resume_oracle",
    "run_all",
]
