"""Per-epoch invariant checking for the simulation pipeline.

M5's evaluation only makes sense if the profilers are *exact or
provably bounded* (§3, §5.1): PAC conserves every access it snoops,
the trackers never exceed their hardware table sizes, and the memory
system never loses or duplicates a page.  The
:class:`InvariantChecker` encodes those guarantees as assertions that
run once per epoch, as an extra pipeline stage appended when
``SimConfig.check_invariants`` is on (the default pipeline is
untouched, so invariant-off runs stay bit-identical to the frozen
goldens).

Invariant catalogue (see ``docs/verification.md``):

* ``pac_conservation`` / ``wac_conservation`` — counter conservation:
  ``total_accesses == sum(table) + sum(live sram)``.  PAC is the
  ground truth of the access-count-ratio metric; a lost access would
  silently bias every score.
* ``tier_conservation`` — every logical page is mapped to exactly one
  frame on exactly one node, no two pages share a frame, per-node
  occupancy equals the node's used-frame count, and fast-tier
  occupancy never exceeds capacity.
* ``tracker_bounds`` — the CM-Sketch CAM holds at most K entries, a
  Space-Saving/Misra–Gries summary holds at most ``capacity`` entries
  and its lazy heap stays within its compaction bound, and CAM offer
  statistics are conserved (hits + insertions + replacements +
  rejections).
* ``queue_bounds`` — the async migration queue never exceeds its
  capacity, holds no duplicate pages, every queued page is covered by
  the dedup set, and one tick never copies more pages than the
  in-flight budget allows.
* ``perf_nonnegative`` — every component of the epoch's performance
  decomposition (compute, memory, overhead, migration) is finite and
  non-negative.
* ``mglru_bounds`` — tracked generations stay inside the
  ``num_generations`` window and the heat signal is non-negative.

Each check increments ``invariant_checks_total{invariant=...}``;
violations increment ``invariant_violations_total{invariant=...}`` and
publish an ``invariant.violation`` telemetry event before the checker
raises (or records, in ``mode="record"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.spacesaving import SpaceSaving
from repro.core.topk import SortedCam

if TYPE_CHECKING:
    from repro.migration.request import TickReport
    from repro.sim.engine import Simulation, _EpochState
    from repro.sim.perf import EpochPerf


class InvariantViolation(AssertionError):
    """An invariant the pipeline must uphold was broken."""


@dataclass
class Violation:
    """One recorded invariant failure."""

    invariant: str
    epoch: int
    detail: str

    def __str__(self) -> str:
        return f"[epoch {self.epoch}] {self.invariant}: {self.detail}"


class InvariantChecker:
    """Cross-checks the simulation's state once per epoch.

    Args:
        sim: the :class:`~repro.sim.engine.Simulation` under check; the
            checker reads trackers, tiers, and queues through it.
        mode: ``"raise"`` aborts the run on the first violation with an
            :class:`InvariantViolation`; ``"record"`` collects every
            violation in :attr:`violations` and lets the run finish
            (the differential runner's mode, so one bad epoch does not
            hide later ones).
    """

    def __init__(self, sim: Simulation, mode: str = "raise") -> None:
        if mode not in ("raise", "record"):
            raise ValueError("mode must be 'raise' or 'record'")
        self.sim = sim
        self.mode = mode
        self.violations: List[Violation] = []
        self.checks_run = 0
        reg = sim.obs.registry
        self._m_checks = reg.counter(
            "invariant_checks_total",
            "Invariant evaluations per kind",
            labels=("invariant",),
        )
        self._m_violations = reg.counter(
            "invariant_violations_total",
            "Invariant violations per kind",
            labels=("invariant",),
        )

    # ------------------------------------------------------------------

    def _fail(self, invariant: str, epoch: int, detail: str) -> None:
        violation = Violation(invariant, int(epoch), detail)
        self.violations.append(violation)
        self._m_violations.labels(invariant=invariant).inc()
        if self.sim.telemetry.active:
            self.sim.telemetry.publish(
                "invariant.violation", int(epoch), 0.0,
                invariant=invariant,
            )
        if self.mode == "raise":
            raise InvariantViolation(str(violation))

    def _check(self, invariant: str, epoch: int, ok: bool, detail: str) -> None:
        self.checks_run += 1
        self._m_checks.labels(invariant=invariant).inc()
        if not ok:
            self._fail(invariant, epoch, detail)

    # ------------------------------------------------------------------
    # individual invariants

    def check_pac_conservation(self, epoch: int) -> None:
        pac = self.sim.pac
        total = int(pac._table.sum())
        if pac._cache_mode:
            total += int(pac._sram[pac._tags >= 0].sum())
        else:
            total += int(pac._sram.sum())
        self._check(
            "pac_conservation", epoch, total == pac.total_accesses,
            f"table+sram hold {total} accesses but PAC snooped "
            f"{pac.total_accesses}",
        )

    def check_wac_conservation(self, epoch: int) -> None:
        wac = self.sim.wac
        if wac is None:
            return
        total = int(wac._table.sum()) + int(wac._sram.sum())
        self._check(
            "wac_conservation", epoch, total == wac.total_accesses,
            f"table+sram hold {total} accesses but WAC snooped "
            f"{wac.total_accesses}",
        )

    def check_tier_conservation(self, epoch: int) -> None:
        mem = self.sim.memory
        codes = mem.node_map
        frames = mem.frame_map
        unmapped = int((codes < 0).sum())
        self._check(
            "tier_conservation", epoch, unmapped == 0,
            f"{unmapped} logical pages are on no tier",
        )
        # N-tier conservation: iterate the node list, not DDR/CXL —
        # fleet hierarchies add a pooled node behind the CXL tier.
        counts = [mem.nr_pages_at(i) for i in range(mem.num_nodes)]
        self._check(
            "tier_conservation", epoch,
            sum(counts) == mem.num_logical_pages,
            f"tiers hold {'+'.join(str(c) for c in counts)} pages, "
            f"footprint is {mem.num_logical_pages}",
        )
        for node, count in zip(mem.nodes, counts):
            self._check(
                "tier_conservation", epoch,
                count <= node.capacity_pages,
                f"node {node.name} holds {count} pages over its "
                f"{node.capacity_pages}-page capacity",
            )
        used = [node.used_pages for node in mem.nodes]
        self._check(
            "tier_conservation", epoch, counts == used,
            f"page map says {counts} per tier, frame allocators "
            f"say {used}",
        )
        dupes = frames.size - int(np.unique(frames).size)
        self._check(
            "tier_conservation", epoch, dupes == 0,
            f"{dupes} logical pages share a physical frame",
        )

    def _check_summary(self, epoch: int, summary: SpaceSaving, what: str) -> None:
        self._check(
            "tracker_bounds", epoch, len(summary) <= summary.capacity,
            f"{what} holds {len(summary)} entries over capacity "
            f"{summary.capacity}",
        )
        self._check(
            "tracker_bounds", epoch,
            len(summary._heap) <= summary._heap_bound,
            f"{what} lazy heap grew to {len(summary._heap)} entries "
            f"(bound {summary._heap_bound})",
        )

    def _check_cam(self, epoch: int, cam: SortedCam, what: str) -> None:
        self._check(
            "tracker_bounds", epoch, len(cam) <= cam.k,
            f"{what} holds {len(cam)} entries over K={cam.k}",
        )
        settled = cam.hits + cam.insertions + cam.replacements + cam.rejections
        self._check(
            "tracker_bounds", epoch, settled == cam.offers,
            f"{what} offer stats lose offers: "
            f"{settled} settled vs {cam.offers} offered",
        )

    def check_tracker_bounds(self, epoch: int) -> None:
        manager = self.sim._manager
        if manager is None:
            return
        for tracker in (manager.hpt, manager.hwt):
            if tracker is None:
                continue
            cam = getattr(tracker, "cam", None)
            if cam is not None:
                self._check_cam(epoch, cam, type(tracker).__name__)
            summary = getattr(tracker, "summary", None)
            if isinstance(summary, SpaceSaving):
                self._check_summary(epoch, summary, type(tracker).__name__)

    def check_queue_bounds(
        self, epoch: int, tick: Optional[TickReport] = None
    ) -> None:
        eng = self.sim.async_engine
        if eng is None:
            return
        queue = eng.queue
        self._check(
            "queue_bounds", epoch, len(queue) <= queue.capacity,
            f"queue holds {len(queue)} requests over capacity "
            f"{queue.capacity}",
        )
        queued = [req.lpage for req in queue._queue]
        self._check(
            "queue_bounds", epoch, len(queued) == len(set(queued)),
            f"queue holds {len(queued) - len(set(queued))} duplicate pages",
        )
        uncovered = set(queued) - queue._queued_pages
        self._check(
            "queue_bounds", epoch, not uncovered,
            f"{len(uncovered)} queued pages missing from the dedup set",
        )
        if tick is not None:
            budget = eng.config.inflight_budget
            self._check(
                "queue_bounds", epoch, tick.pages_copied <= budget,
                f"tick copied {tick.pages_copied} pages over the "
                f"{budget}-page in-flight budget",
            )

    def check_perf_nonnegative(
        self, epoch: int, perf: Optional[EpochPerf]
    ) -> None:
        if perf is None:
            return
        parts = {
            "compute_s": perf.compute_s,
            "memory_s": perf.memory_s,
            "overhead_s": perf.overhead_s,
            "migration_s": perf.migration_s,
        }
        bad = {k: v for k, v in parts.items() if not (np.isfinite(v) and v >= 0)}
        self._check(
            "perf_nonnegative", epoch, not bad,
            f"perf model produced negative/non-finite times: {bad}",
        )

    def check_mglru_bounds(self, epoch: int) -> None:
        mglru = self.sim.mglru
        gens = mglru._gen
        tracked = gens >= 0
        behind = int((tracked & (gens < mglru.min_seq)).sum())
        ahead = int((gens > mglru.max_seq).sum())
        self._check(
            "mglru_bounds", epoch, behind == 0 and ahead == 0,
            f"{behind} pages behind the generation window, {ahead} ahead",
        )
        negative_heat = int((mglru._heat < 0).sum())
        self._check(
            "mglru_bounds", epoch, negative_heat == 0,
            f"{negative_heat} pages carry negative heat",
        )

    # ------------------------------------------------------------------

    def check_epoch(self, st: _EpochState) -> None:
        """Run the full catalogue against one finished epoch."""
        epoch = st.epoch
        self.check_pac_conservation(epoch)
        self.check_wac_conservation(epoch)
        self.check_tier_conservation(epoch)
        self.check_tracker_bounds(epoch)
        self.check_queue_bounds(epoch, tick=st.tick)
        self.check_perf_nonnegative(epoch, st.perf)
        self.check_mglru_bounds(epoch)

    def summary(self) -> dict:
        """Checks-run / violation totals for reports and CLI output."""
        return {
            "checks_run": self.checks_run,
            "violations": len(self.violations),
        }
