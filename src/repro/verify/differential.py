"""Differential oracles: paired configurations that must agree.

The repro keeps several update paths per structure (exact, batched,
cached) and two migration modes.  Each pair below is an *oracle*: one
side is the slow, obviously-correct semantics, the other is the fast
path the pipeline actually runs, and the two must agree — exactly
where the docstrings promise identical state, within a tolerance where
only the aggregate behaviour is guaranteed.

Six oracle pairs (``repro verify`` / ``tools/run_differential.py``):

* ``sketch`` — :class:`~repro.core.trackers.CmSketchTopK` with
  ``exact_sequence=True`` (per-access hardware semantics) vs the
  batched default.  The CM-Sketch counter table and ``items_seen``
  must be identical; the CAM's top-K selection must overlap within
  tolerance (admission order differs transiently, §5.1 reset makes
  the divergence bounded per query period).
* ``pac`` — :class:`~repro.cxl.pac.PageAccessCounter` cache mode
  (bounded SRAM, direct-mapped, evict-on-conflict) vs direct mode.
  After ``flush()`` both must report *identical* per-page counts:
  PAC conserves every snooped access regardless of SRAM sizing.
* ``migration`` — a full simulation in ``instant`` mode vs ``async``
  mode with an effectively unlimited budget, no injected aborts, and
  the dirty-page model disabled.  Migration totals and tier occupancy
  must agree within small tolerances; execution time agrees loosely
  (the async cost model charges remap CPU + copy contention instead
  of the flat 54 µs).
* ``engine`` — a full simulation with ``engine="reference"``
  (per-access Python loops in every stage) vs ``engine="batched"``
  (the vectorized array kernels).  Zero tolerance everywhere: the
  batched hot path promises bit-identical results, down to the
  hot-PFN list.
* ``kernels`` — each vectorized kernel against its per-access
  reference implementation on one shared skewed stream: trackers
  (CM-Sketch/CAM, SpaceSaving, MisraGries, StickySampling, Exact),
  PAC/WAC observe, MGLRU generation updates, address translation,
  and bulk promote/demote frame placement.  All state comparisons
  are exact (mismatch counts with zero tolerance).
* ``fleet`` — a 1-tenant, 2-tier :class:`~repro.fleet.FleetSimulation`
  vs the plain single-run :class:`~repro.sim.engine.Simulation` under
  both epoch engines.  Zero tolerance everywhere, down to the frame
  and node maps: the fleet path (NodeSpec tiers, tenant windows,
  lockstep driver) must degenerate exactly to the single-run engine.

Every comparison is a :class:`DiffRow` with a per-field tolerance
(0 = bit-exact required), collected into an :class:`OracleReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, SupportsFloat

import numpy as np

from repro.core.trackers import CmSketchTopK
from repro.cxl.pac import PageAccessCounter
from repro.memory.address import PAGE_SHIFT, PAGE_SIZE, AddressRegion
from repro.sim.config import SimConfig
from repro.sim.engine import RunResult, Simulation
from repro.workloads import registry


@dataclass
class DiffRow:
    """One compared quantity: oracle value ``a`` vs fast-path ``b``."""

    field: str
    a: float
    b: float
    #: Allowed relative drift of ``b`` from ``a`` (0 = must be equal).
    #: A zero baseline falls back to comparing absolutely.
    tolerance: float = 0.0

    @property
    def drift(self) -> float:
        if self.a == self.b:
            return 0.0
        scale = max(abs(self.a), abs(self.b))
        return abs(self.a - self.b) / scale if scale else 0.0

    @property
    def ok(self) -> bool:
        return self.drift <= self.tolerance


@dataclass
class OracleReport:
    """Outcome of one oracle pair."""

    name: str
    description: str
    rows: List[DiffRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def failures(self) -> List[DiffRow]:
        return [row for row in self.rows if not row.ok]

    def add(
        self, field: str, a: SupportsFloat, b: SupportsFloat, tolerance: float = 0.0
    ) -> None:
        self.rows.append(DiffRow(field, float(a), float(b), tolerance))

    def format(self) -> str:
        lines = [f"oracle {self.name}: {self.description}"]
        for row in self.rows:
            mark = "ok  " if row.ok else "FAIL"
            lines.append(
                f"  {mark} {row.field:<28s} a={row.a:<14.6g} "
                f"b={row.b:<14.6g} drift={row.drift:.2%} "
                f"(tol {row.tolerance:.2%})"
            )
        return "\n".join(lines)


def _zipf_keys(rng: np.random.Generator, n: int, key_space: int) -> np.ndarray:
    """A skewed, deterministic key stream over ``[0, key_space)``."""
    keys = rng.zipf(1.2, size=n).astype(np.uint64) % np.uint64(key_space)
    return keys


# ----------------------------------------------------------------------
# oracle 1: exact-sequence vs batched CM-Sketch tracker


def sketch_oracle(
    seed: int = 0,
    accesses: int = 100_000,
    k: int = 64,
    num_counters: int = 4096,
    key_space: int = 4096,
    chunk: int = 4096,
    overlap_tolerance: float = 0.15,
) -> OracleReport:
    """Per-access vs batched :class:`CmSketchTopK` on one stream."""
    report = OracleReport(
        "sketch",
        "exact_sequence vs batched CmSketchTopK: identical counters, "
        "top-K overlap within tolerance",
    )
    rng = np.random.default_rng(seed)
    keys = _zipf_keys(rng, accesses, key_space)
    addresses = keys << np.uint64(PAGE_SHIFT)
    exact = CmSketchTopK(k, num_counters=num_counters, exact_sequence=True)
    batched = CmSketchTopK(k, num_counters=num_counters, exact_sequence=False)
    for start in range(0, accesses, chunk):
        exact.observe(addresses[start:start + chunk])
        batched.observe(addresses[start:start + chunk])

    mismatch = int((exact.sketch.table != batched.sketch.table).sum())
    report.add("table_mismatched_counters", 0, mismatch)
    report.add("items_seen", exact.sketch.items_seen, batched.sketch.items_seen)
    report.add("accesses_observed", exact.accesses_observed,
               batched.accesses_observed)

    top_exact = {key for key, _ in exact.peek()}
    top_batched = {key for key, _ in batched.peek()}
    overlap = len(top_exact & top_batched) / max(1, len(top_exact))
    report.add("topk_overlap", 1.0, overlap, tolerance=overlap_tolerance)
    return report


# ----------------------------------------------------------------------
# oracle 2: PAC cache mode vs direct mode


def pac_oracle(
    seed: int = 0,
    accesses: int = 200_000,
    num_pages: int = 1024,
    sram_counters: int = 128,
    counter_bits: int = 6,
    chunk: int = 8192,
) -> OracleReport:
    """Cache-mode vs direct-mode PAC flush totals on one trace.

    ``counter_bits`` is deliberately small so the trace actually
    exercises the saturation-spill path of both modes.
    """
    report = OracleReport(
        "pac",
        "PAC cache-mode vs direct-mode: identical per-page counts "
        "after flush",
    )
    region = AddressRegion(0x1000_0000, num_pages * PAGE_SIZE)
    direct = PageAccessCounter(region, counter_bits=counter_bits)
    cached = PageAccessCounter(
        region, counter_bits=counter_bits, sram_counters=sram_counters
    )
    rng = np.random.default_rng(seed)
    pages = _zipf_keys(rng, accesses, num_pages)
    words = rng.integers(0, 64, size=accesses).astype(np.uint64)
    addresses = (
        np.uint64(region.start)
        + (pages << np.uint64(PAGE_SHIFT))
        + (words << np.uint64(6))
    )
    for start in range(0, accesses, chunk):
        direct.observe(addresses[start:start + chunk])
        cached.observe(addresses[start:start + chunk])
    direct.flush()
    cached.flush()

    report.add("total_accesses", direct.total_accesses, cached.total_accesses)
    a, b = direct.counts(), cached.counts()
    report.add("sum_counts", int(a.sum()), int(b.sum()))
    report.add("per_page_mismatches", 0, int((a != b).sum()))
    return report


# ----------------------------------------------------------------------
# oracle 3: instant vs async-unlimited migration


#: Per-field relative tolerances for the migration oracle.  The async
#: cost model replaces the flat 54 µs/page with remap CPU + copy
#: contention, so simulated time drifts by ~10%; for time-driven
#: policies (M5's Elector) that legitimately shifts *when* the last
#: activation lands.  Promotion counts are therefore quantized in
#: whole activation batches (K = 64 pages), and at oracle-sized
#: traces one batch is up to ~20% of the total — the placement
#: tolerances allow exactly that one-batch drift.  Anything beyond
#: it — lost queue entries, spurious aborts, double promotion — still
#: breaks the tolerance, and the zero-tolerance residue rows (aborts,
#: pending, drops) catch queue leaks regardless of size.
MIGRATION_TOLERANCES: Dict[str, float] = {
    "promoted": 0.25,
    "demoted": 0.25,
    "nr_pages_ddr": 0.25,
    "nr_pages_cxl": 0.05,
    "n_hot": 0.25,
    "execution_time_s": 0.15,
    "app_time_s": 0.10,
}


def _unlimited_async(config: SimConfig) -> SimConfig:
    """The async twin of ``config`` with every throttle removed."""
    kwargs = {f: getattr(config, f) for f in (
        "total_accesses", "chunk_size", "trace_subsample", "ddr_pages",
        "cxl_pages", "checkpoints", "pages_per_gb", "migrate", "seed",
    )}
    return SimConfig(
        migration_mode="async",
        migration_inflight_budget=1_000_000,
        migration_queue_capacity=1_000_000,
        migration_abort_rate=0.0,
        migration_copy_gbps=0.0,
        write_fraction=0.0,  # no dirty-recheck aborts
        **kwargs,
    )


def diff_run_results(
    a: RunResult,
    b: RunResult,
    tolerances: Optional[Dict[str, float]] = None,
) -> List[DiffRow]:
    """Field-by-field diff of two :class:`RunResult` snapshots."""
    tolerances = MIGRATION_TOLERANCES if tolerances is None else tolerances
    fields = {
        "promoted": (a.promoted, b.promoted),
        "demoted": (a.demoted, b.demoted),
        "nr_pages_ddr": (a.nr_pages_ddr, b.nr_pages_ddr),
        "nr_pages_cxl": (a.nr_pages_cxl, b.nr_pages_cxl),
        "n_hot": (len(a.hot_pfns), len(b.hot_pfns)),
        "execution_time_s": (a.execution_time_s, b.execution_time_s),
        "app_time_s": (a.app_time_s, b.app_time_s),
    }
    return [
        DiffRow(name, float(va), float(vb), tolerances.get(name, 0.0))
        for name, (va, vb) in fields.items()
    ]


def migration_oracle(
    bench: str = "mcf",
    policy: str = "m5-hpt",
    seed: int = 1,
    accesses: int = 400_000,
    chunk: int = 16_384,
    check_invariants: bool = True,
    tolerances: Optional[Dict[str, float]] = None,
) -> OracleReport:
    """Instant-mode vs async-unlimited-budget simulation runs."""
    report = OracleReport(
        "migration",
        f"{bench}/{policy}: instant vs async-with-unlimited-budget",
    )
    base = SimConfig(
        total_accesses=accesses,
        chunk_size=chunk,
        checkpoints=1,
        check_invariants=check_invariants,
    )
    instant = Simulation(
        registry.build(bench, seed=seed), base, policy=policy
    ).run()
    async_cfg = _unlimited_async(base)
    async_cfg.check_invariants = check_invariants
    async_sim = Simulation(registry.build(bench, seed=seed), async_cfg,
                           policy=policy)
    async_result = async_sim.run()

    report.rows.extend(diff_run_results(instant, async_result, tolerances))
    # The unlimited queue must drain and abort nothing: any residue
    # means the budgets or the dirty model leaked into the oracle.
    report.add("async_aborted", 0, async_result.extra.get("mig_aborted", 0.0))
    report.add("async_pending", 0, async_result.extra.get("mig_pending", 0.0))
    report.add("async_dropped_full", 0,
               async_result.extra.get("mig_dropped_queue_full", 0.0))
    if check_invariants:
        report.add("invariant_violations_instant", 0,
                   instant.extra.get("invariant_violations", 0.0))
        report.add("invariant_violations_async", 0,
                   async_result.extra.get("invariant_violations", 0.0))
    return report


# ----------------------------------------------------------------------
# oracle 4: reference vs batched engine (full pipeline, bit-exact)


def engine_oracle(
    bench: str = "mcf",
    policy: str = "m5-hpt",
    seed: int = 1,
    accesses: int = 120_000,
    chunk: int = 15_000,
) -> OracleReport:
    """Full reference-engine vs batched-engine runs, zero tolerance.

    The batched hot path is a pure reimplementation — every stage
    promises identical end state — so *every* field must match
    exactly, including the hot-PFN list contents and order.
    """
    report = OracleReport(
        "engine",
        f"{bench}/{policy}: reference vs batched epoch hot path "
        "(bit-exact)",
    )
    results = {}
    for engine in ("reference", "batched"):
        cfg = SimConfig(
            total_accesses=accesses,
            chunk_size=chunk,
            checkpoints=2,
            seed=seed,
            engine=engine,
        )
        sim = Simulation(
            registry.build(bench, seed=seed), cfg, policy=policy,
            enable_wac=policy.startswith("m5"),
        )
        results[engine] = sim.run()
    a, b = results["reference"], results["batched"]
    report.rows.extend(diff_run_results(a, b, tolerances={}))
    report.add("overhead_time_s", a.overhead_time_s, b.overhead_time_s)
    report.add("migration_time_s", a.migration_time_s, b.migration_time_s)
    report.add(
        "hot_pfn_mismatches",
        0,
        sum(x != y for x, y in zip(a.hot_pfns, b.hot_pfns))
        + abs(len(a.hot_pfns) - len(b.hot_pfns)),
    )
    report.add(
        "ratio_checkpoint_mismatches",
        0,
        sum(x != y for x, y in zip(a.ratio_checkpoints, b.ratio_checkpoints)),
    )
    return report


# ----------------------------------------------------------------------
# oracle 5: per-kernel batched vs reference state


def kernels_oracle(seed: int = 0, accesses: int = 60_000) -> OracleReport:
    """Each vectorized kernel vs its per-access reference twin.

    One skewed stream drives paired instances (``batched=True`` vs
    ``batched=False``) of every structure the epoch hot path
    vectorizes; their internal state must match exactly afterwards.
    """
    from repro.core.trackers import make_hpt
    from repro.cxl.batch import AccessBatch
    from repro.cxl.wac import WordAccessCounter
    from repro.memory.mglru import MultiGenLru
    from repro.memory.migration import MigrationEngine
    from repro.memory.tiers import NodeKind, TieredMemory

    report = OracleReport(
        "kernels",
        "batched vs reference kernels: exact state equality per "
        "structure",
    )
    rng = np.random.default_rng(seed)
    num_pages = 1024
    region = AddressRegion(0x1000_0000, num_pages * PAGE_SIZE)
    pages = _zipf_keys(rng, accesses, num_pages)
    words = rng.integers(0, 64, size=accesses).astype(np.uint64)
    addresses = (
        np.uint64(region.start)
        + (pages << np.uint64(PAGE_SHIFT))
        + (words << np.uint64(6))
    )
    chunks = [addresses[s:s + 8192] for s in range(0, accesses, 8192)]

    # Trackers: every algorithm, page and word granularity.
    for algorithm in ("cm-sketch", "space-saving", "misra-gries",
                      "sticky-sampling", "exact"):
        ref = make_hpt(k=32, algorithm=algorithm, num_counters=2048,
                       batched=False)
        fast = make_hpt(k=32, algorithm=algorithm, num_counters=2048,
                        batched=True)
        for chunk in chunks:
            batch = AccessBatch(chunk, region=region)
            ref.observe_batch(batch)
            fast.observe_batch(batch)
        top_ref = sorted(ref.peek())
        top_fast = sorted(fast.peek())
        report.add(f"tracker_{algorithm}_top_mismatches", 0,
                   sum(x != y for x, y in zip(top_ref, top_fast))
                   + abs(len(top_ref) - len(top_fast)))
        report.add(f"tracker_{algorithm}_accesses", ref.accesses_observed,
                   fast.accesses_observed)

    # PAC direct mode: identical per-page counts (spill stats may
    # legitimately differ — a chunked spill covers several
    # saturations — so only counts are compared).
    pac_ref = PageAccessCounter(region, batched=False)
    pac_fast = PageAccessCounter(region, batched=True)
    for chunk in chunks:
        batch = AccessBatch(chunk, region=region)
        pac_ref.observe(chunk)
        pac_fast.observe_batch(batch)
    report.add("pac_count_mismatches", 0,
               int((pac_ref.counts() != pac_fast.counts()).sum()))

    # WAC monitoring a quarter of the region (exercises the
    # observe_batch window re-filter against the wider batch).
    wac_ref = WordAccessCounter(region, window_bytes=region.size // 4,
                                batched=False)
    wac_fast = WordAccessCounter(region, window_bytes=region.size // 4,
                                 batched=True)
    for chunk in chunks:
        batch = AccessBatch(chunk, region=region)
        wac_ref.observe(chunk)
        wac_fast.observe_batch(batch)
    report.add("wac_count_mismatches", 0,
               int((wac_ref.counts() != wac_fast.counts()).sum()))

    # Tiers + MGLRU + migration: replay one randomized
    # promote/demote/access schedule against both engines.
    states = {}
    for batched in (False, True):
        memory = TieredMemory(ddr_pages=96, cxl_pages=num_pages + 64,
                              num_logical_pages=num_pages, batched=batched)
        memory.allocate_all(NodeKind.CXL)
        mglru = MultiGenLru(num_pages, batched=batched)
        engine = MigrationEngine(memory, mglru=mglru, batched=batched)
        op_rng = np.random.default_rng(seed + 1)
        for _ in range(60):
            lot = op_rng.integers(0, num_pages, size=48)
            mglru.record_accesses(lot[memory.node_map[lot] == 0])
            engine.promote(op_rng.integers(0, num_pages, size=24))
            if op_rng.random() < 0.3:
                engine.demote(op_rng.integers(0, num_pages, size=8))
            if op_rng.random() < 0.25:
                mglru.age()
        states[batched] = (
            memory.frame_map.copy(), memory.node_map.copy(),
            list(memory.ddr._free), list(memory.cxl._free),
            mglru._gen.copy(), mglru._heat.copy(),
            (engine.stats.promoted, engine.stats.demoted,
             engine.stats.rejected, engine.stats.time_us),
        )
    ref_state, fast_state = states[False], states[True]
    report.add("frame_map_mismatches", 0,
               int((ref_state[0] != fast_state[0]).sum()))
    report.add("node_map_mismatches", 0,
               int((ref_state[1] != fast_state[1]).sum()))
    report.add("free_list_mismatch", 0,
               int(ref_state[2] != fast_state[2])
               + int(ref_state[3] != fast_state[3]))
    report.add("mglru_gen_mismatches", 0,
               int((ref_state[4] != fast_state[4]).sum()))
    report.add("mglru_heat_mismatches", 0,
               int((ref_state[5] != fast_state[5]).sum()))
    report.add("migration_stats_mismatch", 0,
               int(ref_state[6] != fast_state[6]))
    return report


# ----------------------------------------------------------------------
# oracle 6: 1-tenant fleet vs single-run engine (bit-exact)


def fleet_oracle(
    bench: str = "mcf",
    policy: str = "m5-hpt",
    seed: int = 1,
    accesses: int = 200_000,
    chunk: int = 16_384,
) -> OracleReport:
    """A 1-tenant, 2-tier fleet vs the single-run engine, zero
    tolerance, under both epoch engines.

    The fleet path rebuilds the whole stack — NodeSpec-driven tiers,
    per-tenant address windows, spill allocation, the lockstep driver
    — so this oracle pins its core contract: with one tenant and two
    tiers, every field of the run (including the frame and node maps)
    must match the plain :class:`Simulation` bit for bit, and the
    fleet-level accounting must be the no-interference identity
    (slowdown 1.0, full bandwidth share).
    """
    from repro.fleet import FleetConfig, FleetSimulation
    from repro.sim.sweep import cell_seed

    report = OracleReport(
        "fleet",
        f"{bench}/{policy}: 1-tenant 2-tier fleet vs single-run engine "
        "(bit-exact, both epoch engines)",
    )
    fleet = FleetConfig(tenants=1, tiers=2, bench=bench, policy=policy)
    for engine in ("reference", "batched"):
        cfg = SimConfig(
            total_accesses=accesses,
            chunk_size=chunk,
            checkpoints=2,
            seed=seed,
            engine=engine,
        )
        fleet_sim = FleetSimulation(fleet, cfg)
        tenant = fleet_sim.run().results[0]
        single_sim = Simulation(
            registry.build(bench, seed=cell_seed(seed, bench)),
            cfg,
            policy=policy,
        )
        single = single_sim.run()
        for row in diff_run_results(single, tenant.result, tolerances={}):
            report.rows.append(DiffRow(f"{engine}_{row.field}", row.a, row.b))
        report.add(f"{engine}_overhead_time_s", single.overhead_time_s,
                   tenant.result.overhead_time_s)
        report.add(f"{engine}_migration_time_s", single.migration_time_s,
                   tenant.result.migration_time_s)
        report.add(
            f"{engine}_hot_pfn_mismatches",
            0,
            sum(x != y for x, y in
                zip(single.hot_pfns, tenant.result.hot_pfns))
            + abs(len(single.hot_pfns) - len(tenant.result.hot_pfns)),
        )
        report.add(
            f"{engine}_ratio_checkpoint_mismatches",
            0,
            sum(x != y for x, y in
                zip(single.ratio_checkpoints,
                    tenant.result.ratio_checkpoints)),
        )
        tenant_mem = fleet_sim.sims[0].memory
        single_mem = single_sim.memory
        report.add(
            f"{engine}_frame_map_mismatches", 0,
            int((tenant_mem.frame_map != single_mem.frame_map).sum()),
        )
        report.add(
            f"{engine}_node_map_mismatches", 0,
            int((tenant_mem.node_map != single_mem.node_map).sum()),
        )
        report.add(f"{engine}_slowdown_vs_isolated", 1.0,
                   tenant.slowdown_vs_isolated)
        report.add(
            f"{engine}_bandwidth_share_min", 1.0,
            min(tenant.bandwidth_share.values()),
        )
    return report


# ----------------------------------------------------------------------
# oracle 7: uninterrupted vs checkpoint-resumed run (bit-exact)

#: Metric families recording wall-clock rather than simulated state;
#: they can never be bit-identical across process boundaries and are
#: excluded from resume-identity comparisons.
WALL_CLOCK_FAMILIES = frozenset({"pipeline_stage_seconds"})


def _metric_mismatches(a: Dict[str, Any], b: Dict[str, Any]) -> int:
    """Families whose samples differ, ignoring wall-clock recorders."""
    fa = {m["name"]: m for m in a.get("metrics", [])
          if m["name"] not in WALL_CLOCK_FAMILIES}
    fb = {m["name"]: m for m in b.get("metrics", [])
          if m["name"] not in WALL_CLOCK_FAMILIES}
    return sum(1 for name in sorted(set(fa) | set(fb))
               if fa.get(name) != fb.get(name))


def resume_oracle(
    bench: str = "mcf",
    policy: str = "m5-hpt",
    seed: int = 1,
    accesses: int = 200_000,
    chunk: int = 16_384,
    checkpoint_every: int = 5,
) -> OracleReport:
    """Uninterrupted run vs checkpoint-load-resume, zero tolerance.

    For each epoch engine, one checkpointed run executes to
    completion; the checkpoint file it leaves behind is the *last
    periodic snapshot* (several epochs before the end, since the
    cadence does not divide the epoch count).  Loading that snapshot
    and running the tail again must reproduce the uninterrupted
    result bit-identically — every ``RunResult`` field, the full
    telemetry timeline, and the metrics-registry snapshot (modulo
    wall-clock recorders, which measure the process, not the
    simulation).
    """
    import os
    import tempfile

    from repro.obs import Observability

    report = OracleReport(
        "resume",
        f"{bench}/{policy}: uninterrupted vs checkpoint-resumed run "
        "(bit-exact)",
    )
    for engine in ("reference", "batched"):
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = os.path.join(tmp, f"{engine}.ckpt")
            cfg = SimConfig(
                total_accesses=accesses,
                chunk_size=chunk,
                checkpoints=2,
                seed=seed,
                engine=engine,
                checkpoint_every=checkpoint_every,
                checkpoint_path=ckpt,
            )
            sim = Simulation(
                registry.build(bench, seed=seed), cfg, policy=policy,
                obs=Observability(metrics=True, tracing=False),
            )
            full = sim.run()
            resumed_sim = Simulation.load_state(ckpt)
            resumed_at = resumed_sim.resumed_epoch or 0
            resumed = resumed_sim.run()
        rows = diff_run_results(full, resumed, tolerances={})
        for row in rows:
            row.field = f"{engine}_{row.field}"
        report.rows.extend(rows)
        report.add(f"{engine}_overhead_time_s",
                   full.overhead_time_s, resumed.overhead_time_s)
        report.add(f"{engine}_migration_time_s",
                   full.migration_time_s, resumed.migration_time_s)
        report.add(
            f"{engine}_hot_pfn_mismatches", 0,
            sum(x != y for x, y in zip(full.hot_pfns, resumed.hot_pfns))
            + abs(len(full.hot_pfns) - len(resumed.hot_pfns)),
        )
        report.add(
            f"{engine}_timeline_mismatches", 0,
            sum(x != y for x, y in zip(full.timeline, resumed.timeline))
            + abs(len(full.timeline) - len(resumed.timeline)),
        )
        report.add(f"{engine}_metric_mismatches", 0,
                   _metric_mismatches(full.metrics, resumed.metrics))
        # The resume must actually re-run a tail, or the oracle
        # proves nothing: the cadence is chosen not to divide the
        # epoch count.
        report.add(f"{engine}_epochs_rerun",
                   cfg.num_epochs - resumed_at,
                   cfg.num_epochs - resumed_at, tolerance=0.0)
        if cfg.num_epochs - resumed_at <= 0:
            report.add(f"{engine}_tail_nonempty", 1, 0)
    return report


#: The registry the CLI and ``tools/run_differential.py`` iterate.
ORACLES = {
    "sketch": sketch_oracle,
    "pac": pac_oracle,
    "migration": migration_oracle,
    "engine": engine_oracle,
    "kernels": kernels_oracle,
    "fleet": fleet_oracle,
    "resume": resume_oracle,
}


def run_all(
    names: Optional[List[str]] = None, **kwargs: Dict[str, Any]
) -> List[OracleReport]:
    """Run the named oracle pairs (default: all of them), in order."""
    names = list(ORACLES) if not names else list(names)
    unknown = [n for n in names if n not in ORACLES]
    if unknown:
        raise ValueError(f"unknown oracles {unknown}; known: {list(ORACLES)}")
    return [ORACLES[name](**kwargs.get(name, {})) for name in names]
