"""Differential oracles: paired configurations that must agree.

The repro keeps several update paths per structure (exact, batched,
cached) and two migration modes.  Each pair below is an *oracle*: one
side is the slow, obviously-correct semantics, the other is the fast
path the pipeline actually runs, and the two must agree — exactly
where the docstrings promise identical state, within a tolerance where
only the aggregate behaviour is guaranteed.

Three oracle pairs (``repro verify`` / ``tools/run_differential.py``):

* ``sketch`` — :class:`~repro.core.trackers.CmSketchTopK` with
  ``exact_sequence=True`` (per-access hardware semantics) vs the
  batched default.  The CM-Sketch counter table and ``items_seen``
  must be identical; the CAM's top-K selection must overlap within
  tolerance (admission order differs transiently, §5.1 reset makes
  the divergence bounded per query period).
* ``pac`` — :class:`~repro.cxl.pac.PageAccessCounter` cache mode
  (bounded SRAM, direct-mapped, evict-on-conflict) vs direct mode.
  After ``flush()`` both must report *identical* per-page counts:
  PAC conserves every snooped access regardless of SRAM sizing.
* ``migration`` — a full simulation in ``instant`` mode vs ``async``
  mode with an effectively unlimited budget, no injected aborts, and
  the dirty-page model disabled.  Migration totals and tier occupancy
  must agree within small tolerances; execution time agrees loosely
  (the async cost model charges remap CPU + copy contention instead
  of the flat 54 µs).

Every comparison is a :class:`DiffRow` with a per-field tolerance
(0 = bit-exact required), collected into an :class:`OracleReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, SupportsFloat

import numpy as np

from repro.core.trackers import CmSketchTopK
from repro.cxl.pac import PageAccessCounter
from repro.memory.address import PAGE_SHIFT, PAGE_SIZE, AddressRegion
from repro.sim.config import SimConfig
from repro.sim.engine import RunResult, Simulation
from repro.workloads import registry


@dataclass
class DiffRow:
    """One compared quantity: oracle value ``a`` vs fast-path ``b``."""

    field: str
    a: float
    b: float
    #: Allowed relative drift of ``b`` from ``a`` (0 = must be equal).
    #: A zero baseline falls back to comparing absolutely.
    tolerance: float = 0.0

    @property
    def drift(self) -> float:
        if self.a == self.b:
            return 0.0
        scale = max(abs(self.a), abs(self.b))
        return abs(self.a - self.b) / scale if scale else 0.0

    @property
    def ok(self) -> bool:
        return self.drift <= self.tolerance


@dataclass
class OracleReport:
    """Outcome of one oracle pair."""

    name: str
    description: str
    rows: List[DiffRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def failures(self) -> List[DiffRow]:
        return [row for row in self.rows if not row.ok]

    def add(
        self, field: str, a: SupportsFloat, b: SupportsFloat, tolerance: float = 0.0
    ) -> None:
        self.rows.append(DiffRow(field, float(a), float(b), tolerance))

    def format(self) -> str:
        lines = [f"oracle {self.name}: {self.description}"]
        for row in self.rows:
            mark = "ok  " if row.ok else "FAIL"
            lines.append(
                f"  {mark} {row.field:<28s} a={row.a:<14.6g} "
                f"b={row.b:<14.6g} drift={row.drift:.2%} "
                f"(tol {row.tolerance:.2%})"
            )
        return "\n".join(lines)


def _zipf_keys(rng: np.random.Generator, n: int, key_space: int) -> np.ndarray:
    """A skewed, deterministic key stream over ``[0, key_space)``."""
    keys = rng.zipf(1.2, size=n).astype(np.uint64) % np.uint64(key_space)
    return keys


# ----------------------------------------------------------------------
# oracle 1: exact-sequence vs batched CM-Sketch tracker


def sketch_oracle(
    seed: int = 0,
    accesses: int = 100_000,
    k: int = 64,
    num_counters: int = 4096,
    key_space: int = 4096,
    chunk: int = 4096,
    overlap_tolerance: float = 0.15,
) -> OracleReport:
    """Per-access vs batched :class:`CmSketchTopK` on one stream."""
    report = OracleReport(
        "sketch",
        "exact_sequence vs batched CmSketchTopK: identical counters, "
        "top-K overlap within tolerance",
    )
    rng = np.random.default_rng(seed)
    keys = _zipf_keys(rng, accesses, key_space)
    addresses = keys << np.uint64(PAGE_SHIFT)
    exact = CmSketchTopK(k, num_counters=num_counters, exact_sequence=True)
    batched = CmSketchTopK(k, num_counters=num_counters, exact_sequence=False)
    for start in range(0, accesses, chunk):
        exact.observe(addresses[start:start + chunk])
        batched.observe(addresses[start:start + chunk])

    mismatch = int((exact.sketch.table != batched.sketch.table).sum())
    report.add("table_mismatched_counters", 0, mismatch)
    report.add("items_seen", exact.sketch.items_seen, batched.sketch.items_seen)
    report.add("accesses_observed", exact.accesses_observed,
               batched.accesses_observed)

    top_exact = {key for key, _ in exact.peek()}
    top_batched = {key for key, _ in batched.peek()}
    overlap = len(top_exact & top_batched) / max(1, len(top_exact))
    report.add("topk_overlap", 1.0, overlap, tolerance=overlap_tolerance)
    return report


# ----------------------------------------------------------------------
# oracle 2: PAC cache mode vs direct mode


def pac_oracle(
    seed: int = 0,
    accesses: int = 200_000,
    num_pages: int = 1024,
    sram_counters: int = 128,
    counter_bits: int = 6,
    chunk: int = 8192,
) -> OracleReport:
    """Cache-mode vs direct-mode PAC flush totals on one trace.

    ``counter_bits`` is deliberately small so the trace actually
    exercises the saturation-spill path of both modes.
    """
    report = OracleReport(
        "pac",
        "PAC cache-mode vs direct-mode: identical per-page counts "
        "after flush",
    )
    region = AddressRegion(0x1000_0000, num_pages * PAGE_SIZE)
    direct = PageAccessCounter(region, counter_bits=counter_bits)
    cached = PageAccessCounter(
        region, counter_bits=counter_bits, sram_counters=sram_counters
    )
    rng = np.random.default_rng(seed)
    pages = _zipf_keys(rng, accesses, num_pages)
    words = rng.integers(0, 64, size=accesses).astype(np.uint64)
    addresses = (
        np.uint64(region.start)
        + (pages << np.uint64(PAGE_SHIFT))
        + (words << np.uint64(6))
    )
    for start in range(0, accesses, chunk):
        direct.observe(addresses[start:start + chunk])
        cached.observe(addresses[start:start + chunk])
    direct.flush()
    cached.flush()

    report.add("total_accesses", direct.total_accesses, cached.total_accesses)
    a, b = direct.counts(), cached.counts()
    report.add("sum_counts", int(a.sum()), int(b.sum()))
    report.add("per_page_mismatches", 0, int((a != b).sum()))
    return report


# ----------------------------------------------------------------------
# oracle 3: instant vs async-unlimited migration


#: Per-field relative tolerances for the migration oracle.  The async
#: cost model replaces the flat 54 µs/page with remap CPU + copy
#: contention, so simulated time drifts by ~10%; for time-driven
#: policies (M5's Elector) that legitimately shifts *when* the last
#: activation lands.  Promotion counts are therefore quantized in
#: whole activation batches (K = 64 pages), and at oracle-sized
#: traces one batch is up to ~20% of the total — the placement
#: tolerances allow exactly that one-batch drift.  Anything beyond
#: it — lost queue entries, spurious aborts, double promotion — still
#: breaks the tolerance, and the zero-tolerance residue rows (aborts,
#: pending, drops) catch queue leaks regardless of size.
MIGRATION_TOLERANCES: Dict[str, float] = {
    "promoted": 0.25,
    "demoted": 0.25,
    "nr_pages_ddr": 0.25,
    "nr_pages_cxl": 0.05,
    "n_hot": 0.25,
    "execution_time_s": 0.15,
    "app_time_s": 0.10,
}


def _unlimited_async(config: SimConfig) -> SimConfig:
    """The async twin of ``config`` with every throttle removed."""
    kwargs = {f: getattr(config, f) for f in (
        "total_accesses", "chunk_size", "trace_subsample", "ddr_pages",
        "cxl_pages", "checkpoints", "pages_per_gb", "migrate", "seed",
    )}
    return SimConfig(
        migration_mode="async",
        migration_inflight_budget=1_000_000,
        migration_queue_capacity=1_000_000,
        migration_abort_rate=0.0,
        migration_copy_gbps=0.0,
        write_fraction=0.0,  # no dirty-recheck aborts
        **kwargs,
    )


def diff_run_results(
    a: RunResult,
    b: RunResult,
    tolerances: Optional[Dict[str, float]] = None,
) -> List[DiffRow]:
    """Field-by-field diff of two :class:`RunResult` snapshots."""
    tolerances = MIGRATION_TOLERANCES if tolerances is None else tolerances
    fields = {
        "promoted": (a.promoted, b.promoted),
        "demoted": (a.demoted, b.demoted),
        "nr_pages_ddr": (a.nr_pages_ddr, b.nr_pages_ddr),
        "nr_pages_cxl": (a.nr_pages_cxl, b.nr_pages_cxl),
        "n_hot": (len(a.hot_pfns), len(b.hot_pfns)),
        "execution_time_s": (a.execution_time_s, b.execution_time_s),
        "app_time_s": (a.app_time_s, b.app_time_s),
    }
    return [
        DiffRow(name, float(va), float(vb), tolerances.get(name, 0.0))
        for name, (va, vb) in fields.items()
    ]


def migration_oracle(
    bench: str = "mcf",
    policy: str = "m5-hpt",
    seed: int = 1,
    accesses: int = 400_000,
    chunk: int = 16_384,
    check_invariants: bool = True,
    tolerances: Optional[Dict[str, float]] = None,
) -> OracleReport:
    """Instant-mode vs async-unlimited-budget simulation runs."""
    report = OracleReport(
        "migration",
        f"{bench}/{policy}: instant vs async-with-unlimited-budget",
    )
    base = SimConfig(
        total_accesses=accesses,
        chunk_size=chunk,
        checkpoints=1,
        check_invariants=check_invariants,
    )
    instant = Simulation(
        registry.build(bench, seed=seed), base, policy=policy
    ).run()
    async_cfg = _unlimited_async(base)
    async_cfg.check_invariants = check_invariants
    async_sim = Simulation(registry.build(bench, seed=seed), async_cfg,
                           policy=policy)
    async_result = async_sim.run()

    report.rows.extend(diff_run_results(instant, async_result, tolerances))
    # The unlimited queue must drain and abort nothing: any residue
    # means the budgets or the dirty model leaked into the oracle.
    report.add("async_aborted", 0, async_result.extra.get("mig_aborted", 0.0))
    report.add("async_pending", 0, async_result.extra.get("mig_pending", 0.0))
    report.add("async_dropped_full", 0,
               async_result.extra.get("mig_dropped_queue_full", 0.0))
    if check_invariants:
        report.add("invariant_violations_instant", 0,
                   instant.extra.get("invariant_violations", 0.0))
        report.add("invariant_violations_async", 0,
                   async_result.extra.get("invariant_violations", 0.0))
    return report


#: The registry the CLI and ``tools/run_differential.py`` iterate.
ORACLES = {
    "sketch": sketch_oracle,
    "pac": pac_oracle,
    "migration": migration_oracle,
}


def run_all(
    names: Optional[List[str]] = None, **kwargs: Dict[str, Any]
) -> List[OracleReport]:
    """Run the named oracle pairs (default: all three), in order."""
    names = list(ORACLES) if not names else list(names)
    unknown = [n for n in names if n not in ORACLES]
    if unknown:
        raise ValueError(f"unknown oracles {unknown}; known: {list(ORACLES)}")
    return [ORACLES[name](**kwargs.get(name, {})) for name in names]
