"""Fleet topology: carving the shared tier hierarchy into tenant shares.

The fleet host exposes one tier hierarchy — DDR, direct-attached CXL,
and (for 3-tier fleets) a pooled CXL device behind a switch.  Capacity
is partitioned *statically* by QoS weight: tenant ``t`` receives a
largest-remainder share of every tier, carved into a private
physical-address window (:func:`repro.memory.address.tenant_window`),
so no frame can ever be mapped by two tenants.  Bandwidth, by
contrast, is arbitrated *dynamically* every epoch (see
:mod:`repro.sim.perf`) — capacity isolation is hard, channel isolation
is a QoS policy.

Tenant 0's windows start exactly at the historical tier bases, so a
1-tenant fleet reproduces the single-run physical layout bit for bit.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.memory.address import PAGE_SIZE, TENANT_PA_STRIDE, tenant_window
from repro.memory.tiers import (
    CXL_BASE,
    CXL_POOLED_BASE,
    DDR_BASE,
    NodeKind,
    NodeSpec,
)
from repro.sim.config import FleetConfig, SimConfig

#: Tenants that fit between consecutive tier base addresses (16TB of
#: windows per tier at the 1TB stride).
MAX_TENANTS = (CXL_POOLED_BASE - CXL_BASE) // TENANT_PA_STRIDE


def weighted_partition(total: int, weights: Sequence[float]) -> List[int]:
    """Split ``total`` units proportionally to ``weights``.

    Largest-remainder rounding: every share is the floor of its exact
    proportional slice, and the leftover units go to the largest
    fractional remainders (ties to the lower tenant index), so the
    shares always sum to exactly ``total``.  Equal weights divide a
    multiple of ``len(weights)`` exactly — the case the 1-tenant
    bit-identity guarantee rides on.
    """
    wsum = float(sum(weights))
    if wsum <= 0:
        raise ValueError("weights must sum to a positive value")
    exact = [total * float(w) / wsum for w in weights]
    shares = [int(e) for e in exact]
    leftover = total - sum(shares)
    order = sorted(
        range(len(weights)), key=lambda i: (shares[i] - exact[i], i)
    )
    for i in order[:leftover]:
        shares[i] += 1
    return shares


def tenant_node_specs(
    config: SimConfig,
    fleet: FleetConfig,
    tenant: int,
    footprint_pages: int,
) -> List[NodeSpec]:
    """The ordered :class:`NodeSpec` hierarchy for one tenant.

    DDR scales with the tenant count (every tenant brings its socket's
    DDR into the pool).  The CXL tier depends on the fleet shape: a
    2-tier fleet models scale-out partitioning (per-tenant CXL,
    widened to the footprint exactly like the single-run engine), a
    3-tier fleet models consolidation — the direct-attached device
    stays at the single-host capacity and is *shared*, so tenants
    overflow down the demotion chain into the pooled tier.  Every
    tier is then partitioned by QoS weight, and the last tier of the
    spill path is widened if needed so the footprint always fits.
    """
    if not 0 <= tenant < fleet.tenants:
        raise ValueError(f"tenant {tenant} outside fleet of {fleet.tenants}")
    if fleet.tenants > MAX_TENANTS:
        raise ValueError(
            f"fleet of {fleet.tenants} tenants exceeds the "
            f"{MAX_TENANTS}-window PA layout"
        )
    weights = fleet.weight_list()
    ddr_share = weighted_partition(config.ddr_pages * fleet.tenants, weights)
    ddr_pages = ddr_share[tenant]
    if fleet.tiers == 2:
        cxl_pages = weighted_partition(
            config.cxl_pages * fleet.tenants, weights
        )[tenant]
        # The spill tier must hold the whole footprint, exactly like
        # the single-run engine's max(cxl_pages, footprint) widening.
        cxl_pages = max(cxl_pages, footprint_pages)
    else:
        # Consolidation: one direct-attached device shared by weight.
        cxl_pages = weighted_partition(config.cxl_pages, weights)[tenant]
    specs = [
        NodeSpec(
            NodeKind.DDR,
            ddr_pages,
            latency_ns=config.ddr_latency_ns,
            base_pa=tenant_window(
                DDR_BASE, tenant, ddr_pages * PAGE_SIZE
            ).start,
            bandwidth_gbps=config.ddr_bandwidth_gbps,
        ),
        NodeSpec(
            NodeKind.CXL,
            cxl_pages,
            latency_ns=config.cxl_latency_ns,
            base_pa=tenant_window(
                CXL_BASE, tenant, cxl_pages * PAGE_SIZE
            ).start,
            bandwidth_gbps=config.cxl_bandwidth_gbps,
        ),
    ]
    if fleet.tiers == 3:
        pooled_total = int(fleet.pooled_capacity_gb * config.pages_per_gb)
        pooled_pages = weighted_partition(pooled_total, weights)[tenant]
        # The CXL + pooled spill path must hold the footprint.
        pooled_pages = max(pooled_pages, footprint_pages - cxl_pages)
        specs.append(
            NodeSpec(
                NodeKind.CXL_POOLED,
                pooled_pages,
                latency_ns=fleet.pooled_latency_ns,
                base_pa=tenant_window(
                    CXL_POOLED_BASE, tenant, pooled_pages * PAGE_SIZE
                ).start,
                bandwidth_gbps=fleet.pooled_bandwidth_gbps,
            )
        )
    return specs
