"""Cross-tier demotion chain: the CXL → pooled link.

The 2-tier :class:`~repro.memory.migration.MigrationEngine` owns the
DRAM ↔ CXL boundary (promotions + watermark/paired demotions).  This
module adds the chain's lower link for ≥3-tier hierarchies, in the
spirit of HM-Keeper's multi-tier management:

* **headroom demotions** — each epoch the chain keeps a fraction of
  the tenant's CXL share free by demoting the least-recently-accessed
  CXL pages to the pooled tier, so DRAM demotions (and pull-ups)
  always find room; pages cascade DRAM → CXL → pooled over epochs.
* **pull-ups** — pooled pages re-accessed this epoch are promoted one
  level, back to direct-attached CXL (budgeted per epoch), where the
  PAC can see them again and the normal promotion path takes over.

Chain moves are charged at the same per-page migration cost as the
2-tier engine, into the same ``engine.stats.time_us`` account, so
they land in the epoch's migration time exactly like DRAM-boundary
traffic.  The chain rides the tenant pipeline as an extra stage right
after ``migrate``; it never touches DRAM, so the heavily-tested
2-tier promote/demote paths are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.migration import MigrationEngine
from repro.memory.tiers import NodeKind, TieredMemory


@dataclass
class ChainStats:
    """Aggregate demotion-chain traffic for one tenant."""

    demoted_to_pooled: int = 0
    pulled_from_pooled: int = 0
    time_us: float = 0.0

    def as_dict(self) -> dict:
        return {
            "demoted_to_pooled": self.demoted_to_pooled,
            "pulled_from_pooled": self.pulled_from_pooled,
            "time_us": self.time_us,
        }


class DemotionChain:
    """Per-tenant manager of the CXL → pooled chain link."""

    def __init__(
        self,
        memory: TieredMemory,
        engine: MigrationEngine,
        headroom_frac: float = 0.02,
        pull_budget: int = 64,
    ) -> None:
        if memory.num_nodes < 3:
            raise ValueError("the demotion chain needs a pooled tier")
        if not 0.0 <= headroom_frac < 1.0:
            raise ValueError("headroom_frac must be in [0, 1)")
        self.memory = memory
        self.engine = engine
        self.cxl_index = memory.node_index(NodeKind.CXL)
        self.pooled_index = memory.node_index(NodeKind.CXL_POOLED)
        cxl_capacity = memory.nodes[self.cxl_index].capacity_pages
        #: CXL frames the chain keeps free for incoming demotions.
        self.headroom_pages = int(headroom_frac * cxl_capacity)
        self.pull_budget = int(pull_budget)
        # Last-access epoch per logical page: MGLRU only tracks the
        # DRAM working set, so the chain keeps its own recency clock
        # for choosing cold CXL victims.
        self._last_access = np.zeros(memory.num_logical_pages, dtype=np.int64)
        self.stats = ChainStats()

    def run_epoch(self, epoch: int, lpages: np.ndarray) -> int:
        """Run one epoch of chain maintenance; returns pages moved.

        Order matters: pull-ups first (re-accessed pooled pages climb
        into the current CXL free space), then headroom demotions
        (cold CXL pages sink to pooled until the free target holds).
        A freshly pulled page carries this epoch's access stamp, so it
        is the last candidate the same epoch's demotion pass would
        pick.
        """
        lpages = np.asarray(lpages, dtype=np.int64)
        self._last_access[lpages] = epoch
        node_map = self.memory.node_map
        moved = 0

        if self.pull_budget > 0:
            pooled_hits = lpages[node_map[lpages] == self.pooled_index]
            if pooled_hits.size:
                pages, counts = np.unique(pooled_hits, return_counts=True)
                # Hottest first; page id breaks ties deterministically.
                order = np.lexsort((pages, -counts))
                free = self.memory.nodes[self.cxl_index].free_pages
                take = min(self.pull_budget, int(pages.size), free)
                if take > 0:
                    self.memory.move_pages_to(
                        pages[order][:take], self.cxl_index
                    )
                    self.stats.pulled_from_pooled += take
                    moved += take

        need = (
            self.headroom_pages
            - self.memory.nodes[self.cxl_index].free_pages
        )
        if need > 0:
            candidates = self.memory.pages_on_node(self.cxl_index)
            if candidates.size:
                # Coldest first (oldest access stamp, then page id).
                order = np.lexsort((candidates, self._last_access[candidates]))
                pooled_free = self.memory.nodes[self.pooled_index].free_pages
                take = min(need, int(candidates.size), pooled_free)
                if take > 0:
                    self.memory.move_pages_to(
                        candidates[order][:take], self.pooled_index
                    )
                    self.stats.demoted_to_pooled += take
                    moved += take

        if moved:
            cost = self.engine.cost_model.cost_us(moved)
            self.engine.stats.time_us += cost
            self.stats.time_us += cost
        return moved
