"""The fleet simulation: N tenants in lockstep on a shared hierarchy.

One :class:`FleetSimulation` owns one :class:`Simulation` per tenant
(its own workload trace, seed, page table, and capacity-partitioned
tier shares — see :mod:`repro.fleet.topology`) and advances them in
lockstep, one epoch each per round, through the *unchanged* per-tenant
epoch pipeline (``Simulation.step_epoch``).  Three fleet-level
mechanisms couple the tenants:

* **bandwidth arbitration** — after every round, each tenant's demand
  rate per tier is measured; before the next round, the QoS arbiter
  (:func:`repro.sim.perf.bandwidth_shares`) turns the demand vector
  into per-tenant shares of each tier's channel, and the resulting
  ≥1 contention factors stretch each tenant's memory time (the
  noisy-neighbor model).  Demands lag one epoch — the fleet arbitrates
  on what tenants just did, as a real QoS controller would.
* **demotion chains** — 3-tier tenants get a
  :class:`~repro.fleet.chain.DemotionChain` stage spliced into their
  pipeline right after ``migrate``, cascading cold pages
  DRAM → CXL → pooled and pulling re-accessed pooled pages back up.
* **per-tenant accounting** — slowdown vs the isolated run (computed
  from the perf model's shadow uncontended clock, no second run
  needed), mean bandwidth share per tier, and migration/chain traffic,
  exported per tenant and (optionally) as labelled fleet metrics.

A 1-tenant fleet never arbitrates (the factors path is skipped
entirely, not computed-then-ignored), so a 1-tenant, 2-tier fleet is
bit-identical to the single-run engine — enforced by the ``fleet``
differential oracle in :mod:`repro.verify`.

Sharding: tenants are only *coupled* through bandwidth arbitration,
and the arbiter's input — each tenant's demand trace — is a pure
per-tenant quantity.  When every channel ceiling is unlimited (the
default latency-only model) the contention factors are identically
1.0, so each tenant can run to completion in its own worker process
(:func:`run_tenant_shard`) and the fleet be reassembled afterwards
(:func:`assemble_fleet`) by replaying the arbiter over the recorded
demand traces — bit-identical to the lockstep run.  The sweep layer
(:func:`repro.sim.sweep.collect_fleet`) picks the path automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import (
    NULL_OBS,
    Observability,
    SloWatchdog,
    TimeSeriesRecorder,
    load_rules,
    parse_series_spec,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.tracing import SimClock, SpanRecord
from repro.sim.config import FleetConfig, SimConfig
from repro.sim.engine import M5Options, RunResult, Simulation
from repro.sim.perf import bandwidth_shares, contention_factors
from repro.sim.sweep import cell_seed
from repro.workloads import registry

from repro.fleet.chain import ChainStats, DemotionChain
from repro.fleet.topology import tenant_node_specs


@dataclass
class TenantResult:
    """One tenant's outcome plus its fleet-level accounting."""

    tenant: int
    bench: str
    seed: int
    weight: float
    result: RunResult
    #: Contended / uncontended execution time (1.0 = no interference).
    slowdown_vs_isolated: float
    #: Mean granted share of each tier's channel, by tier name, over
    #: the arbitrated epochs (1.0 throughout for a 1-tenant fleet).
    bandwidth_share: Dict[str, float]
    #: Demotion-chain traffic (zeros for 2-tier fleets).
    chain: Dict[str, float]

    def metrics_row(self) -> Dict[str, object]:
        """Flat per-tenant row for the metrics snapshot artifact."""
        row: Dict[str, object] = {
            "tenant": self.tenant,
            "bench": self.bench,
            "seed": self.seed,
            "weight": self.weight,
            "execution_time_s": self.result.execution_time_s,
            "slowdown_vs_isolated": self.slowdown_vs_isolated,
            "promoted": self.result.promoted,
            "demoted": self.result.demoted,
            "migration_time_s": self.result.migration_time_s,
            "nr_pages_ddr": self.result.nr_pages_ddr,
            "nr_pages_cxl": self.result.nr_pages_cxl,
        }
        for tier, share in self.bandwidth_share.items():
            row[f"bw_share_{tier}"] = share
        for key, value in self.chain.items():
            row[f"chain_{key}"] = value
        for key, value in self.result.extra.items():
            row[key] = value
        return row


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    tenants: int
    tiers: int
    policy: str
    qos: bool
    engine: str
    epochs: int
    results: List[TenantResult]
    #: Fleet-level metrics-registry snapshot (when obs metrics are on).
    metrics: Dict[str, object] = field(default_factory=dict)

    def tenant_metrics(self) -> List[Dict[str, object]]:
        """Per-tenant metric rows (the CI snapshot artifact body)."""
        return [t.metrics_row() for t in self.results]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary for ``repro fleet --out``."""
        return {
            "tenants": self.tenants,
            "tiers": self.tiers,
            "policy": self.policy,
            "qos": self.qos,
            "engine": self.engine,
            "epochs": self.epochs,
            "tenant_metrics": self.tenant_metrics(),
        }


@dataclass
class TenantShard:
    """One tenant's run plus the demand trace the arbiter replays.

    The picklable unit of work for process-sharded fleets: everything
    :func:`assemble_fleet` needs to rebuild the tenant's fleet-level
    accounting without re-running it.
    """

    tenant: int
    bench: str
    seed: int
    result: RunResult
    #: Per-epoch, per-tier channel demand (GB/s), in epoch order.
    demands: List[List[float]]
    chain: Dict[str, float]
    slowdown_vs_isolated: float
    tier_names: List[str]
    epochs: int
    #: The tenant's own metrics-registry snapshot (picklable; empty
    #: unless the shard ran with ``with_metrics``).  The parent merges
    #: it into the fleet snapshot under a ``tenant`` label.
    metrics: Dict[str, object] = field(default_factory=dict)


# ----------------------------------------------------------------------
# shared fleet mechanics (used by both the lockstep and sharded paths)


def fleet_tier_capacities(fleet: FleetConfig, config: SimConfig) -> List[float]:
    """Channel capacity per tier position (GB/s, 0 = unlimited)."""
    caps = [config.ddr_bandwidth_gbps, config.cxl_bandwidth_gbps]
    if fleet.tiers == 3:
        caps.append(fleet.pooled_bandwidth_gbps)
    return caps


def is_coupled(fleet: FleetConfig, config: SimConfig) -> bool:
    """True when bandwidth ceilings couple the tenants' epochs.

    A coupled fleet must run in lockstep — each epoch's contention
    factors depend on every tenant's previous epoch.  Uncoupled fleets
    (every ceiling unlimited, or a single tenant) produce factors that
    are identically 1.0, so tenants can be sharded across processes.
    """
    if fleet.tenants <= 1:
        return False
    return any(c > 0.0 for c in fleet_tier_capacities(fleet, config))


def epoch_demands_gbps(sim: Simulation, epoch_s: float) -> List[float]:
    """One tenant's channel demand per tier for the epoch just run
    (GB/s of 64B-line traffic, dilation-corrected)."""
    if epoch_s <= 0.0:
        return [0.0] * len(sim.memory.nodes)
    scale = 64.0 * sim.perf.dilation / (epoch_s * 1e9)
    return [node.accesses_this_epoch * scale for node in sim.memory.nodes]


def arbitrate_epoch(
    demands: List[List[float]],
    weights: List[float],
    capacities: List[float],
    qos: bool,
    share_sums: List[List[float]],
) -> List[List[float]]:
    """One QoS arbitration round over a per-tenant demand matrix.

    Returns the per-tenant contention-factor vectors and accumulates
    each tenant's granted-share fraction of every tier's traffic into
    ``share_sums`` (the mean-share accounting both fleet paths report).
    """
    tenants = len(demands)
    tiers = len(capacities)
    factors = [[1.0] * tiers for _ in range(tenants)]
    for tier in range(tiers):
        tier_demands = [d[tier] for d in demands]
        total = sum(tier_demands)
        shares = bandwidth_shares(
            tier_demands, weights, capacities[tier], qos=qos
        )
        tier_factors = contention_factors(tier_demands, shares)
        for t in range(tenants):
            factors[t][tier] = tier_factors[t]
            granted = min(tier_demands[t], shares[t])
            share_sums[t][tier] += (
                granted / total if total > 0.0 else 1.0 / tenants
            )
    return factors


def _splice_chain_stage(sim: Simulation, chain: DemotionChain) -> None:
    """Insert the chain stage right after the migrate stage, so chain
    time lands in the same epoch's migration accounting."""

    def stage_chain(policy: object, st: object) -> None:
        chain.run_epoch(st.epoch, st.lpages)  # type: ignore[attr-defined]

    idx = sim.stages.index(sim._stage_migrate)
    sim.stages = (
        sim.stages[: idx + 1] + (stage_chain,) + sim.stages[idx + 1 :]
    )


def _build_tenant(
    fleet: FleetConfig,
    config: SimConfig,
    tenant: int,
    m5_options: Optional[M5Options] = None,
    obs: Optional[Observability] = None,
) -> Tuple[str, int, Simulation, Optional[DemotionChain]]:
    """One tenant's fully wired simulation (plus its chain, if any)."""
    bench = fleet.bench_list()[tenant]
    seed = cell_seed(config.seed, bench, tenant=tenant)
    workload = registry.build(
        bench, seed=seed, pages_per_gb=config.pages_per_gb
    )
    nodes = tenant_node_specs(
        config, fleet, tenant, workload.spec.footprint_pages
    )
    sim = Simulation(
        workload,
        config,
        policy=fleet.policy,
        m5_options=m5_options,
        obs=obs,
        nodes=nodes,
        tenant=tenant,
    )
    chain: Optional[DemotionChain] = None
    if fleet.tiers == 3:
        chain = DemotionChain(
            sim.memory,
            sim.engine,
            headroom_frac=fleet.chain_headroom_frac,
            pull_budget=fleet.chain_pull_budget,
        )
        _splice_chain_stage(sim, chain)
    return bench, seed, sim, chain


_FleetInstruments = Tuple[Gauge, Gauge, Counter]


def _register_fleet_metrics(obs: Observability) -> _FleetInstruments:
    reg = obs.registry
    return (
        reg.gauge(
            "fleet_tenant_slowdown",
            "Per-tenant slowdown vs isolated run",
            labels=("tenant",),
        ),
        reg.gauge(
            "fleet_tenant_bandwidth_share",
            "Mean granted channel share per tenant and tier",
            labels=("tenant", "tier"),
        ),
        reg.counter(
            "fleet_tenant_migrated_pages_total",
            "Per-tenant migration traffic by direction",
            labels=("tenant", "direction"),
        ),
    )


def _emit_tenant_metrics(mx: _FleetInstruments, t: TenantResult) -> None:
    mx_slowdown, mx_share, mx_traffic = mx
    label = str(t.tenant)
    mx_slowdown.labels(tenant=label).set(t.slowdown_vs_isolated)
    for name, share in t.bandwidth_share.items():
        mx_share.labels(tenant=label, tier=name).set(share)
    for direction, value in (
        ("promote", t.result.promoted),
        ("demote", t.result.demoted),
        ("demote_pooled", t.chain.get("demoted_to_pooled", 0.0)),
        ("pull_up", t.chain.get("pulled_from_pooled", 0.0)),
    ):
        mx_traffic.labels(tenant=label, direction=direction).inc(value)


# ----------------------------------------------------------------------
# the lockstep fleet


class FleetSimulation:
    """N tenants × one shared tier hierarchy, stepped in lockstep.

    Args:
        fleet: the fleet shape (tenants, tiers, QoS policy, chain
            knobs).
        config: per-run engine knobs shared by every tenant (trace
            length, engine, seed, bandwidth ceilings, ...).
        m5_options: M5 stack configuration (M5 policies only).
        obs: fleet-level observability; when metrics are on, the
            per-tenant gauges/counters (slowdown, bandwidth share,
            migration and chain traffic) are registered here with a
            ``tenant`` label and snapshotted onto
            ``FleetResult.metrics``.
        tenant_metrics: give every tenant its own metrics registry;
            tenant snapshots are merged into ``FleetResult.metrics``
            (and :meth:`merged_snapshot`) under a ``tenant`` label.
        tenant_tracing: give every tenant a tracer; the lockstep loop
            wraps each tenant-epoch in an ``epoch`` span (with the
            async migration tick nested), collected by
            :meth:`tenant_spans` for the per-tenant Chrome trace.
    """

    def __init__(
        self,
        fleet: FleetConfig,
        config: Optional[SimConfig] = None,
        m5_options: Optional[M5Options] = None,
        obs: Optional[Observability] = None,
        tenant_metrics: bool = False,
        tenant_tracing: bool = False,
    ) -> None:
        self.fleet = fleet
        self.config = config if config is not None else SimConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.sims: List[Simulation] = []
        self.chains: List[Optional[DemotionChain]] = []
        self.tenant_seeds: List[int] = []
        #: Per-tenant observability bundles (None when both concerns
        #: are off, so the default fleet builds the seed pipeline).
        self.tenant_obs: List[Optional[Observability]] = []
        for t in range(fleet.tenants):
            obs_t: Optional[Observability] = None
            if tenant_metrics or tenant_tracing:
                obs_t = Observability(
                    metrics=tenant_metrics, tracing=tenant_tracing
                )
            self.tenant_obs.append(obs_t)
            bench, seed, sim, chain = _build_tenant(
                fleet, self.config, t, m5_options, obs=obs_t
            )
            self.tenant_seeds.append(seed)
            self.sims.append(sim)
            self.chains.append(chain)
        self.weights = fleet.weight_list()
        #: Fleet channel capacities per tier position (GB/s, 0 =
        #: unlimited): what the arbiter divides among tenants.
        self.tier_capacity_gbps = fleet_tier_capacities(fleet, self.config)
        self.tier_names = [n.name for n in self.sims[0].memory.nodes]
        # Mean-share accumulators, filled by the per-epoch arbiter.
        self._share_sums = [
            [0.0] * fleet.tiers for _ in range(fleet.tenants)
        ]
        self._share_epochs = 0
        self._mx = _register_fleet_metrics(self.obs)
        # Fleet-level recorder + watchdog over the fleet gauges.  The
        # tenant engines own their own recorders (wired by SimConfig);
        # this one watches the cross-tenant signals — slowdown and
        # bandwidth share — that only exist at fleet scope.
        self.recorder: Optional[TimeSeriesRecorder] = None
        self.watchdog: Optional[SloWatchdog] = None
        record_spec = self.config.record_series
        if self.config.slo_rules and not record_spec:
            record_spec = "default"
        if record_spec and self.obs.metrics_on:
            if record_spec == "default":
                series = (
                    "fleet_tenant_slowdown",
                    "fleet_tenant_bandwidth_share",
                    "slo_breaches_total",
                )
            else:
                series = parse_series_spec(record_spec)
            self.recorder = TimeSeriesRecorder(
                self.obs.registry,
                series=series,
                capacity=self.config.record_epochs,
            )
            if self.config.slo_rules:
                self.watchdog = SloWatchdog(
                    load_rules(self.config.slo_rules, self.config),
                    self.recorder,
                )
        self.result: Optional[FleetResult] = None

    def _arbitrate(self, demands: List[List[float]]) -> List[List[float]]:
        """Turn last epoch's demand matrix into per-tenant contention
        factor vectors, accumulating granted-share fractions."""
        self._share_epochs += 1
        factors = arbitrate_epoch(
            demands,
            self.weights,
            self.tier_capacity_gbps,
            self.fleet.qos,
            self._share_sums,
        )
        if self.obs.metrics_on:
            self._refresh_tenant_gauges()
        return factors

    def _refresh_tenant_gauges(self) -> None:
        """Keep the per-tenant gauges live mid-run for ``--serve``.

        Series are touched per tenant in the same order as the final
        :func:`_emit_tenant_metrics` pass (slowdown, then shares in
        tier order), so a served run's final snapshot is identical to
        an unserved one's.
        """
        mx_slowdown, mx_share, _ = self._mx
        for t, sim in enumerate(self.sims):
            label = str(t)
            mx_slowdown.labels(tenant=label).set(
                sim.perf.slowdown_vs_isolated()
            )
            for k, name in enumerate(self.tier_names):
                mx_share.labels(tenant=label, tier=name).set(
                    self._share_sums[t][k] / self._share_epochs
                )

    def run(self) -> FleetResult:
        """Advance every tenant to trace exhaustion, then finalize."""
        sims = self.sims
        states = [sim._initial_state() for sim in sims]
        policies = [sim.epoch_policy for sim in sims]
        tracers = []
        for sim, st in zip(sims, states):
            tracer = sim.obs.tracer if sim.obs.tracing_on else None
            if tracer is not None:
                tracer.sim_clock = SimClock(st)
            tracers.append(tracer)
        multi = self.fleet.tenants > 1
        demands: Optional[List[List[float]]] = None
        epoch = 0
        while any(st.remaining > 0 for st in states):
            epoch += 1
            factors = (
                self._arbitrate(demands)
                if (multi and demands is not None)
                else None
            )
            new_demands: List[List[float]] = []
            for t, (sim, st) in enumerate(zip(sims, states)):
                if st.remaining <= 0:
                    new_demands.append([0.0] * len(sim.memory.nodes))
                    continue
                if factors is not None:
                    sim.perf.contention = factors[t]
                tracer = tracers[t]
                if tracer is not None:
                    tracer.current_epoch = epoch
                    with tracer.span("epoch"):
                        sim.step_epoch(st, policies[t])
                else:
                    sim.step_epoch(st, policies[t])
                new_demands.append(
                    epoch_demands_gbps(sim, st.perf.total_s)
                    if multi
                    else []
                )
            demands = new_demands
            if self.recorder is not None:
                t_now = max(st.now_s for st in states)
                self.recorder.sample(epoch, t_now)
                if self.watchdog is not None:
                    self.watchdog.evaluate(epoch, t_now)
        results = [sim.finalize(st) for sim, st in zip(sims, states)]
        return self._assemble(results, epoch)

    def _assemble(
        self, results: List[RunResult], epochs: int
    ) -> FleetResult:
        benches = self.fleet.bench_list()
        tenant_results: List[TenantResult] = []
        for t, (sim, res) in enumerate(zip(self.sims, results)):
            if self._share_epochs > 0:
                shares = {
                    name: self._share_sums[t][k] / self._share_epochs
                    for k, name in enumerate(self.tier_names)
                }
            else:
                shares = {name: 1.0 for name in self.tier_names}
            chain = self.chains[t]
            chain_stats = chain.stats if chain is not None else ChainStats()
            tenant_result = TenantResult(
                tenant=t,
                bench=benches[t],
                seed=self.tenant_seeds[t],
                weight=self.weights[t],
                result=res,
                slowdown_vs_isolated=sim.perf.slowdown_vs_isolated(),
                bandwidth_share=shares,
                chain=chain_stats.as_dict(),
            )
            tenant_results.append(tenant_result)
            if self.obs.metrics_on:
                _emit_tenant_metrics(self._mx, tenant_result)
        self.result = FleetResult(
            tenants=self.fleet.tenants,
            tiers=self.fleet.tiers,
            policy=self.fleet.policy,
            qos=self.fleet.qos,
            engine=self.config.engine,
            epochs=epochs,
            results=tenant_results,
            metrics=self.merged_snapshot() if self.obs.metrics_on else {},
        )
        return self.result

    def merged_snapshot(self) -> Dict[str, object]:
        """One fleet-wide snapshot: the fleet-level families plus every
        tenant registry merged in under a ``tenant`` label.

        Safe to call mid-run from the :class:`~repro.obs.live.ObsServer`
        scrape thread — a torn read raises ``RuntimeError`` and the
        server retries.  Without per-tenant registries this is exactly
        the fleet registry's own snapshot.
        """
        if not self.obs.metrics_on:
            return {}
        tenant_regs = [
            (t, obs_t)
            for t, obs_t in enumerate(self.tenant_obs)
            if obs_t is not None and obs_t.metrics_on
        ]
        if not tenant_regs:
            return self.obs.snapshot()
        merged = MetricsRegistry(enabled=True)
        merged.merge(self.obs.registry.snapshot())
        for t, obs_t in tenant_regs:
            merged.merge(
                obs_t.registry.snapshot(), extra_labels={"tenant": str(t)}
            )
        return merged.snapshot()

    def tenant_spans(self) -> List[Tuple[int, List[SpanRecord]]]:
        """Per-tenant completed spans (tenants with tracing on only),
        for the merged per-tenant Chrome trace export."""
        return [
            (t, obs_t.tracer.spans)
            for t, obs_t in enumerate(self.tenant_obs)
            if obs_t is not None and obs_t.tracing_on
        ]


# ----------------------------------------------------------------------
# the sharded fleet (uncoupled tenants, one worker process each)


def run_tenant_shard(
    fleet: FleetConfig,
    config: Optional[SimConfig] = None,
    tenant: int = 0,
    m5_options: Optional[M5Options] = None,
    with_metrics: bool = False,
) -> TenantShard:
    """Run one tenant of an *uncoupled* fleet to completion.

    The process-pool work unit behind
    :func:`repro.sim.sweep.collect_fleet`: the tenant steps its own
    epochs alone (contention factors would be identically 1.0) while
    recording the per-epoch demand trace the arbiter needs, so
    :func:`assemble_fleet` can rebuild the exact lockstep accounting.
    With ``with_metrics`` the tenant gets its own registry and ships
    the (picklable) snapshot back on :attr:`TenantShard.metrics`.
    """
    config = config if config is not None else SimConfig()
    if is_coupled(fleet, config):
        raise ValueError(
            "bandwidth-coupled fleets must run in lockstep: a tenant "
            "shard cannot see its neighbors' demands"
        )
    obs_t = (
        Observability(metrics=True, tracing=False) if with_metrics else None
    )
    bench, seed, sim, chain = _build_tenant(
        fleet, config, tenant, m5_options, obs=obs_t
    )
    st = sim._initial_state()
    policy = sim.epoch_policy
    demands: List[List[float]] = []
    epochs = 0
    while st.remaining > 0:
        epochs += 1
        sim.step_epoch(st, policy)
        demands.append(epoch_demands_gbps(sim, st.perf.total_s))
    result = sim.finalize(st)
    chain_stats = chain.stats if chain is not None else ChainStats()
    return TenantShard(
        tenant=tenant,
        bench=bench,
        seed=seed,
        result=result,
        demands=demands,
        chain=chain_stats.as_dict(),
        slowdown_vs_isolated=sim.perf.slowdown_vs_isolated(),
        tier_names=[n.name for n in sim.memory.nodes],
        epochs=epochs,
        metrics=obs_t.snapshot() if obs_t is not None else {},
    )


def assemble_fleet(
    fleet: FleetConfig,
    config: Optional[SimConfig],
    shards: List[TenantShard],
    with_metrics: bool = False,
) -> FleetResult:
    """Reassemble a sharded fleet into the lockstep's FleetResult.

    Replays the QoS arbiter over the shards' recorded demand traces —
    epoch ``e``'s demands are arbitrated before epoch ``e+1``, exactly
    the lockstep lag, and the final epoch's demands are never
    arbitrated — so the granted-share accounting matches the lockstep
    run bit for bit.
    """
    config = config if config is not None else SimConfig()
    shards = sorted(shards, key=lambda s: s.tenant)
    if [s.tenant for s in shards] != list(range(fleet.tenants)):
        raise ValueError(
            f"need exactly one shard per tenant 0..{fleet.tenants - 1}, "
            f"got {[s.tenant for s in shards]}"
        )
    weights = fleet.weight_list()
    capacities = fleet_tier_capacities(fleet, config)
    tier_names = shards[0].tier_names
    epochs = max(s.epochs for s in shards)
    share_sums = [[0.0] * fleet.tiers for _ in range(fleet.tenants)]
    share_epochs = 0
    if fleet.tenants > 1:
        for e in range(epochs - 1):
            row = [
                s.demands[e] if e < len(s.demands) else [0.0] * fleet.tiers
                for s in shards
            ]
            arbitrate_epoch(row, weights, capacities, fleet.qos, share_sums)
            share_epochs += 1
    obs = (
        Observability(metrics=True, tracing=False) if with_metrics else NULL_OBS
    )
    mx = _register_fleet_metrics(obs)
    tenant_results: List[TenantResult] = []
    for s in shards:
        if share_epochs > 0:
            shares = {
                name: share_sums[s.tenant][k] / share_epochs
                for k, name in enumerate(tier_names)
            }
        else:
            shares = {name: 1.0 for name in tier_names}
        tenant_result = TenantResult(
            tenant=s.tenant,
            bench=s.bench,
            seed=s.seed,
            weight=weights[s.tenant],
            result=s.result,
            slowdown_vs_isolated=s.slowdown_vs_isolated,
            bandwidth_share=shares,
            chain=s.chain,
        )
        tenant_results.append(tenant_result)
        if obs.metrics_on:
            _emit_tenant_metrics(mx, tenant_result)
    metrics: Dict[str, object] = {}
    if obs.metrics_on:
        # Merge the shards' shipped registries under tenant labels —
        # the same shape FleetSimulation.merged_snapshot() builds for
        # the lockstep path, so sharded stays snapshot-identical.
        if any(s.metrics for s in shards):
            merged = MetricsRegistry(enabled=True)
            merged.merge(obs.registry.snapshot())
            for s in shards:
                if s.metrics:
                    merged.merge(
                        s.metrics, extra_labels={"tenant": str(s.tenant)}
                    )
            metrics = merged.snapshot()
        else:
            metrics = obs.snapshot()
    return FleetResult(
        tenants=fleet.tenants,
        tiers=fleet.tiers,
        policy=fleet.policy,
        qos=fleet.qos,
        engine=config.engine,
        epochs=epochs,
        results=tenant_results,
        metrics=metrics,
    )


def run_fleet(
    fleet: FleetConfig,
    config: Optional[SimConfig] = None,
    m5_options: Optional[M5Options] = None,
    with_metrics: bool = False,
) -> FleetResult:
    """Convenience one-shot lockstep fleet runner (picklable)."""
    obs = Observability(metrics=True, tracing=False) if with_metrics else None
    return FleetSimulation(
        fleet,
        config=config,
        m5_options=m5_options,
        obs=obs,
        tenant_metrics=with_metrics,
    ).run()
