"""Multi-tenant, multi-tier fleet simulation.

The single-run engine (:mod:`repro.sim`) models one workload on one
DDR + CXL pair.  This package scales that model out to the paper's
datacenter setting: N tenants — each a :mod:`repro.workloads`
generator with its own seed, page table, and footprint — co-located
on a shared tier hierarchy of up to three nodes (DRAM, direct-attached
CXL, pooled CXL behind a switch), with

* weighted capacity partitioning into disjoint per-tenant
  physical-address windows (:mod:`repro.fleet.topology`),
* per-epoch QoS bandwidth arbitration and a noisy-neighbor contention
  model (:func:`repro.sim.perf.bandwidth_shares`),
* cross-tier demotion chains, DRAM → CXL → pooled
  (:mod:`repro.fleet.chain`), and
* per-tenant accounting: slowdown vs isolated run, bandwidth share,
  migration and chain traffic (:mod:`repro.fleet.sim`).

A 1-tenant, 2-tier fleet is bit-identical to the single-run engine —
the property the ``fleet`` differential oracle in :mod:`repro.verify`
enforces.
"""

from repro.fleet.chain import ChainStats, DemotionChain
from repro.fleet.sim import (
    FleetResult,
    FleetSimulation,
    TenantResult,
    TenantShard,
    assemble_fleet,
    run_fleet,
    run_tenant_shard,
)
from repro.fleet.topology import (
    MAX_TENANTS,
    tenant_node_specs,
    weighted_partition,
)
from repro.sim.config import FleetConfig

__all__ = [
    "MAX_TENANTS",
    "ChainStats",
    "DemotionChain",
    "FleetConfig",
    "FleetResult",
    "FleetSimulation",
    "TenantResult",
    "TenantShard",
    "assemble_fleet",
    "run_fleet",
    "run_tenant_shard",
    "tenant_node_specs",
    "weighted_partition",
]
