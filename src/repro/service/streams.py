"""Stream ingestion for the service daemon.

A service stream couples a *source* (a trace file — v2 streaming
format or v1 ``.npz`` — possibly still being written) to a *buffer*
(:class:`StreamWorkload`, the bounded FIFO the epoch engine consumes
from).  The split matters for checkpointing: the buffer and its
bookkeeping live inside the stream's :class:`~repro.sim.Simulation`
object graph and pickle with it, while the source (an open file
handle) stays outside and is re-opened and repositioned from the
service manifest on resume.

Backpressure reuses the bounded-queue discipline of the migration
subsystem: :meth:`StreamWorkload.feed` accepts chunks only while the
buffer holds fewer than ``capacity`` addresses, and the ingest loop
simply stops pulling from the source until the engine drains it —
nothing is dropped, the *file* is the queue's overflow.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.workloads.base import DEFAULT_CHUNK, TraceGenerator, WorkloadSpec


class StreamEmpty(RuntimeError):
    """The engine asked for more addresses than the buffer holds.

    The service scheduler never lets this happen (it sizes each
    round's drive budget by :attr:`StreamWorkload.buffered`); seeing
    it means a driver bug, not a data condition.
    """


class StreamWorkload(TraceGenerator):
    """A bounded FIFO of ingested addresses behind the
    :class:`~repro.workloads.base.TraceGenerator` interface.

    The engine's trace stage calls :meth:`chunk`; the service's
    ingest loop calls :meth:`feed`.  Unlike the synthetic generators
    this workload is *finite and externally fed*: the scheduler must
    only drive as many accesses as are buffered.

    Picklable by design — the buffer is part of a checkpointed
    simulation's object graph, so in-flight (ingested but not yet
    consumed) addresses survive a kill/resume without re-reading
    them from the source.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        capacity: int = 1 << 22,
    ) -> None:
        super().__init__(spec, seed=0)
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._parts: List[np.ndarray] = []
        self._head = 0  # consumed prefix of _parts[0]
        self._buffered = 0
        #: Lifetime totals (cross-checked against the source's
        #: ``chunks_read`` bookkeeping at checkpoint time).
        self.fed_total = 0
        self.consumed_total = 0

    # ------------------------------------------------------------------
    # producer side (the service's ingest loop)

    @property
    def buffered(self) -> int:
        """Addresses currently waiting in the buffer."""
        return self._buffered

    @property
    def free(self) -> int:
        """Room left before :meth:`feed` starts refusing chunks."""
        return max(0, self.capacity - self._buffered)

    def feed(self, chunk: np.ndarray) -> bool:
        """Enqueue one ingested chunk; False = full, try next round.

        All-or-nothing (a trace chunk is the transfer unit, mirroring
        the v2 file format), so a refused chunk is simply re-offered
        after the engine drains the buffer.  A chunk is refused only
        when the buffer already holds at least ``capacity`` addresses;
        one chunk may overshoot the capacity, which keeps progress
        possible even if a single file chunk exceeds it.
        """
        if self._buffered >= self.capacity:
            return False
        arr = np.asarray(chunk, dtype=np.uint64)
        if arr.size == 0:
            return True
        self._parts.append(arr)
        self._buffered += arr.size
        self.fed_total += arr.size
        return True

    # ------------------------------------------------------------------
    # consumer side (the epoch engine's trace stage)

    def chunk(self, chunk_size: int = DEFAULT_CHUNK) -> np.ndarray:
        take = int(chunk_size)
        if take > self._buffered:
            raise StreamEmpty(
                f"engine asked for {take} addresses but only "
                f"{self._buffered} are buffered"
            )
        out = np.empty(take, dtype=np.uint64)
        filled = 0
        while filled < take:
            part = self._parts[0]
            avail = part.size - self._head
            use = min(avail, take - filled)
            out[filled:filled + use] = part[self._head:self._head + use]
            filled += use
            self._head += use
            if self._head == part.size:
                self._parts.pop(0)
                self._head = 0
        self._buffered -= take
        self.consumed_total += take
        return out
