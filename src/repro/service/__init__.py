"""Streaming service mode: ``repro serve`` (see ``docs/service.md``).

Multiplexes N concurrent trace streams onto the epoch engine with
per-stream budgets and policies, bounded-buffer ingest backpressure,
live per-stream metrics, and periodic whole-service checkpoints that
resume bit-identically after a kill.
"""

from repro.service.daemon import (
    SERVICE_CHECKPOINT_FORMAT,
    Service,
    ServiceConfig,
    ServiceStream,
    StreamSpec,
    open_source,
)
from repro.service.streams import StreamEmpty, StreamWorkload

__all__ = [
    "SERVICE_CHECKPOINT_FORMAT",
    "Service",
    "ServiceConfig",
    "ServiceStream",
    "StreamSpec",
    "StreamEmpty",
    "StreamWorkload",
    "open_source",
]
