"""The streaming service daemon behind ``repro serve``.

A :class:`Service` multiplexes N concurrent trace streams onto the
epoch engine: every stream is its own :class:`~repro.sim.Simulation`
(own policy, own metrics registry, own telemetry ring) fed from a
trace file — the chunked v2 streaming format by preference, which the
daemon can tail while a producer is still appending, or a v1 ``.npz``
capture.  A deterministic round-robin scheduler drives each stream up
to its per-round access *budget*, ingestion applies the bounded-queue
backpressure discipline (:mod:`repro.service.streams`), and the
merged per-stream metrics are served live through
:class:`~repro.obs.live.ObsServer` under a ``stream`` label.

Checkpoint/resume: every ``checkpoint_every`` scheduler rounds the
service persists each live stream's full engine state
(:meth:`~repro.sim.Simulation.save_state`), the results of already
finished streams, and a ``manifest.json`` recording the round counter
and each source's chunk ordinal.  The manifest is written *last* and
atomically, so a kill at any instant leaves the previous complete
checkpoint set behind.  Resuming re-opens each source, repositions it
with :meth:`~repro.workloads.TraceReader.skip`, and continues; with
complete (sealed) sources the resumed service's final per-stream
results are bit-identical to an uninterrupted run — the scheduler has
no wall-clock inputs, so the only nondeterminism possible is a source
that was still growing.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs import MetricsRegistry, Observability
from repro.service.streams import StreamWorkload
from repro.sim.config import SimConfig
from repro.sim.engine import CheckpointError, RunResult, Simulation
from repro.workloads.base import DEFAULT_CHUNK, WorkloadSpec
from repro.workloads.traceio import TraceReader, V2_MAGIC, load_trace

#: On-disk manifest format of a service checkpoint directory.
SERVICE_CHECKPOINT_FORMAT = 1


@dataclass
class StreamSpec:
    """One stream's static description.

    Attributes:
        name: unique stream label (appears on every metric series).
        trace: path to the source trace (v2 stream or v1 ``.npz``).
        policy: page-migration policy this stream runs.
        budget: accesses the scheduler drives per round — the
            per-stream fairness knob (a stream with twice the budget
            gets twice the engine throughput).
    """

    name: str
    trace: str
    policy: str = "m5-hpt"
    budget: int = 65_536

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stream name must be non-empty")
        if "/" in self.name or self.name in (".", ".."):
            raise ValueError(f"stream name {self.name!r} must be a plain "
                             "label (it names checkpoint files)")
        if self.budget < 1:
            raise ValueError("stream budget must be positive")


@dataclass
class ServiceConfig:
    """Daemon-level knobs (engine knobs stay on :class:`SimConfig`).

    Attributes:
        buffer_capacity: per-stream ingest buffer bound, in addresses;
            a full buffer back-pressures ingestion (the file is the
            overflow queue, nothing is dropped).
        checkpoint_every: scheduler rounds between checkpoints
            (0 disables).
        checkpoint_dir: directory the checkpoint set lives in.
        poll_interval_s: sleep between rounds when no stream made
            progress (all buffers empty, sources still in flight).
        max_rounds: stop after this many rounds even with streams
            unfinished (0 = run until all streams finish); the bounded
            mode tests and one-shot drains use.
    """

    buffer_capacity: int = 1 << 20
    checkpoint_every: int = 0
    checkpoint_dir: str = ""
    poll_interval_s: float = 0.05
    max_rounds: int = 0

    def __post_init__(self) -> None:
        if self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.checkpoint_every > 0 and not self.checkpoint_dir:
            raise ValueError("checkpoint_every > 0 requires checkpoint_dir")
        if self.poll_interval_s < 0:
            raise ValueError("poll_interval_s must be non-negative")


class _ArraySource:
    """A v1 (in-memory) trace behind the v2 reader's duck type.

    Presents a materialised address array as a sequence of fixed-size
    chunks with the same ``read_next``/``skip``/``chunks_read``
    bookkeeping as :class:`~repro.workloads.TraceReader`, so the
    service's ingest and manifest logic handles both formats
    identically.  Always :attr:`complete` — a ``.npz`` exists only
    once its capture finished.
    """

    def __init__(self, addresses, spec: WorkloadSpec,
                 chunk_size: int = DEFAULT_CHUNK) -> None:
        self._addresses = addresses
        self.spec = spec
        self.chunk_size = int(chunk_size)
        self.chunks_read = 0

    @property
    def complete(self) -> bool:
        return True

    @property
    def total_addresses(self) -> int:
        return int(self._addresses.size)

    def read_next(self):
        start = self.chunks_read * self.chunk_size
        if start >= self._addresses.size:
            return None
        self.chunks_read += 1
        return self._addresses[start:start + self.chunk_size]

    def skip(self, n_chunks: int) -> int:
        total = -(-self._addresses.size // self.chunk_size)
        skipped = min(int(n_chunks), total - self.chunks_read)
        self.chunks_read += skipped
        return skipped

    def close(self) -> None:
        pass


def open_source(
    path: Union[str, Path], chunk_size: int = DEFAULT_CHUNK
) -> Union[TraceReader, _ArraySource]:
    """Open a trace file as an incremental source (format-detected)."""
    path = Path(path)
    with open(path, "rb") as fh:
        magic = fh.read(len(V2_MAGIC))
    if magic == V2_MAGIC:
        return TraceReader(path)
    addresses, spec, _ = load_trace(path)
    return _ArraySource(addresses, spec, chunk_size=chunk_size)


class ServiceStream:
    """One live stream: source → buffer → engine, plus bookkeeping."""

    def __init__(
        self,
        spec: StreamSpec,
        sim_config: SimConfig,
        buffer_capacity: int,
    ) -> None:
        self.spec = spec
        self.source = open_source(spec.trace, chunk_size=sim_config.chunk_size)
        workload = StreamWorkload(self.source.spec, capacity=buffer_capacity)
        self.sim = Simulation(
            workload,
            sim_config,
            policy=spec.policy,
            obs=Observability(metrics=True, tracing=False),
        )
        self.st = self.sim._initial_state()
        # The engine budgets a fresh state with the config's trace
        # length; the scheduler owns the budget here, one round at a
        # time, so the stream starts paused.
        self.st.remaining = 0
        self.policy = self.sim.epoch_policy
        self.result: Optional[RunResult] = None

    # -- restore path ---------------------------------------------------

    @classmethod
    def _restored(cls, spec: StreamSpec, sim: Simulation,
                  chunks_read: int) -> "ServiceStream":
        stream = cls.__new__(cls)
        stream.spec = spec
        stream.source = open_source(spec.trace,
                                    chunk_size=sim.config.chunk_size)
        skipped = stream.source.skip(chunks_read)
        if skipped != chunks_read:
            raise CheckpointError(
                f"stream {spec.name!r}: source {spec.trace} holds only "
                f"{skipped} of the {chunks_read} chunks the checkpoint "
                "had consumed (trace truncated or replaced?)"
            )
        stream.sim = sim
        stream.st = sim._resume_state
        sim._resume_state = None
        stream.policy = sim.epoch_policy
        stream.result = None
        return stream

    # -- scheduler hooks ------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def workload(self) -> StreamWorkload:
        return self.sim.workload

    @property
    def finished(self) -> bool:
        return self.result is not None

    def ingest(self) -> bool:
        """Pull source chunks until the buffer is full or the source
        has nothing more on disk.  Returns True if anything arrived."""
        got = False
        while self.workload.free > 0:
            chunk = self.source.read_next()
            if chunk is None:
                break
            self.workload.feed(chunk)
            got = True
        return got

    def drive(self) -> int:
        """Run up to one budget's worth of buffered accesses through
        the engine; returns the number of accesses consumed."""
        n = min(self.spec.budget, self.workload.buffered)
        if n <= 0:
            return 0
        self.st.remaining = n
        while self.st.remaining > 0:
            self.sim.step_epoch(self.st, self.policy)
        return n

    @property
    def drained(self) -> bool:
        """Source sealed and every buffered address consumed."""
        return self.source.complete and self.workload.buffered == 0

    def finish(self) -> RunResult:
        self.result = self.sim.finalize(self.st)
        self.source.close()
        return self.result

    def close(self) -> None:
        self.source.close()


class Service:
    """The daemon: N streams, one deterministic scheduler.

    Build one from stream specs (fresh) or :meth:`resume` (from a
    checkpoint directory), then call :meth:`run`.  The optional HTTP
    endpoint is the caller's to manage — :meth:`snapshot` is the
    merged, ``stream``-labelled metrics source an
    :class:`~repro.obs.ObsServer` serves.
    """

    def __init__(
        self,
        streams: List[StreamSpec],
        sim_config: Optional[SimConfig] = None,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        if not streams:
            raise ValueError("a service needs at least one stream")
        names = [s.name for s in streams]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stream names in {names}")
        self.sim_config = sim_config if sim_config is not None else SimConfig()
        if self.sim_config.checkpoint_every > 0:
            raise ValueError(
                "the service owns checkpointing (ServiceConfig."
                "checkpoint_every); leave SimConfig.checkpoint_every at 0"
            )
        self.config = config if config is not None else ServiceConfig()
        self.streams = [
            ServiceStream(s, self.sim_config, self.config.buffer_capacity)
            for s in streams
        ]
        self.round = 0
        self.results: Dict[str, RunResult] = {}
        self._stop_requested = False
        self.checkpoints_written = 0
        self._init_metrics()

    # ------------------------------------------------------------------
    # construction from a checkpoint

    @classmethod
    def resume(
        cls, checkpoint_dir: Union[str, Path], **config_overrides: object
    ) -> "Service":
        """Rebuild a service from its checkpoint directory.

        ``config_overrides`` replace individual :class:`ServiceConfig`
        fields for the resumed session (e.g. ``max_rounds=0`` to run a
        previously round-capped service to completion); everything the
        engine state depends on comes from the manifest.
        """
        ckpt_dir = Path(checkpoint_dir)
        manifest_path = ckpt_dir / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except OSError as exc:
            raise CheckpointError(
                f"cannot read service manifest {manifest_path}: {exc}"
            ) from exc
        if manifest.get("format") != SERVICE_CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unsupported service checkpoint format "
                f"{manifest.get('format')!r}"
            )
        service = cls.__new__(cls)
        service.sim_config = SimConfig(**manifest["sim_config"])
        service.config = ServiceConfig(
            **{**manifest["config"], **config_overrides}
        )
        service.round = int(manifest["round"])
        service.checkpoints_written = int(manifest["checkpoints_written"])
        service._stop_requested = False
        service.results = {}
        results_path = ckpt_dir / "results.pkl"
        if results_path.exists():
            with open(results_path, "rb") as fh:
                service.results = pickle.load(fh)
        service.streams = []
        for entry in manifest["streams"]:
            spec = StreamSpec(**entry["spec"])
            if entry["finished"]:
                if spec.name not in service.results:
                    raise CheckpointError(
                        f"stream {spec.name!r} is marked finished but "
                        "its result is missing from results.pkl"
                    )
                continue
            sim = Simulation.load_state(ckpt_dir / entry["checkpoint"])
            service.streams.append(
                ServiceStream._restored(spec, sim, entry["chunks_read"])
            )
        service._init_metrics()
        return service

    # ------------------------------------------------------------------
    # metrics

    def _init_metrics(self) -> None:
        self.registry = MetricsRegistry(enabled=True)
        self._mx_rounds = self.registry.counter(
            "service_rounds_total", "Scheduler rounds completed")
        self._mx_ckpts = self.registry.counter(
            "service_checkpoints_total", "Service checkpoints written")
        self._mx_active = self.registry.gauge(
            "service_streams_active", "Streams not yet finished")
        self._mx_buffered = self.registry.gauge(
            "service_stream_buffered", "Addresses waiting in the ingest "
            "buffer", labels=("stream",))
        self._mx_consumed = self.registry.counter(
            "service_stream_accesses_total", "Accesses driven through the "
            "engine", labels=("stream",))
        self._mx_active.set(len(self.streams))

    def snapshot(self) -> Dict[str, object]:
        """Service + per-stream metrics, merged under ``stream=``."""
        merged = MetricsRegistry(enabled=True)
        merged.merge(self.registry.snapshot())
        for stream in self.streams:
            merged.merge(
                stream.sim.obs.registry.snapshot(),
                extra_labels={"stream": stream.name},
            )
        return merged.snapshot()

    # ------------------------------------------------------------------
    # the scheduler

    def request_stop(self) -> None:
        """Ask the run loop to checkpoint (if configured) and return.
        Signal-handler safe: sets a flag, does no work itself."""
        self._stop_requested = True

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful stop (checkpoint, then exit)."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda *_: self.request_stop())

    @property
    def active_streams(self) -> List[ServiceStream]:
        return [s for s in self.streams if not s.finished]

    def run(self) -> Dict[str, RunResult]:
        """Drive every stream to completion (or until stopped).

        Returns the per-stream results accumulated so far; a stopped
        or round-capped run returns only the finished streams' results
        and leaves the rest checkpointed (if configured).
        """
        cfg = self.config
        while True:
            active = self.active_streams
            if not active or self._stop_requested:
                break
            self.round += 1
            progressed = False
            for stream in active:
                if stream.ingest():
                    progressed = True
                consumed = stream.drive()
                if consumed > 0:
                    progressed = True
                    self._mx_consumed.labels(stream=stream.name).inc(consumed)
                elif stream.drained:
                    self.results[stream.name] = stream.finish()
                    progressed = True
                self._mx_buffered.labels(stream=stream.name).set(
                    stream.workload.buffered)
            self._mx_rounds.inc()
            self._mx_active.set(len(self.active_streams))
            if cfg.checkpoint_every and self.round % cfg.checkpoint_every == 0:
                self.checkpoint()
            if cfg.max_rounds and self.round >= cfg.max_rounds:
                break
            if not progressed and cfg.poll_interval_s > 0:
                # Every live source is mid-append with nothing new on
                # disk; idle briefly instead of spinning on the files.
                time.sleep(cfg.poll_interval_s)
        if self._stop_requested and cfg.checkpoint_every:
            self.checkpoint()
        return dict(self.results)

    # ------------------------------------------------------------------
    # checkpointing

    def checkpoint(self) -> Path:
        """Persist the full service state; manifest lands last.

        Write order is the crash-safety argument: per-stream engine
        checkpoints and the results pickle are written (each one
        fsynced and atomically replaced) *before* the manifest
        replaces its predecessor, so ``manifest.json`` only ever
        names files that are already complete and durable on disk.
        """
        ckpt_dir = Path(self.config.checkpoint_dir)
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        entries = []
        for stream in self.streams:
            entry = {
                "spec": asdict(stream.spec),
                "finished": stream.finished,
                "chunks_read": int(stream.source.chunks_read),
                "checkpoint": f"{stream.name}.ckpt",
            }
            if not stream.finished:
                stream.sim.save_state(ckpt_dir / entry["checkpoint"],
                                      stream.st)
            entries.append(entry)
        tmp = ckpt_dir / "results.pkl.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(self.results, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, ckpt_dir / "results.pkl")
        self.checkpoints_written += 1
        manifest = {
            "format": SERVICE_CHECKPOINT_FORMAT,
            "round": self.round,
            "checkpoints_written": self.checkpoints_written,
            "sim_config": _sim_config_dict(self.sim_config),
            "config": asdict(self.config),
            "streams": entries,
        }
        tmp = ckpt_dir / "manifest.json.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(manifest, indent=2))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, ckpt_dir / "manifest.json")
        self._mx_ckpts.inc()
        return ckpt_dir / "manifest.json"

    def close(self) -> None:
        for stream in self.streams:
            stream.close()

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


def _sim_config_dict(cfg: SimConfig) -> Dict[str, object]:
    """A JSON-roundtrippable SimConfig dict.

    The derived scale factors are materialised by ``__post_init__``,
    so ``asdict`` already reproduces the exact configuration.
    """
    return asdict(cfg)
