"""``lint: torn-safe`` annotations — the lock-free contract marker.

A torn-safe annotation declares that one specific shared-state write
is *deliberately* unsynchronised: the value is a single float/int
whose torn reads are stale-but-never-corrupt, or a monotone counter
where any observed value is a valid (if slightly old) observation.
The CONC rules (:mod:`repro.lintkit.rules.concurrency`) exempt
annotated writes instead of flagging them — the annotation encodes
the design (``obs/live.py``'s lock-free ObsServer counters) rather
than silencing the analyzer.

Placement follows the suppression grammar: trailing on the write
line::

    self.disconnects += 1  # lint: torn-safe -- monotone counter

or standalone on a comment line directly above it.  Anything after
the tag (e.g. an ``--`` explanation) is free-form, and only real
comments count — the file is tokenized, so the tag inside a string is
ignored.

The annotation is *checked*: one that never exempts a CONC finding is
itself flagged (``CONC004``), exactly like a stale ``lint: disable=``
suppression, so the declared lock-free surface can only shrink when
the code does.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List

from repro.lintkit.suppressions import attach_comment, tagged_comments

#: The tag itself; free-form prose may follow.
_TORN_SAFE_RE = re.compile(r"#\s*lint:\s*torn-safe\b")


@dataclass
class TornSafeEntry:
    """One torn-safe annotation comment."""

    comment_line: int  #: line the comment itself is on (1-based)
    target_line: int  #: line of the write it annotates
    used: bool = field(default=False)


class TornSafeAnnotations:
    """All torn-safe annotations of one source file."""

    def __init__(self, source: str):
        self.entries: List[TornSafeEntry] = []
        self._by_line: Dict[int, List[TornSafeEntry]] = {}
        lines = source.splitlines()
        for line, standalone, _match in tagged_comments(source, _TORN_SAFE_RE):
            entry = TornSafeEntry(line, attach_comment(line, standalone, lines))
            self.entries.append(entry)
            self._by_line.setdefault(entry.target_line, []).append(entry)

    def expand(self, stmt_spans: Dict[int, int]) -> None:
        """Extend entries over multi-line statements (same contract as
        :meth:`~repro.lintkit.suppressions.FileSuppressions.expand`)."""
        for entry in list(self.entries):
            end = stmt_spans.get(entry.target_line)
            if end is None:
                continue
            for line in range(entry.target_line + 1, end + 1):
                self._by_line.setdefault(line, []).append(entry)

    def consume(self, line: int) -> bool:
        """True (and mark used) if a torn-safe annotation covers
        ``line``."""
        entries = self._by_line.get(line, [])
        for entry in entries:
            entry.used = True
        return bool(entries)

    def unused(self) -> List[TornSafeEntry]:
        return [e for e in self.entries if not e.used]

    def __len__(self) -> int:
        return len(self.entries)


def find_torn_safe(source: str) -> TornSafeAnnotations:
    return TornSafeAnnotations(source)
