"""``--changed``: restrict findings to lines touched since a git ref.

CI gates *new-code* findings with this: the full run still reports
everything, but the gating pass drops findings on lines an open PR
did not touch, so a rule rollout never blocks unrelated work.  The
scope comes from ``git diff --unified=0 <ref>`` — zero context, so a
hunk's ``+c,d`` range is exactly the added/modified lines.

Project-scope findings follow the same contract: a CRASH002
ordering finding only gates if the ``os.replace`` line it points at
is part of the diff.
"""

from __future__ import annotations

import re
import subprocess
from typing import Dict, Set

from repro.lintkit.engine import LintResult

_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@")


class DiffScopeError(RuntimeError):
    """``git diff`` could not produce a change scope."""


def changed_lines(root: str, ref: str) -> Dict[str, Set[int]]:
    """``{relative path: changed line numbers}`` versus ``ref``.

    Only lines present on the *new* side count (pure deletions cannot
    carry findings).  Raises :class:`DiffScopeError` when git is
    unavailable or the ref does not resolve.
    """
    try:
        proc = subprocess.run(
            ["git", "diff", "--unified=0", "--no-color", ref, "--", "*.py"],
            cwd=root,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as exc:  # git binary missing
        raise DiffScopeError(f"cannot run git diff: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        raise DiffScopeError(
            f"git diff against {ref!r} failed: "
            f"{detail[0] if detail else proc.returncode}"
        )
    scope: Dict[str, Set[int]] = {}
    current: Set[int] = set()
    for line in proc.stdout.splitlines():
        if line.startswith("+++ "):
            path = line[4:].strip()
            if path.startswith("b/"):
                path = path[2:]
            if path == "/dev/null":
                current = set()  # deleted file: nothing on the new side
            else:
                current = scope.setdefault(path, set())
        else:
            match = _HUNK_RE.match(line)
            if match:
                start = int(match.group(1))
                count = int(match.group(2) or "1")
                current.update(range(start, start + count))
    return {path: lines for path, lines in scope.items() if lines}


def filter_changed(result: LintResult, root: str, ref: str) -> LintResult:
    """A new :class:`LintResult` keeping only findings on changed
    lines; the summary is recomputed over the kept set."""
    scope = changed_lines(root, ref)
    kept = [
        f for f in result.findings
        if f.line in scope.get(f.path, ())
    ]
    summary = result.summary
    summary = type(summary)(files=summary.files)
    summary.suppressed = result.summary.suppressed
    for finding in kept:
        stats = summary.by_rule.setdefault(
            finding.rule, {"findings": 0, "suppressed": 0}
        )
        stats["findings"] += 1
    summary.findings = len(kept)
    return LintResult(kept, summary)
