"""Finding and severity types shared by every lint rule."""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are correctness hazards (nondeterminism, unit
    mix-ups, silent integer saturation, registry drift) and fail the
    lint run; ``WARNING`` findings are advisory and also fail the run
    — the linter has no "soft" mode, a warning must be fixed or
    suppressed — but are ranked below errors in the report.
    ``NOTE`` findings are best-practice advisories (e.g. the CRASH003
    fsync-before-replace hint): they are reported, counted, and
    suppressible, but never affect the exit code, so downstream
    automation can surface them without gating on them.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:
        return self.value

    @property
    def gates(self) -> bool:
        """True when findings of this severity fail the lint run."""
        return self is not Severity.NOTE


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: the rule identifier (``DET001``, ``UNIT002``, …).
        path: file path relative to the project root (posix-style).
        line: 1-based line number.
        col: 0-based column offset.
        message: what is wrong, concretely.
        severity: see :class:`Severity`.
        fix_hint: how to fix it (or how to suppress it when the code
            is deliberately exempt).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    fix_hint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def format(self) -> str:
        text = f"{self.location()}: {self.severity} {self.rule}: {self.message}"
        if self.fix_hint:
            text += f"\n    hint: {self.fix_hint}"
        return text

    def as_dict(self) -> dict:
        data = asdict(self)
        data["severity"] = self.severity.value
        return data

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class RuleStats:
    """Per-rule counters for the run summary."""

    findings: int = 0
    suppressed: int = 0


@dataclass
class Summary:
    """Aggregate counts for one lint run."""

    files: int = 0
    findings: int = 0
    suppressed: int = 0
    by_rule: dict = field(default_factory=dict)
