"""File and project context handed to lint rules."""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional

from repro.lintkit.annotations import TornSafeAnnotations, find_torn_safe
from repro.lintkit.suppressions import FileSuppressions, find_suppressions


class FileContext:
    """One parsed source file.

    Attributes:
        path: absolute filesystem path.
        rel: posix-style path relative to the project root — rules
            match layers against this (``src/repro/sim/engine.py``).
        source: the file's text.
        tree: the parsed :mod:`ast` module, or ``None`` when the file
            has a syntax error (reported as ``PARSE`` by the engine).
        suppressions: the file's ``# lint: disable=`` comments.
        torn_safe: the file's ``# lint: torn-safe`` annotations,
            consumed by the CONC concurrency rules.
    """

    def __init__(self, path: str, rel: str, source: str):
        self.path = path
        self.rel = rel.replace(os.sep, "/")
        self.source = source
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        self.suppressions: FileSuppressions = find_suppressions(source)
        self.torn_safe: TornSafeAnnotations = find_torn_safe(source)
        if self.tree is not None:
            spans: dict = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.stmt):
                    end = getattr(node, "end_lineno", None) or node.lineno
                    prev = spans.get(node.lineno)
                    # innermost statement wins: least overreach
                    if prev is None or end < prev:
                        spans[node.lineno] = end
            self.suppressions.expand(spans)
            self.torn_safe.expand(spans)

    def in_layer(self, *layers: str) -> bool:
        """True if the file lives under ``repro/<layer>/`` for any of
        the given layer names (package ``__init__`` files included)."""
        for layer in layers:
            if f"repro/{layer}/" in self.rel:
                return True
        return False

    def is_module(self, rel_suffix: str) -> bool:
        return self.rel.endswith(rel_suffix)


class Project:
    """The set of files under analysis plus the project root.

    The root anchors the registry files (``docs/registries/``) that
    the DRIFT rules diff against, so project-scope rules work even
    when only a subtree is being linted.
    """

    def __init__(self, root: str, files: Iterable[FileContext]):
        self.root = os.path.abspath(root)
        self.files: List[FileContext] = list(files)
        self._by_suffix: Dict[str, FileContext] = {}

    def file_ending_with(self, rel_suffix: str) -> Optional[FileContext]:
        """The unique scanned file whose relative path ends with
        ``rel_suffix`` (e.g. ``repro/sim/config.py``)."""
        if rel_suffix not in self._by_suffix:
            matches = [f for f in self.files if f.rel.endswith(rel_suffix)]
            self._by_suffix[rel_suffix] = matches[0] if len(matches) == 1 else None
        return self._by_suffix[rel_suffix]

    def registry_path(self, name: str) -> str:
        return os.path.join(self.root, "docs", "registries", name)
