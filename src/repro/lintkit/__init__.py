"""Project-aware static analysis for the M5 reproduction.

``repro.lintkit`` walks the source tree's ASTs and enforces the
properties the runtime guard layers (telemetry, metrics, invariants,
differential oracles) can only check *after* a simulation has run:

* **determinism** (``DET001``–``DET004``) — no global-state RNG draws,
  no wall-clock reads in simulation hot paths outside the
  observability layer, no iteration-order dependence on sets, every
  ``numpy.random.Generator`` seeded from a seed-derived expression;
* **dimensional consistency** (``UNIT001``–``UNIT003``) — variables
  carrying a unit suffix (``_us``, ``_ns``, ``_s``, ``_gbps``,
  ``_bytes``, ``_pages``, …) may only mix through explicit
  conversions;
* **numpy counter safety** (``DTYPE001``) — narrow integer SRAM
  counters in ``cxl/`` must handle saturation explicitly, mirroring
  PAC's L-bit spill model;
* **registry drift** (``DRIFT001``–``DRIFT003``) — ``SimConfig``
  knobs, telemetry event names, and metric families stay in sync with
  the checked-in registries under ``docs/registries/``;
* **concurrency** (``CONC001``–``CONC004``) — lock discipline on
  shared attributes, no blocking calls while holding a lock, thread
  lifecycle hygiene, and a *checked* ``# lint: torn-safe`` annotation
  for deliberately lock-free designs;
* **crash safety** (``CRASH001``–``CRASH004``) — checkpoint artifacts
  flow through tmp + ``os.replace`` with the manifest replaced last,
  fsync-before-replace (advisory), and handle hygiene on error paths;
* **pickle safety** (``PICKLE001``–``PICKLE002``) — classes reachable
  from the checkpoint pickles carry no OS resources or lambdas.

The CONC/CRASH/PICKLE families run on a project-level model
(:mod:`repro.lintkit.model`): a symbol table, a module-granular call
graph, and attribute→class reachability, built once per run.

Run it as ``repro lint`` or ``python tools/run_lint.py``; suppress a
deliberate exception with a ``# lint: disable=RULE`` comment (unused
suppressions are themselves flagged as ``SUP001``).  ``--format
sarif`` emits SARIF 2.1.0 for CI/PR annotation; ``--changed REF``
keeps only findings on lines changed since a git ref.  See
``docs/static_analysis.md`` for the full catalogue and the
registry-file workflow.
"""

from repro.lintkit.base import RULE_REGISTRY, Rule, all_rules, register
from repro.lintkit.context import FileContext, Project
from repro.lintkit.engine import (
    LintResult,
    add_arguments,
    format_human,
    format_json,
    lint_project,
    load_project,
    main,
    run_from_args,
)
from repro.lintkit.findings import Finding, Severity
from repro.lintkit.sarif import format_sarif

# Importing the rule modules registers every rule in RULE_REGISTRY.
from repro.lintkit import rules as _rules  # noqa: F401

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "register",
    "all_rules",
    "RULE_REGISTRY",
    "FileContext",
    "Project",
    "LintResult",
    "lint_project",
    "load_project",
    "format_human",
    "format_json",
    "format_sarif",
    "add_arguments",
    "run_from_args",
    "main",
]
