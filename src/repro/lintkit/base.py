"""Rule base class, registry, and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple, Type

from repro.lintkit.context import FileContext, Project
from repro.lintkit.findings import Finding, Severity


class Rule:
    """One lint rule.

    Subclasses set the class attributes and override
    :meth:`check_file` (per-file rules) and/or :meth:`check_project`
    (cross-file rules such as the DRIFT registry diffs).  Both return
    iterables of :class:`Finding`; the engine applies suppressions.
    """

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    #: Default hint appended to findings that do not set their own.
    fix_hint: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        ctx_or_rel,
        node_or_line,
        message: str,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding for an AST node (or explicit line number)."""
        rel = ctx_or_rel.rel if isinstance(ctx_or_rel, FileContext) else str(ctx_or_rel)
        if isinstance(node_or_line, ast.AST):
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
        else:
            line, col = int(node_or_line), 0
        return Finding(
            rule=self.id,
            path=rel,
            line=line,
            col=col,
            message=message,
            severity=self.severity,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


#: id -> rule class, populated by the :func:`register` decorator.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULE_REGISTRY and RULE_REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules(only: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate every registered rule (or the requested subset)."""
    wanted = None if only is None else set(only)
    rules = []
    for rule_id in sorted(RULE_REGISTRY):
        if wanted is None or rule_id in wanted:
            rules.append(RULE_REGISTRY[rule_id]())
    if wanted is not None:
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rules: {', '.join(sorted(unknown))}")
    return rules


# ----------------------------------------------------------------------
# shared AST helpers


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for nested Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/object paths they bind.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy import random`` -> ``{"random": "numpy.random"}``;
    ``from numpy.random import default_rng as rng`` ->
    ``{"rng": "numpy.random.default_rng"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call_path(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The fully-qualified dotted path of a call target, import-aware."""
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved_head = aliases.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


def identifiers_in(node: ast.AST) -> List[str]:
    """Every Name id and Attribute attr mentioned inside ``node``."""
    out: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.append(sub.attr)
        elif isinstance(sub, ast.Call):
            called = dotted_name(sub.func)
            if called:
                out.extend(called.split("."))
    return out


def enclosing_functions(tree: ast.Module) -> List[Tuple[ast.AST, ast.AST]]:
    """(function_node, parent) pairs for every def in the module."""
    pairs: List[Tuple[ast.AST, ast.AST]] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                pairs.append((child, node))
            visit(child)

    visit(tree)
    return pairs
