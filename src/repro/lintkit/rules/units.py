"""UNIT001–UNIT003: dimensional-consistency rules.

The codebase encodes physical units in name suffixes — ``now_s``,
``migration_cost_us``, ``cxl_latency_ns``, ``copy_gbps``,
``window_bytes``, ``ddr_pages`` — and the performance model's
correctness (§4 profiling accuracy, the 54 µs/page migration charge)
depends on never adding microseconds to seconds.  These rules infer a
unit for every suffixed name and flag arithmetic that mixes units
without an explicit conversion.

Multiplication and division are treated as conversions (they
legitimately change dimension: ``dur_wall_s * 1e6`` is microseconds),
so only addition, subtraction, comparison, same-suffix assignment,
and keyword passing are checked.  That keeps the rule conservative:
a finding always means two *unconverted* quantities met.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lintkit.base import Rule, register
from repro.lintkit.context import FileContext
from repro.lintkit.findings import Finding

#: Recognised unit suffixes, longest-match-first so ``_us`` is not
#: mistaken for ``_s`` and ``_ns`` is not mistaken for ``_s``.
UNIT_SUFFIXES = (
    "_bytes", "_epochs", "_pages", "_gbps", "_ghz", "_us", "_ns",
    "_ms", "_gb", "_mw", "_s",
)

#: Calls that preserve their arguments' unit (element selection or
#: lossless numeric coercion, not conversion).
_UNIT_PRESERVING_CALLS = {
    "max", "min", "abs", "float", "int", "round", "sum",
    "np.maximum", "np.minimum", "np.abs", "np.sum", "max.reduce",
}


def unit_of_name(name: str) -> Optional[str]:
    """The unit suffix carried by an identifier, if any."""
    for suffix in UNIT_SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return suffix[1:]
    return None


def _base_identifier(node: ast.expr) -> Optional[str]:
    """The identifier whose suffix labels the value of ``node``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _base_identifier(node.value)
    if isinstance(node, ast.Starred):
        return _base_identifier(node.value)
    return None


def infer_unit(node: ast.expr) -> Optional[str]:
    """Infer a unit for an expression, or ``None`` when unknown.

    ``None`` means "no opinion" — anything flowing through a
    multiplication, division, unrecognised call, or unsuffixed name
    is unconstrained, so the rules stay quiet about it.
    """
    ident = _base_identifier(node)
    if ident is not None:
        return unit_of_name(ident)
    if isinstance(node, ast.UnaryOp):
        return infer_unit(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left, right = infer_unit(node.left), infer_unit(node.right)
            if left is not None and right is not None:
                # Mismatches are reported where they happen (UNIT001);
                # propagating either side would double-report upward.
                return left if left == right else None
            return left if left is not None else right
        return None  # Mult/Div/Mod/Pow change dimension: conversion
    if isinstance(node, ast.IfExp):
        body, orelse = infer_unit(node.body), infer_unit(node.orelse)
        if body is not None and orelse is not None:
            return body if body == orelse else None
        return body if body is not None else orelse
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in _UNIT_PRESERVING_CALLS:
            units = {u for u in (infer_unit(a) for a in node.args) if u}
            if len(units) == 1:
                return units.pop()
        return None
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute) and isinstance(
        node.func.value, ast.Name
    ):
        return f"{node.func.value.id}.{node.func.attr}"
    return None


def _describe(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


@register
class MixedUnitArithmetic(Rule):
    """UNIT001: addition/subtraction/comparison across unit suffixes.

    ``x_us + y_s`` is a dimensional error unless one side passed
    through an explicit conversion (``* 1e6``, ``/ US_PER_S``, …) —
    conversions make the unit unknown and silence the rule.
    """

    id = "UNIT001"
    title = "arithmetic mixes unit suffixes"
    fix_hint = (
        "convert one operand explicitly (multiply/divide by a "
        "conversion constant) so both sides share a suffix"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left, right = infer_unit(node.left), infer_unit(node.right)
                if left is not None and right is not None and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    yield self.finding(
                        ctx, node,
                        f"`{_describe(node.left)} {op} {_describe(node.right)}` "
                        f"mixes `{left}` and `{right}` without conversion",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                target = infer_unit(node.target)
                value = infer_unit(node.value)
                if target is not None and value is not None and target != value:
                    yield self.finding(
                        ctx, node,
                        f"augmented assignment accumulates `{value}` into "
                        f"`{_describe(node.target)}` (unit `{target}`)",
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                units = [infer_unit(o) for o in operands]
                for (a, ua), (b, ub) in zip(
                    zip(operands, units), zip(operands[1:], units[1:])
                ):
                    if ua is not None and ub is not None and ua != ub:
                        yield self.finding(
                            ctx, node,
                            f"comparison of `{_describe(a)}` (`{ua}`) with "
                            f"`{_describe(b)}` (`{ub}`)",
                        )


@register
class UnitAssignmentMismatch(Rule):
    """UNIT002: assigning a value with one unit to a name suffixed
    with another, with no conversion in between."""

    id = "UNIT002"
    title = "assignment target suffix disagrees with value unit"
    fix_hint = (
        "rename the target to match the value's unit, or insert the "
        "explicit conversion"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                pairs = [(t, node.value) for t in node.targets]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                pairs = [(node.target, node.value)]
            else:
                continue
            for target, value in pairs:
                ident = _base_identifier(target)
                if ident is None:
                    continue
                target_unit = unit_of_name(ident)
                value_unit = infer_unit(value)
                if (
                    target_unit is not None
                    and value_unit is not None
                    and target_unit != value_unit
                ):
                    yield self.finding(
                        ctx, node,
                        f"`{ident}` (unit `{target_unit}`) assigned a value "
                        f"in `{value_unit}`: `{_describe(value)}`",
                    )


@register
class UnitKeywordMismatch(Rule):
    """UNIT003: passing a value with one unit to a keyword argument
    suffixed with another (``f(timeout_s=x_us)``)."""

    id = "UNIT003"
    title = "keyword argument suffix disagrees with value unit"
    fix_hint = "convert the value to the unit the parameter name declares"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                kw_unit = unit_of_name(kw.arg)
                value_unit = infer_unit(kw.value)
                if (
                    kw_unit is not None
                    and value_unit is not None
                    and kw_unit != value_unit
                ):
                    yield self.finding(
                        ctx, kw.value,
                        f"keyword `{kw.arg}` (unit `{kw_unit}`) receives "
                        f"`{_describe(kw.value)}` (unit `{value_unit}`)",
                    )
