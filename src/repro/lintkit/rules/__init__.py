"""Rule modules — importing this package registers every rule."""

from repro.lintkit.rules import (  # noqa: F401
    determinism,
    drift,
    dtype,
    perf,
    units,
)
