"""Rule modules — importing this package registers every rule."""

from repro.lintkit.rules import (  # noqa: F401
    concurrency,
    crashsafe,
    determinism,
    drift,
    dtype,
    perf,
    pickle_safety,
    units,
)
