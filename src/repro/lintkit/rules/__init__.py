"""Rule modules — importing this package registers every rule."""

from repro.lintkit.rules import determinism, drift, dtype, units  # noqa: F401
