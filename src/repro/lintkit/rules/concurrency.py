"""CONC rules — lock discipline and thread hygiene.

These are project-scope rules built on :mod:`repro.lintkit.model`:
they need to know *all* writes to an attribute across a class, which
calls can transitively block, and which classes launch threads.

* **CONC001** — torn shared-state writes.  Two modes: in a class that
  owns a lock, an attribute written both under ``with self._lock:``
  and outside it is flagged at the unlocked write; in a *lock-free*
  class that launches a thread, every in-place mutation of shared
  state (``+=``, ``self.d[k] = …``, ``.append``) outside ``__init__``
  must carry a ``# lint: torn-safe`` annotation declaring the design
  (single-word writes, monotone counters).  Plain rebinds are exempt:
  rebinding one reference is atomic under the GIL.
* **CONC002** — blocking while holding a lock: a call at lock depth
  > 0 that blocks directly (``time.sleep``, write-``open``, socket /
  subprocess primitives, ``.join()``/``.acquire()`` on a
  concurrency-named receiver) or reaches a blocking primitive through
  project calls; the finding carries the call chain.
* **CONC003** — ``threading.Thread`` without lifecycle discipline:
  neither ``daemon=`` at construction nor a ``join()`` on the stored
  handle anywhere in the owning class (or the same function, for
  locals).
* **CONC004** — a ``# lint: torn-safe`` annotation that exempted
  nothing is itself flagged, exactly like a stale suppression, so the
  declared lock-free surface shrinks with the code.  Runs after
  CONC001 (rules run in sorted-id order), which marks annotations
  used.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from repro.lintkit.base import Rule, register
from repro.lintkit.context import Project
from repro.lintkit.findings import Finding, Severity
from repro.lintkit.model import get_model


@register
class TornWriteRule(Rule):
    id = "CONC001"
    title = "shared attribute written without consistent locking"
    severity = Severity.ERROR
    fix_hint = (
        "hold the lock for every write, or annotate the deliberate "
        "lock-free write with `# lint: torn-safe -- <why>`"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = get_model(project)
        for cls in model.classes.values():
            if cls.lock_attrs:
                yield from self._check_locked_class(cls)
            elif cls.launches_thread:
                yield from self._check_lockfree_threaded_class(cls)

    def _check_locked_class(self, cls) -> Iterable[Finding]:
        writes: Dict[str, List] = {}
        for method in cls.methods.values():
            for write in method.attr_writes:
                if write.attr in cls.lock_attrs:
                    continue
                writes.setdefault(write.attr, []).append(write)
        for attr, attr_writes in sorted(writes.items()):
            locked = [w for w in attr_writes if w.lock_depth > 0]
            unlocked = [
                w for w in attr_writes
                if w.lock_depth == 0 and w.function.name != "__init__"
            ]
            if not locked or not unlocked:
                continue
            for write in unlocked:
                if cls.ctx.torn_safe.consume(write.node.lineno):
                    continue
                lock = sorted(cls.lock_attrs)[0]
                yield self.finding(
                    cls.ctx,
                    write.node,
                    f"`self.{attr}` is written under `with self.{lock}:` in "
                    f"{_locked_methods(locked)} but without it in "
                    f"`{write.function.name}`",
                )

    def _check_lockfree_threaded_class(self, cls) -> Iterable[Finding]:
        for method in cls.methods.values():
            if method.name == "__init__":
                continue
            for write in method.attr_writes:
                if write.kind != "mutate":
                    continue
                if cls.ctx.torn_safe.consume(write.node.lineno):
                    continue
                yield self.finding(
                    cls.ctx,
                    write.node,
                    f"`{cls.name}` launches a thread but mutates "
                    f"`self.{write.attr}` in `{method.name}` with no lock; "
                    "declare the lock-free design with `# lint: torn-safe` "
                    "or add a lock",
                )


def _locked_methods(locked_writes) -> str:
    names = sorted({w.function.name for w in locked_writes})
    return ", ".join(f"`{n}`" for n in names)


@register
class BlockingUnderLockRule(Rule):
    id = "CONC002"
    title = "blocking call while holding a lock"
    severity = Severity.WARNING
    fix_hint = (
        "move the blocking operation outside the lock region; hold "
        "locks only around the in-memory state transition"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = get_model(project)
        for info in model.functions.values():
            direct = set(id(site.node) for site in info.blocking_sites)
            for site in info.calls:
                if site.lock_depth == 0:
                    continue
                if id(site.node) in direct:
                    label = site.external or (
                        f"{site.receiver}.{site.method}()"
                        if site.receiver and site.method
                        else "blocking call"
                    )
                    yield self.finding(
                        info.ctx,
                        site.node,
                        f"`{info.name}` calls blocking `{label}` while "
                        "holding a lock",
                    )
                    continue
                for callee in site.candidates:
                    reason = model.queries.blocking_reason(callee)
                    if reason is not None:
                        yield self.finding(
                            info.ctx,
                            site.node,
                            f"`{info.name}` holds a lock across a call that "
                            f"may block: {_leaf(callee)} → {reason}",
                        )
                        break


def _leaf(qualname: str) -> str:
    parts = qualname.rsplit(".", 2)
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


@register
class ThreadLifecycleRule(Rule):
    id = "CONC003"
    title = "thread launched without daemon= or join()"
    severity = Severity.WARNING
    fix_hint = (
        "pass daemon=True for a background thread, or keep the handle "
        "and join() it on shutdown"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = get_model(project)
        for info in model.functions.values():
            for create in info.thread_creates:
                if create.has_daemon:
                    continue
                if self._is_joined(model, info, create.assigned_to):
                    continue
                target = create.assigned_to or "<unbound>"
                yield self.finding(
                    info.ctx,
                    create.node,
                    f"`threading.Thread` stored in `{target}` is created "
                    "without `daemon=` and never `join()`ed",
                )

    @staticmethod
    def _is_joined(model, info, assigned_to) -> bool:
        if assigned_to is None:
            return False
        if assigned_to.startswith("self.") and info.owner is not None:
            search: Iterable = (
                m for m in info.owner.methods.values()
            )
        else:
            search = (info,)
        for func in search:
            for site in func.calls:
                if site.method == "join" and site.receiver == assigned_to:
                    return True
        return False


@register
class StaleTornSafeRule(Rule):
    id = "CONC004"
    title = "torn-safe annotation exempted nothing"
    severity = Severity.WARNING
    fix_hint = (
        "delete the stale `# lint: torn-safe` comment — the write it "
        "covered is gone or now locked"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        # CONC001 (sorted before this rule) has already consumed every
        # annotation that exempts a real write.
        for ctx in project.files:
            for entry in ctx.torn_safe.unused():
                yield self.finding(
                    ctx,
                    entry.comment_line,
                    "torn-safe annotation on line "
                    f"{entry.target_line} exempts no lock-free write",
                )
