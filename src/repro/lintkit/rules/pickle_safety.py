"""PICKLE rules — checkpoint envelope integrity.

``Simulation.save_state`` and the service checkpoint pickle whole
object graphs.  Pickle fails (or worse, round-trips uselessly) on OS
resources — open files, threads, locks, sockets — and on lambdas.
These rules walk the *pickle-reachable* class set: the classes the
model's reachability query reaches from every ``pickle.dump`` payload
in the tree, following attribute→class edges with subclass closure.
Classes defining ``__getstate__``/``__reduce__`` rewrite their own
payload and are exempt (and not traversed).

* **PICKLE001** (error) — a pickle-reachable class stores an OS
  resource or a generator on an attribute.  The finding carries the
  provenance chain (``Simulation.save_state → Simulation.telemetry →
  TelemetryBus.sinks``) so the fix site is obvious.
* **PICKLE002** (error) — a lambda assigned to an attribute whose
  name lives on a pickle-reachable class (``tracer.sim_clock =
  lambda: …``).  The run works until the first checkpoint, which
  dies with ``Can't pickle <lambda>``; use a small module-level class
  with ``__call__`` instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set, Tuple

from repro.lintkit.base import Rule, dotted_name, register
from repro.lintkit.context import Project
from repro.lintkit.findings import Finding, Severity
from repro.lintkit.model import get_model

#: Constructor dotted paths whose result cannot be pickled, with the
#: human name used in findings.
RESOURCE_CONSTRUCTORS = {
    "open": "an open file handle",
    "io.open": "an open file handle",
    "gzip.open": "an open file handle",
    "bz2.open": "an open file handle",
    "lzma.open": "an open file handle",
    "tempfile.NamedTemporaryFile": "an open temp file",
    "tempfile.TemporaryFile": "an open temp file",
    "socket.socket": "a socket",
    "socket.create_connection": "a socket",
    "threading.Thread": "a thread handle",
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "an event",
    "threading.Semaphore": "a semaphore",
    "subprocess.Popen": "a subprocess handle",
}


def _reachable(model) -> Dict[str, str]:
    """{class qualname: provenance} for the pickle-reachable set."""
    roots = model.queries.pickle_roots()
    return model.queries.reachable_classes(roots)


@register
class ResourceInEnvelopeRule(Rule):
    id = "PICKLE001"
    title = "pickle-reachable class stores an OS resource"
    severity = Severity.ERROR
    fix_hint = (
        "drop the resource in `__getstate__` and reacquire it in "
        "`__setstate__`, or keep it off the checkpointed object"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = get_model(project)
        for qualname, provenance in sorted(_reachable(model).items()):
            cls = model.classes.get(qualname)
            if cls is None or cls.custom_pickle:
                continue
            for method in cls.methods.values():
                for write in method.attr_writes:
                    if write.kind != "rebind" or write.value is None:
                        continue
                    label = self._resource_label(cls, write.value)
                    if label is None:
                        continue
                    yield self.finding(
                        cls.ctx,
                        write.node,
                        f"`{cls.name}.{write.attr}` holds {label}, but "
                        f"`{cls.name}` is inside the checkpoint pickle "
                        f"({provenance})",
                    )

    @staticmethod
    def _resource_label(cls, value: ast.expr):
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is not None:
                resolved = cls.module.resolve_alias(dotted)
                return RESOURCE_CONSTRUCTORS.get(resolved)
        return None


@register
class LambdaOnAttributeRule(Rule):
    id = "PICKLE002"
    title = "lambda assigned to a checkpointed attribute"
    severity = Severity.ERROR
    fix_hint = (
        "replace the lambda with a module-level class defining "
        "__call__ (picklable and testable)"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = get_model(project)
        reachable = _reachable(model)
        attr_owners = self._reachable_attr_names(model, reachable)
        for info in model.functions.values():
            for node in ast.walk(info.node):
                if not (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Lambda)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                ):
                    continue
                attr = node.targets[0].attr
                owner = attr_owners.get(attr)
                if owner is None:
                    continue
                cls_name, provenance = owner
                target = dotted_name(node.targets[0]) or attr
                yield self.finding(
                    info.ctx,
                    node,
                    f"lambda assigned to `{target}`; attribute `{attr}` "
                    f"lives on pickle-reachable `{cls_name}` "
                    f"({provenance}), and lambdas cannot be pickled",
                )

    @staticmethod
    def _reachable_attr_names(
        model, reachable: Dict[str, str]
    ) -> Dict[str, Tuple[str, str]]:
        """attr name -> (class name, provenance) over reachable
        classes without custom pickling."""
        owners: Dict[str, Tuple[str, str]] = {}
        for qualname, provenance in sorted(reachable.items()):
            cls = model.classes.get(qualname)
            if cls is None or cls.custom_pickle:
                continue
            names: Set[str] = set()
            for method in cls.methods.values():
                for write in method.attr_writes:
                    names.add(write.attr)
            for stmt in cls.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    names.add(stmt.target.id)
            for name in names:
                owners.setdefault(name, (cls.name, provenance))
        return owners
