"""PERF001: per-element Python iteration over ndarrays in hot layers.

The epoch hot path (``sim/``, ``cxl/``, ``memory/``, ``core/``) flows
each chunk through vectorized array kernels; a ``for`` loop over
``arr.tolist()`` in those layers reintroduces a per-access Python loop
— the exact pattern the batched engine exists to remove, and the kind
of regression a profile will find months later.

The rule flags any ``for`` statement or comprehension whose iterable
contains an ``… .tolist()`` call, in the hot layers only.  The
sanctioned escape is the differential-oracle convention: functions
whose name ends in ``_reference`` *are* the per-access semantics the
batched kernels are verified against (``repro verify --oracles
kernels``), so loops inside them are exempt.  Anything else either
gets vectorized or carries an explicit ``# lint: disable=PERF001``
with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lintkit.base import Rule, register
from repro.lintkit.context import FileContext
from repro.lintkit.findings import Finding

#: Layers whose loops are the epoch hot path.
HOT_LAYERS = ("sim", "cxl", "memory", "core")

#: Enclosing-function suffix marking a sanctioned reference kernel.
REFERENCE_SUFFIX = "_reference"


def _iter_has_tolist(node: ast.expr) -> Optional[ast.Call]:
    """The first ``X.tolist()`` call inside an iterable expression."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "tolist"
        ):
            return sub
    return None


@register
class TolistIteration(Rule):
    """PERF001: ``for`` over ``.tolist()`` in a hot layer outside a
    ``*_reference`` kernel."""

    id = "PERF001"
    title = "per-element iteration over an ndarray in a hot layer"
    fix_hint = (
        "vectorize the loop (np.unique/bincount/isin/fancy indexing), "
        "move it into a `*_reference` differential-oracle kernel, or "
        "justify it with `# lint: disable=PERF001`"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or not ctx.in_layer(*HOT_LAYERS):
            return
        yield from self._visit(ctx, ctx.tree, exempt=False)

    def _visit(
        self, ctx: FileContext, node: ast.AST, exempt: bool
    ) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            child_exempt = exempt
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_exempt = exempt or child.name.endswith(REFERENCE_SUFFIX)
            iters = []
            if isinstance(child, (ast.For, ast.AsyncFor)):
                iters = [child.iter]
            elif isinstance(
                child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters = [gen.iter for gen in child.generators]
            if not child_exempt:
                for it in iters:
                    call = _iter_has_tolist(it)
                    if call is not None:
                        yield self.finding(
                            ctx, child,
                            "loop iterates an ndarray element-by-element via "
                            "`.tolist()` in a hot layer; this is the "
                            "per-access pattern the batched engine removes",
                        )
                        break
            yield from self._visit(ctx, child, child_exempt)
