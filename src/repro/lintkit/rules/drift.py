"""DRIFT001–DRIFT003: registry drift rules.

Three name spaces in this codebase are easy to let rot: the
``SimConfig`` knobs vs the CLI flags that expose them, the telemetry
event names the pipeline publishes, and the metric families the
instruments register.  Each has a checked-in registry under
``docs/registries/``; these rules diff source against registry *in
both directions*, so adding a knob/event/metric without documenting
it — or documenting one that no longer exists — fails the lint run.

Registry workflow: ``tools/run_lint.py --update-registries``
regenerates the two extraction-based registries (telemetry events,
metric families) from source, preserving existing descriptions;
``config_cli.json`` is maintained by hand because the flag-or-exempt
decision is a design choice, not an extraction.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lintkit.base import Rule, register
from repro.lintkit.context import FileContext, Project
from repro.lintkit.findings import Finding

CONFIG_REGISTRY = "config_cli.json"
EVENTS_REGISTRY = "telemetry_events.json"
METRICS_REGISTRY = "metric_families.json"

_CONFIG_MODULE = "repro/sim/config.py"
_CLI_MODULE = "repro/cli.py"


def _load_registry(project: Project, name: str) -> Optional[dict]:
    path = project.registry_path(name)
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def _registry_rel(project: Project, name: str) -> str:
    return f"docs/registries/{name}"


def dataclass_fields(ctx: FileContext, class_name: str) -> Dict[str, int]:
    """``class_name`` dataclass field names -> line numbers."""
    fields: Dict[str, int] = {}
    if ctx.tree is None:
        return fields
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not stmt.target.id.startswith("_")
                ):
                    fields[stmt.target.id] = stmt.lineno
    return fields


def simconfig_fields(ctx: FileContext) -> Dict[str, int]:
    """SimConfig dataclass field names -> line numbers."""
    return dataclass_fields(ctx, "SimConfig")


def cli_flags(ctx: FileContext) -> Set[str]:
    """Every ``--flag`` string literal passed to ``add_argument``."""
    flags: Set[str] = set()
    if ctx.tree is None:
        return flags
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    flags.add(arg.value)
    return flags


def extract_events(files: Iterable[FileContext]) -> Dict[str, List[Tuple[str, int]]]:
    """Literal first arguments of ``*.publish(...)`` calls, by name."""
    return _extract_string_calls(files, {"publish"})


def extract_metric_families(
    files: Iterable[FileContext],
) -> Dict[str, List[Tuple[str, int]]]:
    """Literal first arguments of instrument registrations, by name."""
    return _extract_string_calls(files, {"counter", "gauge", "histogram"})


def _extract_string_calls(
    files: Iterable[FileContext], methods: Set[str]
) -> Dict[str, List[Tuple[str, int]]]:
    out: Dict[str, List[Tuple[str, int]]] = {}
    for ctx in files:
        if ctx.tree is None or "repro/lintkit/" in ctx.rel:
            continue
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in methods
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                out.setdefault(node.args[0].value, []).append(
                    (ctx.rel, node.lineno)
                )
    return out


@register
class ConfigCliDrift(Rule):
    """DRIFT001: ``SimConfig`` fields vs CLI flags vs the registry.

    Every field needs either a ``--flag`` (which must exist in
    ``cli.py``) or an ``exempt`` reason in ``config_cli.json``; every
    registry entry must still name a real field.
    """

    id = "DRIFT001"
    title = "SimConfig/CLI/registry drift"
    fix_hint = (
        "add the field to docs/registries/config_cli.json with its CLI "
        "flag, or record an `exempt` reason there"
    )

    #: Checked config dataclasses -> their registry section.  A class
    #: absent from the tree is skipped (fixture trees predating it).
    CONFIG_CLASSES = (
        ("SimConfig", "fields"),
        ("FleetConfig", "fleet_fields"),
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        config = project.file_ending_with(_CONFIG_MODULE)
        cli = project.file_ending_with(_CLI_MODULE)
        if config is None:
            return  # partial tree: nothing to diff
        registry = _load_registry(project, CONFIG_REGISTRY)
        reg_rel = _registry_rel(project, CONFIG_REGISTRY)
        if registry is None:
            yield self.finding(
                reg_rel, 1,
                f"registry file {CONFIG_REGISTRY} is missing",
                fix_hint="create it; see docs/static_analysis.md",
            )
            return
        flags = cli_flags(cli) if cli is not None else None
        for class_name, section in self.CONFIG_CLASSES:
            fields = dataclass_fields(config, class_name)
            if not fields:
                continue  # class absent from this tree: nothing to diff
            yield from self._diff_class(
                config, reg_rel, class_name,
                registry.get(section, {}), fields, flags,
            )

    def _diff_class(
        self,
        config: FileContext,
        reg_rel: str,
        class_name: str,
        entries: Dict[str, dict],
        fields: Dict[str, int],
        flags: Optional[Set[str]],
    ) -> Iterable[Finding]:
        for name, line in fields.items():
            entry = entries.get(name)
            if entry is None:
                yield self.finding(
                    config, line,
                    f"{class_name}.{name} has no entry in {CONFIG_REGISTRY} "
                    "(flag or exemption required)",
                )
                continue
            has_flag = "flag" in entry
            has_exempt = "exempt" in entry
            if has_flag == has_exempt:
                yield self.finding(
                    reg_rel, 1,
                    f"registry entry `{name}` must have exactly one of "
                    "`flag` / `exempt`",
                )
            elif has_flag and flags is not None and entry["flag"] not in flags:
                yield self.finding(
                    reg_rel, 1,
                    f"registry maps {class_name}.{name} to `{entry['flag']}` "
                    "but cli.py defines no such flag",
                    fix_hint="add the add_argument, or switch the entry to "
                    "an `exempt` reason",
                )
        for name in entries:
            if name not in fields:
                yield self.finding(
                    reg_rel, 1,
                    f"registry lists `{name}` but {class_name} has no such "
                    "field",
                    fix_hint="delete the stale registry entry",
                )


class _ExtractionDrift(Rule):
    """Shared two-way diff for the extraction-based registries."""

    registry_file = ""
    registry_key = ""
    thing = ""

    def _extract(self, files: Iterable[FileContext]) -> Dict[str, List[Tuple[str, int]]]:
        raise NotImplementedError

    def check_project(self, project: Project) -> Iterable[Finding]:
        emitted = self._extract(project.files)
        if not emitted and project.file_ending_with(_CONFIG_MODULE) is None:
            return  # fixture trees without the subsystem: stay quiet
        registry = _load_registry(project, self.registry_file)
        reg_rel = _registry_rel(project, self.registry_file)
        if registry is None:
            yield self.finding(
                reg_rel, 1,
                f"registry file {self.registry_file} is missing",
                fix_hint="run tools/run_lint.py --update-registries",
            )
            return
        documented = set(registry.get(self.registry_key, {}))
        for name, sites in sorted(emitted.items()):
            if name not in documented:
                rel, line = sites[0]
                yield self.finding(
                    rel, line,
                    f"{self.thing} `{name}` is emitted here but missing from "
                    f"{self.registry_file}",
                    fix_hint="run tools/run_lint.py --update-registries and "
                    "fill in the description",
                )
        # The reverse diff (documented-but-not-emitted) only makes
        # sense for a full-tree scan; use the presence of the config
        # module as the full-tree proxy so subtree lints stay quiet.
        if project.file_ending_with(_CONFIG_MODULE) is not None:
            for name in sorted(documented - set(emitted)):
                yield self.finding(
                    reg_rel, 1,
                    f"{self.thing} `{name}` is documented in "
                    f"{self.registry_file} but no longer emitted by source",
                    fix_hint="delete the stale entry (or restore the emitter)",
                )


@register
class TelemetryEventDrift(_ExtractionDrift):
    """DRIFT002: telemetry event names vs ``telemetry_events.json``."""

    id = "DRIFT002"
    title = "telemetry event registry drift"
    registry_file = EVENTS_REGISTRY
    registry_key = "events"
    thing = "telemetry event"

    def _extract(self, files):
        return extract_events(files)


@register
class MetricFamilyDrift(_ExtractionDrift):
    """DRIFT003: metric family names vs ``metric_families.json``."""

    id = "DRIFT003"
    title = "metric family registry drift"
    registry_file = METRICS_REGISTRY
    registry_key = "families"
    thing = "metric family"

    def _extract(self, files):
        return extract_metric_families(files)


def update_registries(project: Project) -> List[str]:
    """Regenerate the extraction-based registries from source.

    Existing descriptions are preserved; new names get a ``TODO``
    placeholder the maintainer fills in.  Returns the files written.
    """
    written: List[str] = []
    for registry_file, key, extract in (
        (EVENTS_REGISTRY, "events", extract_events),
        (METRICS_REGISTRY, "families", extract_metric_families),
    ):
        emitted = extract(project.files)
        existing = _load_registry(project, registry_file) or {}
        old = existing.get(key, {})
        entries = {
            name: old.get(name, "TODO: describe")
            for name in sorted(emitted)
        }
        path = project.registry_path(registry_file)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump({key: entries}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(path)
    return written
