"""CRASH rules — crash-safe persistence protocols.

The service checkpoint/resume layer survives SIGKILL because every
durable artifact follows one protocol: write to a temp path in the
same directory, flush + ``os.fsync``, then ``os.replace`` onto the
final name — and the manifest (the commit record naming the other
artifacts) is replaced *last*.  These rules encode that protocol over
the project model's durable-write/replace summaries, so deleting any
step of it anywhere in the tree is caught statically.

A write is *checkpoint-scoped* when its path tokens or its enclosing
function's name mention ``checkpoint``/``ckpt``/``manifest``/
``save_state``; the rules stay silent elsewhere (scratch outputs,
plots, logs have no atomicity contract).

* **CRASH001** (error) — a checkpoint-scoped write that lands
  directly on the final path (no temp token), or a temp write in a
  function that never ``os.replace``s anything: a crash mid-write
  leaves a torn artifact (or never publishes one).
* **CRASH002** (error) — manifest-last ordering: in a function that
  publishes several artifacts, the ``os.replace`` whose destination
  is the manifest must be the final one, else a crash between
  replaces leaves a manifest naming artifacts that don't exist yet.
* **CRASH003** (note, advisory — never gates the exit code) — a
  checkpoint-scoped function publishes via ``os.replace`` but neither
  it nor anything it calls runs ``os.fsync``: rename durability
  without data durability, so power loss can publish an empty file.
* **CRASH004** (warning) — handle hygiene around raising calls: a
  handle from bare ``open()`` that is still unclosed when the
  function calls a project function that raises (outside any
  ``try``), and ``open()`` passed inline as a call argument with
  nothing owning the handle at all.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.lintkit.base import Rule, dotted_name, register
from repro.lintkit.context import Project
from repro.lintkit.findings import Finding, Severity
from repro.lintkit.model import get_model

#: Substrings marking a path/function as checkpoint-scoped.
CHECKPOINT_MARKERS = ("checkpoint", "ckpt", "manifest", "save_state")

#: Substrings marking a path expression as a temp path.
TMP_MARKERS = ("tmp", "temp", "partial")


def _checkpoint_scoped(info, tokens: Set[str]) -> bool:
    bag = sorted(tokens | {info.name.lower()})
    return any(marker in token for token in bag for marker in CHECKPOINT_MARKERS)


def _tmpish(tokens: Set[str]) -> bool:
    return any(marker in token for token in sorted(tokens) for marker in TMP_MARKERS)


@register
class AtomicPublishRule(Rule):
    id = "CRASH001"
    title = "checkpoint artifact written without tmp + os.replace"
    severity = Severity.ERROR
    fix_hint = (
        "write to `<final>.tmp` in the same directory, fsync, then "
        "`os.replace(tmp, final)` — readers then see old-or-new, "
        "never torn"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = get_model(project)
        for info in model.functions.values():
            for write in info.durable_writes:
                if not _checkpoint_scoped(info, write.path_tokens):
                    continue
                if not _tmpish(write.path_tokens):
                    yield self.finding(
                        info.ctx,
                        write.node,
                        f"`{info.name}` writes a checkpoint artifact "
                        "directly to its final path; a crash mid-write "
                        "leaves a torn file",
                    )
                elif not info.replaces:
                    yield self.finding(
                        info.ctx,
                        write.node,
                        f"`{info.name}` writes a checkpoint temp file but "
                        "never publishes it with `os.replace`",
                    )


@register
class ManifestLastRule(Rule):
    id = "CRASH002"
    title = "manifest replaced before its artifacts"
    severity = Severity.ERROR
    fix_hint = (
        "publish data artifacts first and `os.replace` the manifest "
        "last — the manifest is the commit record"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = get_model(project)
        for info in model.functions.values():
            if len(info.replaces) < 2:
                continue
            manifest_lines = [
                r.node.lineno
                for r in info.replaces
                if any("manifest" in t for t in r.dst_tokens)
            ]
            if not manifest_lines:
                continue
            first_manifest = min(manifest_lines)
            for replace in info.replaces:
                if any("manifest" in t for t in replace.dst_tokens):
                    continue
                if replace.node.lineno > first_manifest:
                    yield self.finding(
                        info.ctx,
                        replace.node,
                        f"`{info.name}` publishes an artifact *after* the "
                        "manifest replace on line "
                        f"{first_manifest}; a crash in between commits a "
                        "manifest naming files that do not exist",
                    )


@register
class FsyncBeforeReplaceRule(Rule):
    id = "CRASH003"
    title = "os.replace without fsync (advisory)"
    severity = Severity.NOTE
    fix_hint = (
        "`fh.flush(); os.fsync(fh.fileno())` before `os.replace` — "
        "rename durability does not imply data durability"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = get_model(project)
        for info in model.functions.values():
            if not info.replaces:
                continue
            tokens: Set[str] = set()
            for write in info.durable_writes:
                tokens |= write.path_tokens
            for replace in info.replaces:
                tokens |= replace.src_tokens | replace.dst_tokens
            if not _checkpoint_scoped(info, tokens):
                continue
            if model.queries.calls_fsync(info.qualname):
                continue
            yield self.finding(
                info.ctx,
                info.replaces[0].node,
                f"`{info.name}` publishes with `os.replace` but never "
                "reaches `os.fsync`; power loss can publish an empty file",
            )


@register
class HandleHygieneRule(Rule):
    id = "CRASH004"
    title = "open() handle leaks on an error path"
    severity = Severity.WARNING
    fix_hint = (
        "use `with open(...)`, or close the handle in a "
        "`try/except: close(); raise` around the code that can raise"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = get_model(project)
        for info in model.functions.values():
            yield from self._check_function(model, info)

    def _check_function(self, model, info) -> Iterable[Finding]:
        opens = self._bare_opens(info)
        if opens:
            guarded = _guarded_lines(info.node)
            raising = [
                site
                for site in info.calls
                if site.node.lineno not in guarded
                and any(
                    model.functions[c].raises_directly
                    for c in site.candidates
                    if c in model.functions
                )
            ]
            for open_line, target in opens:
                for site in raising:
                    if site.node.lineno > open_line:
                        callee = site.candidates[0].rsplit(".", 1)[-1]
                        yield self.finding(
                            info.ctx,
                            open_line,
                            f"`{info.name}` opens `{target}` and then calls "
                            f"`{callee}` which can raise, outside any "
                            "`try` — the handle leaks on that path",
                        )
                        break
        # open() passed inline as an argument: nothing owns the handle.
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            for arg in list(node.args) + [k.value for k in node.keywords]:
                if (
                    isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Name)
                    and arg.func.id == "open"
                ):
                    outer = dotted_name(node.func) or "a call"
                    yield self.finding(
                        info.ctx,
                        arg,
                        f"`open()` passed inline to `{outer}` — no name "
                        "owns the handle, so it is never closed "
                        "deterministically",
                    )

    @staticmethod
    def _bare_opens(info) -> List[Tuple[int, str]]:
        """(line, target) for ``x = open(...)`` outside a ``with``
        (plain and annotated assignments)."""
        out: List[Tuple[int, str]] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                value, target_node = node.value, node.targets[0]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, target_node = node.value, node.target
            else:
                continue
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "open"
            ):
                target = dotted_name(target_node) or "<handle>"
                out.append((node.lineno, target))
        return out


def _guarded_lines(func_node: ast.AST) -> Set[int]:
    """Lines inside a ``try`` that has handlers or a ``finally``."""
    lines: Set[int] = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Try) and (node.handlers or node.finalbody):
            for stmt in node.body:
                end = getattr(stmt, "end_lineno", None) or stmt.lineno
                lines.update(range(stmt.lineno, end + 1))
    return lines
