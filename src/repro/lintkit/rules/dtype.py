"""DTYPE001: numpy integer-counter saturation safety in ``cxl/``.

PAC and WAC model hardware L-bit SRAM counters: every accumulation
into a narrow integer array must decide what happens at the top of
the range (the paper's spill-to-64-bit-table model).  A bare ``+=``
into an ``int32``/``uint16`` array silently wraps, which diverges
from the hardware's saturate-and-spill semantics in exactly the way
a golden diff cannot localise.

The rule tracks arrays created with a narrow integer dtype (8/16/32
bits) in a ``cxl/`` module and flags accumulation into them —
``arr += …``, ``arr[i] += …``, ``np.add.at(arr, …)`` — unless the
enclosing function visibly handles the range: it mentions an
overflow/saturation/spill identifier, clips, or reduces modulo the
counter period.  64-bit arrays are exempt (they *are* the spill
target in this architecture).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from repro.lintkit.base import Rule, dotted_name, identifiers_in, register
from repro.lintkit.context import FileContext
from repro.lintkit.findings import Finding

_ARRAY_CTORS = {
    "zeros", "ones", "empty", "full", "array", "asarray", "arange",
    "zeros_like", "ones_like", "empty_like", "full_like",
}

_NARROW_INT_DTYPES = {
    "int8", "int16", "int32", "uint8", "uint16", "uint32",
    "byte", "ubyte", "short", "ushort", "intc", "uintc",
}

#: Identifier fragments that mark explicit range handling.
_SATURATION_MARKERS = ("overflow", "saturat", "spill", "clip", "minimum", "wrap")


def _dtype_is_narrow_int(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _NARROW_INT_DTYPES
    name = dotted_name(node)
    if name is None:
        return False
    return name.rpartition(".")[2] in _NARROW_INT_DTYPES


def _target_key(node: ast.expr) -> Optional[str]:
    """Normalise ``x`` / ``self.x`` / ``x[i]`` to the bound name."""
    if isinstance(node, ast.Subscript):
        return _target_key(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _function_handles_range(func: Optional[ast.AST]) -> bool:
    if func is None:
        return False
    for ident in identifiers_in(func):
        lowered = ident.lower()
        if any(marker in lowered for marker in _SATURATION_MARKERS):
            return True
    for node in ast.walk(func):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            return True
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Mod):
            return True
    return False


@register
class NarrowIntAccumulation(Rule):
    """DTYPE001: accumulation into a narrow integer array without
    visible saturation/spill handling (``cxl/`` only)."""

    id = "DTYPE001"
    title = "narrow integer counter accumulated without saturation handling"
    fix_hint = (
        "handle the range explicitly (detect overflow and spill into the "
        "64-bit table, clip, or reduce modulo the counter period), or "
        "widen the array to 64 bits"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or not ctx.in_layer("cxl"):
            return
        narrow = self._narrow_arrays(ctx.tree)
        if not narrow:
            return
        for func, accum in self._accumulations(ctx.tree):
            key = _target_key(accum)
            if key not in narrow:
                continue
            if _function_handles_range(func):
                continue
            yield self.finding(
                ctx, accum,
                f"`{key}` holds a narrow integer dtype; this accumulation "
                "has no overflow/saturation/spill handling in scope and "
                "will silently wrap",
            )

    @staticmethod
    def _narrow_arrays(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not isinstance(value, ast.Call):
                continue
            ctor = dotted_name(value.func)
            if ctor is None or ctor.rpartition(".")[2] not in _ARRAY_CTORS:
                continue
            dtype_kw = next(
                (kw.value for kw in value.keywords if kw.arg == "dtype"), None
            )
            if dtype_kw is None or not _dtype_is_narrow_int(dtype_kw):
                continue
            for target in targets:
                key = _target_key(target)
                if key is not None:
                    names.add(key)
        return names

    @staticmethod
    def _accumulations(tree: ast.Module):
        """(enclosing_function, accumulation_target) pairs."""

        def visit(node: ast.AST, func: Optional[ast.AST]):
            for child in ast.iter_child_nodes(node):
                child_func = (
                    child
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    else func
                )
                if isinstance(child, ast.AugAssign) and isinstance(
                    child.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    yield func, child.target
                elif isinstance(child, ast.Call):
                    name = dotted_name(child.func)
                    if name and name.endswith("add.at") and child.args:
                        yield func, child.args[0]
                yield from visit(child, child_func)

        yield from visit(tree, None)
