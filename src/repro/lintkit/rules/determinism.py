"""DET001–DET004: determinism rules.

The goldens (``tests/data/pipeline_goldens.json`` and the
differential goldens) pin the simulator bit-for-bit; any global-state
RNG draw, wall-clock read, or hash-order iteration on a hot path can
silently break them.  These rules make the determinism contract
machine-checked at lint time instead of discovered via golden diffs.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.lintkit.base import (
    Rule,
    identifiers_in,
    import_aliases,
    register,
    resolve_call_path,
)
from repro.lintkit.context import FileContext
from repro.lintkit.findings import Finding

#: Module-level (global-state) sampling functions of :mod:`random`.
_STDLIB_RANDOM_DRAWS = {
    "seed", "random", "randint", "randrange", "getrandbits", "choice",
    "choices", "shuffle", "sample", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
    "randbytes",
}

#: Legacy module-level (global-state) sampling functions of
#: :mod:`numpy.random` — everything that draws from the hidden
#: ``RandomState`` singleton.  Explicit ``Generator`` construction
#: (``default_rng``/``SeedSequence``/``PCG64``/…) is *not* in this
#: set; DET004 checks those are seeded properly.
_NUMPY_RANDOM_DRAWS = {
    "seed", "random", "random_sample", "ranf", "sample", "rand", "randn",
    "randint", "random_integers", "choice", "shuffle", "permutation",
    "bytes", "uniform", "normal", "standard_normal", "poisson",
    "exponential", "binomial", "beta", "gamma", "zipf", "geometric",
    "pareto", "integers",
}

#: Explicit RNG constructors whose seed argument DET004 inspects.
_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "random.Random",
}

#: Wall-clock reads DET002 rejects in simulation layers.
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Layers whose hot paths must be wall-clock free.  The observability
#: layer (``repro/obs/``) is the designated home for real-time reads.
_SIM_LAYERS = ("sim", "cxl", "core", "memory", "migration", "baselines")

#: Substring that marks an expression as seed-derived for DET004.
_SEED_MARKER = "seed"


def _normalize_numpy(path: str) -> str:
    """Fold the ``np``→``numpy`` alias difference after resolution."""
    return path.replace("np.random.", "numpy.random.", 1) if path.startswith(
        "np.random."
    ) else path


@register
class UnseededGlobalRng(Rule):
    """DET001: draw from a module-level (global-state) RNG.

    ``random.random()``, ``np.random.randint(...)`` and friends pull
    from interpreter-global state that any import or library call can
    perturb, so two runs with the same ``SimConfig.seed`` are not
    guaranteed the same trace.
    """

    id = "DET001"
    title = "module-level RNG draw (global state)"
    fix_hint = (
        "thread an explicit numpy.random.Generator (default_rng(seed)) or "
        "random.Random(seed) instance through instead"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = resolve_call_path(node, aliases)
            if path is None:
                continue
            path = _normalize_numpy(path)
            head, _, tail = path.rpartition(".")
            if head == "random" and tail in _STDLIB_RANDOM_DRAWS:
                yield self.finding(
                    ctx, node,
                    f"call to global-state RNG `random.{tail}()` — "
                    "reproducibility depends on hidden interpreter state",
                )
            elif head == "numpy.random" and tail in _NUMPY_RANDOM_DRAWS:
                yield self.finding(
                    ctx, node,
                    f"call to global-state RNG `numpy.random.{tail}()` — "
                    "draws from the hidden RandomState singleton",
                )


@register
class WallClockInSimLayer(Rule):
    """DET002: wall-clock read inside a simulation layer.

    Simulated time lives in ``EpochState.now_s``; real time belongs
    to the observability layer (``repro/obs/``).  A ``time.time()``
    or ``perf_counter()`` on a hot path couples results to host load.
    """

    id = "DET002"
    title = "wall-clock read outside the observability layer"
    fix_hint = (
        "use the simulated clock (st.now_s), or route real-time reads "
        "through repro.obs (e.g. repro.obs.tracing.wall_clock)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or not ctx.in_layer(*_SIM_LAYERS):
            return
        if ctx.in_layer("obs"):
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = resolve_call_path(node, aliases)
            if path in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read `{path}()` in simulation layer "
                    f"`{ctx.rel}` — results become host-load dependent",
                )


@register
class SetIterationOrder(Rule):
    """DET003: iteration over a set feeding ordered state.

    CPython set iteration order depends on insertion history and hash
    seeding; a ``for`` loop (or ``list()``/``tuple()``/``enumerate()``)
    over a set produces an ordering that is not a function of the
    program's inputs.  Wrap the set in ``sorted(...)`` instead.
    """

    id = "DET003"
    title = "set iteration feeds ordered state"
    fix_hint = "iterate over sorted(<set>) to pin the order"

    _MATERIALIZERS = {"list", "tuple", "enumerate"}

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        set_names = self._set_valued_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._MATERIALIZERS
                and node.args
            ):
                iters.append(node.args[0])
            for it in iters:
                if self._is_set_expr(it, set_names):
                    yield self.finding(
                        ctx, it,
                        "iterating a set in an order-sensitive position — "
                        "set order is hash/insertion dependent",
                    )

    @staticmethod
    def _set_valued_names(tree: ast.Module) -> Set[str]:
        """Names assigned a set expression anywhere in the module."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and SetIterationOrder._is_set_expr(
                node.value, set()
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) and node.id in set_names:
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "set":
                return True
            if node.func.id == "sorted":  # sorted(...) pins the order
                return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra: either operand being a set makes the result one
            return SetIterationOrder._is_set_expr(
                node.left, set_names
            ) or SetIterationOrder._is_set_expr(node.right, set_names)
        if isinstance(node, ast.Attribute) and node.attr in (
            "union", "intersection", "difference", "symmetric_difference"
        ):
            return False  # bare method reference, not a call
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("union", "intersection", "difference",
                                   "symmetric_difference")
        ):
            return SetIterationOrder._is_set_expr(node.func.value, set_names)
        return False


@register
class RngSeedNotDerived(Rule):
    """DET004: explicit RNG constructed without a seed-derived seed.

    ``default_rng()`` (OS entropy) or ``default_rng(<constant>)``
    (not a function of ``SimConfig.seed``/``cell_seed``) silently
    decouples a component from the experiment seed.  The seed
    expression must mention an identifier containing ``seed``.
    """

    id = "DET004"
    title = "RNG seed not derived from the experiment seed"
    fix_hint = (
        "derive the seed from SimConfig.seed / cell_seed (an expression "
        "mentioning `seed`), or suppress with a comment explaining why "
        "the value is structural rather than entropy"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = resolve_call_path(node, aliases)
            if path is None:
                continue
            path = _normalize_numpy(path)
            if path not in _RNG_CONSTRUCTORS:
                continue
            short = path.rpartition(".")[2]
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    f"`{short}()` with no seed draws OS entropy — the run "
                    "is unreproducible",
                )
                continue
            seed_args = list(node.args) + [kw.value for kw in node.keywords]
            mentioned = [
                ident
                for arg in seed_args
                for ident in identifiers_in(arg)
            ]
            if not any(_SEED_MARKER in ident.lower() for ident in mentioned):
                yield self.finding(
                    ctx, node,
                    f"`{short}(...)` seeded from an expression not derived "
                    "from the experiment seed",
                )
