"""SARIF 2.1.0 output for ``repro lint``.

SARIF (Static Analysis Results Interchange Format) is what code
hosts ingest to annotate pull requests inline: upload the file from
CI and every finding becomes a review comment at its line.  One run,
one ``tool.driver`` carrying the full rule catalogue (so the host can
render titles and fix hints), one ``result`` per finding.

Severity maps directly: ``error``/``warning`` gate, ``note`` is
advisory — the same contract as the human/JSON formats and the exit
code.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lintkit.base import all_rules
from repro.lintkit.engine import LintResult
from repro.lintkit.findings import Severity

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}

#: Engine-synthesized findings that exist outside the rule registry.
_PSEUDO_RULES = {
    "PARSE": ("file does not parse", Severity.ERROR),
    "SUP001": ("stale or unknown suppression", Severity.WARNING),
}


def _rule_catalogue() -> List[dict]:
    entries = []
    for rule in all_rules():
        entry = {
            "id": rule.id,
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        }
        if rule.fix_hint:
            entry["help"] = {"text": rule.fix_hint}
        entries.append(entry)
    for rule_id, (title, severity) in sorted(_PSEUDO_RULES.items()):
        entries.append(
            {
                "id": rule_id,
                "shortDescription": {"text": title},
                "defaultConfiguration": {"level": _LEVELS[severity]},
            }
        )
    return entries


def format_sarif(result: LintResult) -> str:
    """The lint result as a SARIF 2.1.0 JSON document."""
    rules = _rule_catalogue()
    index: Dict[str, int] = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for finding in result.findings:
        entry = {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in index:
            entry["ruleIndex"] = index[finding.rule]
        if finding.fix_hint:
            entry["message"]["text"] += f" — {finding.fix_hint}"
        results.append(entry)
    doc = {
        "version": "2.1.0",
        "$schema": _SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static_analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(doc, indent=2)
