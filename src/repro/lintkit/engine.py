"""Lint engine: file collection, rule dispatch, suppression
accounting, and the ``repro lint`` command-line front end."""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterable, List, Optional, Sequence

from repro.lintkit.base import all_rules
from repro.lintkit.context import FileContext, Project
from repro.lintkit.findings import Finding, Severity, Summary

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "node_modules"}


class LintResult:
    """Outcome of one lint run."""

    def __init__(self, findings: List[Finding], summary: Summary):
        self.findings = findings
        self.summary = summary

    @property
    def ok(self) -> bool:
        """True when no *gating* (error/warning) finding remains.

        ``note``-severity findings are advisory: they appear in every
        report but never fail the run.
        """
        return not any(f.severity.gates for f in self.findings)

    def exit_code(self) -> int:
        return 0 if self.ok else 1


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.append(os.path.abspath(path))
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(set(out))


def load_project(paths: Sequence[str], root: Optional[str] = None) -> Project:
    """Parse every file under ``paths`` into a :class:`Project`.

    ``root`` anchors relative paths and the ``docs/registries/``
    lookups; it defaults to the current working directory.
    """
    root = os.path.abspath(root or os.getcwd())
    files = []
    for path in iter_python_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError):
            continue
        rel = os.path.relpath(path, root)
        files.append(FileContext(path, rel, source))
    return Project(root, files)


def lint_project(
    project: Project, only_rules: Optional[Iterable[str]] = None
) -> LintResult:
    """Run every rule over the project and account suppressions."""
    rules = all_rules(only_rules)
    summary = Summary(files=len(project.files))
    raw: List[Finding] = []

    for ctx in project.files:
        if ctx.syntax_error is not None:
            raw.append(
                Finding(
                    rule="PARSE",
                    path=ctx.rel,
                    line=ctx.syntax_error.lineno or 1,
                    col=(ctx.syntax_error.offset or 1) - 1,
                    message=f"syntax error: {ctx.syntax_error.msg}",
                    severity=Severity.ERROR,
                )
            )
            continue
        for rule in rules:
            raw.extend(rule.check_file(ctx))
    for rule in rules:
        raw.extend(rule.check_project(project))

    by_rel = {ctx.rel: ctx for ctx in project.files}
    kept: List[Finding] = []
    for finding in raw:
        ctx = by_rel.get(finding.path)
        if ctx is not None and ctx.suppressions.consume(finding.rule, finding.line):
            summary.suppressed += 1
            stats = summary.by_rule.setdefault(
                finding.rule, {"findings": 0, "suppressed": 0}
            )
            stats["suppressed"] += 1
            continue
        kept.append(finding)

    # Unused suppressions are findings themselves (SUP001) so stale
    # exemptions cannot accumulate silently.
    for ctx in project.files:
        for entry in ctx.suppressions.unused():
            if entry.rule not in {r.id for r in rules} and entry.rule != "SUP001":
                message = (
                    f"suppression names unknown rule `{entry.rule}`"
                )
            else:
                message = (
                    f"unused suppression: `{entry.rule}` never fired on "
                    f"line {entry.target_line}"
                )
            kept.append(
                Finding(
                    rule="SUP001",
                    path=ctx.rel,
                    line=entry.comment_line,
                    col=0,
                    message=message,
                    severity=Severity.WARNING,
                    fix_hint="delete the stale `# lint: disable=` comment",
                )
            )

    kept.sort(key=Finding.sort_key)
    for finding in kept:
        stats = summary.by_rule.setdefault(
            finding.rule, {"findings": 0, "suppressed": 0}
        )
        stats["findings"] += 1
    summary.findings = len(kept)
    return LintResult(kept, summary)


def format_human(result: LintResult) -> str:
    lines = [f.format() for f in result.findings]
    s = result.summary
    lines.append(
        f"lint: {s.files} files, {s.findings} findings, "
        f"{s.suppressed} suppressed"
    )
    if s.findings:
        worst = sorted(s.by_rule.items())
        per_rule = ", ".join(
            f"{rule}={stats['findings']}" for rule, stats in worst
            if stats["findings"]
        )
        lines.append(f"by rule: {per_rule}")
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    s = result.summary
    return json.dumps(
        {
            "version": 1,
            "summary": {
                "files": s.files,
                "findings": s.findings,
                "suppressed": s.suppressed,
                "by_rule": s.by_rule,
            },
            "findings": [f.as_dict() for f in result.findings],
        },
        indent=2,
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint arguments (shared by ``repro lint`` and the
    standalone ``tools/run_lint.py``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root", default=None,
        help="project root anchoring docs/registries/ (default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="report format (sarif for CI/PR annotation upload)",
    )
    parser.add_argument(
        "--changed", default=None, metavar="REF",
        help="keep only findings on lines changed since the git REF "
        "(e.g. origin/main) — the new-code gate for rule rollouts",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--max-suppressions", type=int, default=None, metavar="N",
        help="fail (exit 1) when more than N findings are suppressed "
        "— the CI budget keeping `# lint: disable` from accreting",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-aware static analysis (determinism, units, "
        "numpy dtype safety, registry drift, concurrency, crash safety, "
        "pickle safety)",
    )
    add_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.title}")
        return 0
    only = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    try:
        project = load_project(args.paths, root=args.root)
        result = lint_project(project, only_rules=only)
    except KeyError as exc:
        print(f"lint: {exc.args[0]}", file=sys.stderr)
        return 2
    if getattr(args, "changed", None):
        from repro.lintkit.diffscope import DiffScopeError, filter_changed

        try:
            result = filter_changed(result, project.root, args.changed)
        except DiffScopeError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
    if args.format == "sarif":
        from repro.lintkit.sarif import format_sarif

        report = format_sarif(result)
    elif args.format == "json":
        report = format_json(result)
    else:
        report = format_human(result)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report + "\n")
        print(
            f"lint report written to {args.output} "
            f"({result.summary.findings} findings)"
        )
    else:
        print(report)
    budget = getattr(args, "max_suppressions", None)
    if budget is not None and result.summary.suppressed > budget:
        print(
            f"lint: suppression budget exceeded: "
            f"{result.summary.suppressed} suppressed > budget {budget}",
            file=sys.stderr,
        )
        return 1
    return result.exit_code()


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
