"""``lint: disable=RULE`` suppression comments.

A suppression silences one or more rules on one line.  Trailing, on
the flagged line itself::

    self._t0 = wall_clock()  # lint: disable=DET002

or on a comment-only line directly above the flagged line (chains of
consecutive comment lines attach to the first code line below them;
a blank line breaks the attachment).

Only *real* comments count — the parser tokenizes the file, so the
pattern appearing inside a string or docstring (like the examples in
this module) is ignored.  Every suppression must be used: a disable
entry that never matches a finding is reported as ``SUP001`` so
stale exemptions cannot accumulate.  ``SUP001`` itself cannot be
suppressed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Pattern

#: Matches ``lint: disable=DET001`` and ``lint: disable=DET001,UNIT002``
#: inside a comment token.  Anything after the rule list (e.g. an
#: ``-- explanation``) is free-form.
_DISABLE_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)"
)

_COMMENT_ONLY_RE = re.compile(r"^\s*(#|$)")
_BLANK_RE = re.compile(r"^\s*$")


@dataclass
class SuppressionEntry:
    """One rule listed in one disable comment."""

    rule: str
    comment_line: int  #: line the comment itself is on (1-based)
    target_line: int  #: line of code the suppression applies to
    used: bool = field(default=False)


def tagged_comments(source: str, pattern: Pattern) -> List[tuple]:
    """(line, standalone, match) for every *real* comment token whose
    text matches ``pattern``.

    Tokenizes the file so the tag appearing inside a string or
    docstring is never picked up.  Shared by the ``lint: disable=``
    suppressions and the ``lint: torn-safe`` annotations
    (:mod:`repro.lintkit.annotations`).
    """
    out: List[tuple] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = pattern.search(tok.string)
        if not match:
            continue
        line, col = tok.start
        before = lines[line - 1][:col] if line - 1 < len(lines) else ""
        out.append((line, before.strip() == "", match))
    return out


def attach_comment(line: int, standalone: bool, lines: List[str]) -> int:
    """The code line a tag comment on ``line`` applies to.

    Trailing comments apply to their own line; standalone comments
    attach to the first code line below them (chains of consecutive
    comment lines pass through; a blank line or EOF breaks the
    attachment, leaving the tag anchored — and stale — on itself).
    """
    if not standalone:
        return line
    cursor = line + 1
    while cursor <= len(lines):
        text = lines[cursor - 1]
        if _BLANK_RE.match(text):
            break
        if not _COMMENT_ONLY_RE.match(text):
            return cursor
        cursor += 1
    return line


def _disable_comments(source: str) -> List[tuple]:
    """(line, standalone, [rules]) for every real disable comment."""
    return [
        (line, standalone, [r.strip() for r in match.group(1).split(",")])
        for line, standalone, match in tagged_comments(source, _DISABLE_RE)
    ]


class FileSuppressions:
    """All suppression comments of one source file."""

    def __init__(self, source: str):
        self.entries: List[SuppressionEntry] = []
        self._by_line: Dict[int, List[SuppressionEntry]] = {}
        lines = source.splitlines()
        for line, standalone, rules in _disable_comments(source):
            self._add(rules, line, attach_comment(line, standalone, lines))

    def _add(self, rules: List[str], comment_line: int, target_line: int) -> None:
        for rule in rules:
            entry = SuppressionEntry(rule, comment_line, target_line)
            self.entries.append(entry)
            self._by_line.setdefault(target_line, []).append(entry)

    def expand(self, stmt_spans: Dict[int, int]) -> None:
        """Extend each entry over the multi-line statement it targets.

        ``stmt_spans`` maps a statement's first line to its last line;
        an entry anchored at a statement's first line then suppresses
        findings anywhere inside that statement (the AST reports a
        call's line as the line the callee appears on, which for a
        wrapped expression is rarely the anchor line).
        """
        for entry in list(self.entries):
            end = stmt_spans.get(entry.target_line)
            if end is None:
                continue
            for line in range(entry.target_line + 1, end + 1):
                self._by_line.setdefault(line, []).append(entry)

    def consume(self, rule: str, line: int) -> bool:
        """True (and mark used) if ``rule`` is suppressed on ``line``."""
        if rule == "SUP001":
            return False
        hit = False
        for entry in self._by_line.get(line, []):
            if entry.rule == rule:
                entry.used = True
                hit = True
        return hit

    def unused(self) -> List[SuppressionEntry]:
        return [e for e in self.entries if not e.used]

    def __len__(self) -> int:
        return len(self.entries)


def find_suppressions(source: str) -> FileSuppressions:
    return FileSuppressions(source)


def count_disable_comments(source: str) -> int:
    """Number of real ``lint: disable=`` comments in ``source``."""
    return len(_disable_comments(source))
