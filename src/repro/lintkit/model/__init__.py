"""Project-level analysis model for :mod:`repro.lintkit`.

The per-file visitor rules (DET/UNIT/DTYPE/…) see one AST at a time;
the CONC/CRASH/PICKLE rule families need to reason about *protocols*
that span functions, classes, and modules — "is a blocking call
reachable from inside this lock region?", "which classes end up
inside the checkpoint pickle?".  This subpackage supplies that view:

* :mod:`~repro.lintkit.model.builder` — the symbol table: every
  module, class, and function in the linted tree under its dotted
  qualname, with import aliases resolved;
* :mod:`~repro.lintkit.model.summaries` — per-function and per-class
  summaries (call sites, lock regions, attribute writes, durable
  file writes, raise/blocking facts, attribute→class bindings)
  computed in one AST walk per function;
* :mod:`~repro.lintkit.model.queries` — the module-granular call
  graph plus the fixpoint/reachability queries rules consume
  (transitively-blocking functions, fsync-calling functions,
  pickle-reachable classes with provenance paths).

Build one with :func:`get_model`; the instance is cached on the
:class:`~repro.lintkit.context.Project`, so every rule in a run
shares a single symbol table and call graph.
"""

from repro.lintkit.model.builder import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    get_model,
    module_name_for,
)
from repro.lintkit.model.summaries import (
    AttrWrite,
    CallSite,
    DurableWrite,
    ReplaceCall,
)

__all__ = [
    "ProjectModel",
    "ModuleInfo",
    "ClassInfo",
    "FunctionInfo",
    "CallSite",
    "AttrWrite",
    "DurableWrite",
    "ReplaceCall",
    "get_model",
    "module_name_for",
]
