"""Call-graph and reachability queries over the project model.

Everything here is module-granular and conservative in the direction
the rules need: call edges only exist where the summary pass resolved
a callee to a project function, so "transitively blocking" can miss
dynamic dispatch but never invents an edge.  Each query carries
*provenance* — a human-readable chain (``checkpoint → _write_blob →
time.sleep``) — so findings can explain themselves instead of just
pointing at a line.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lintkit.model.builder import ClassInfo, ProjectModel

#: Class names (leaf or dotted) that hold OS resources a pickle cannot
#: carry; used by reachable-class consumers, exported for tests.
RESOURCE_BASES = {
    "threading.Thread",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "socket.socket",
}


class GraphQueries:
    """Fixpoint and BFS queries, built once per model."""

    def __init__(self, model: "ProjectModel") -> None:
        self.model = model
        #: qualname -> set of callee qualnames (project functions only).
        self.edges: Dict[str, Set[str]] = {}
        #: callee qualname -> set of caller qualnames.
        self.redges: Dict[str, Set[str]] = {}
        for info in model.functions.values():
            targets = self.edges.setdefault(info.qualname, set())
            for site in info.calls:
                for callee in site.candidates:
                    targets.add(callee)
                    self.redges.setdefault(callee, set()).add(info.qualname)
        self._blocking: Optional[Dict[str, str]] = None
        self._fsyncing: Optional[Set[str]] = None

    # ------------------------------------------------------------------
    # plain reachability

    def reachable(self, seeds: Iterable[str]) -> Set[str]:
        """Function qualnames reachable from ``seeds`` (inclusive)."""
        seen: Set[str] = set()
        frontier = [s for s in seeds if s in self.edges]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.edges.get(current, ()))
        return seen

    # ------------------------------------------------------------------
    # blocking fixpoint

    def blocking_reason(self, qualname: str) -> Optional[str]:
        """Why ``qualname`` may block, as a call chain ending at the
        primitive (``_flush → os.fsync``), or None if it cannot."""
        return self._blocking_map().get(qualname)

    def _blocking_map(self) -> Dict[str, str]:
        if self._blocking is not None:
            return self._blocking
        reasons: Dict[str, str] = {}
        worklist: List[str] = []
        for info in self.model.functions.values():
            if info.blocking_sites:
                site = info.blocking_sites[0]
                label = site.external or (
                    f"{site.receiver}.{site.method}()"
                    if site.receiver and site.method
                    else "blocking call"
                )
                reasons[info.qualname] = label
                worklist.append(info.qualname)
        while worklist:
            callee = worklist.pop()
            for caller in self.redges.get(callee, ()):
                if caller in reasons:
                    continue
                reasons[caller] = f"{_short(callee)} → {reasons[callee]}"
                worklist.append(caller)
        self._blocking = reasons
        return reasons

    # ------------------------------------------------------------------
    # fsync fixpoint

    def calls_fsync(self, qualname: str) -> bool:
        """True if ``qualname`` calls ``os.fsync`` directly or through
        any chain of project calls."""
        if self._fsyncing is None:
            fsyncing: Set[str] = set()
            worklist = [
                info.qualname
                for info in self.model.functions.values()
                if info.calls_fsync
            ]
            fsyncing.update(worklist)
            while worklist:
                callee = worklist.pop()
                for caller in self.redges.get(callee, ()):
                    if caller not in fsyncing:
                        fsyncing.add(caller)
                        worklist.append(caller)
            self._fsyncing = fsyncing
        return qualname in self._fsyncing

    # ------------------------------------------------------------------
    # pickle-reachable classes

    def pickle_roots(self) -> List[Tuple["ClassInfo", str]]:
        """Classes whose *whole instance* is pickled, with the qualname
        of the function doing it.

        A root is any project class ``C`` with a method containing
        ``pickle.dump(...)`` / ``pickle.dumps(...)`` whose payload
        expression mentions bare ``self`` (``pickle.dump(self, fh)``,
        ``pickle.dump({"streams": self._streams}, fh)`` does NOT make
        ``C`` a root — but any project class instantiated inside the
        payload does, via its own attr edges).
        """
        roots: List[Tuple["ClassInfo", str]] = []
        for info in self.model.functions.values():
            for site in info.calls:
                if site.external not in ("pickle.dump", "pickle.dumps"):
                    continue
                if not site.node.args:
                    continue
                payload = site.node.args[0]
                for cls, label in self._payload_classes(info, payload):
                    roots.append((cls, label or info.qualname))
        return roots

    def _payload_classes(
        self, info, payload: ast.expr
    ) -> List[Tuple["ClassInfo", Optional[str]]]:
        """Project classes pickled by ``payload`` inside ``info``."""
        out: List[Tuple["ClassInfo", Optional[str]]] = []
        seen_exprs: List[ast.expr] = [payload]
        # One level of local-variable expansion: payload = {...}; dump(payload)
        if isinstance(payload, ast.Name):
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and \
                            target.id == payload.id:
                        seen_exprs.append(node.value)
        for expr in seen_exprs:
            for node in ast.walk(expr):
                # bare self => the owning class is pickled wholesale
                if isinstance(node, ast.Name) and node.id == "self" and \
                        info.owner is not None:
                    # exclude the receiver of self.attr (that's the
                    # attribute's value, resolved via attr edges below)
                    out.append((info.owner, info.qualname))
                elif isinstance(node, ast.Attribute) and isinstance(
                    node.value, ast.Name
                ) and node.value.id == "self" and info.owner is not None:
                    for qual in info.owner.attr_classes.get(node.attr, ()):
                        cls = self.model.classes.get(qual)
                        if cls is not None:
                            out.append(
                                (cls,
                                 f"{info.qualname} via self.{node.attr}")
                            )
        # A bare-`self` match above also walks the `self` inside
        # `self.attr`; drop the owner entry when every mention of self
        # is an attribute receiver.
        has_bare_self = any(
            _mentions_bare_self(expr) for expr in seen_exprs
        )
        if not has_bare_self:
            out = [(c, l) for (c, l) in out
                   if info.owner is None or c is not info.owner
                   or (l and "via self." in l)]
        return out

    def reachable_classes(
        self, roots: Iterable[Tuple["ClassInfo", str]]
    ) -> Dict[str, str]:
        """BFS over attribute→class edges from ``roots``.

        Returns ``{class qualname: provenance}`` where provenance reads
        ``Service.checkpoint → StreamRun.sim → Simulation.telemetry``.
        Expansion per reached class: its attr-edge targets, the
        targets' project subclasses (the attribute may hold any of
        them), and its own project bases (their attrs live on the
        instance).  Classes defining ``__getstate__``/``__reduce__``
        are *recorded* but not traversed — they rewrite their own
        pickled payload.
        """
        prov: Dict[str, str] = {}
        frontier: List["ClassInfo"] = []
        for cls, label in roots:
            if cls.qualname not in prov:
                prov[cls.qualname] = label
                frontier.append(cls)
        while frontier:
            current = frontier.pop(0)
            here = prov[current.qualname]
            if current.custom_pickle:
                continue  # opaque: payload is whatever __getstate__ says
            neighbours: List[Tuple["ClassInfo", str]] = []
            for attr, targets in sorted(current.attr_classes.items()):
                for qual in sorted(targets):
                    cls = self.model.classes.get(qual)
                    if cls is None:
                        continue
                    label = f"{here} → {current.name}.{attr}"
                    neighbours.append((cls, label))
                    for sub in self.model.subclasses_of(cls):
                        neighbours.append(
                            (sub, f"{label} (as subclass {sub.name})")
                        )
            for base in self.model.base_classes(current):
                neighbours.append((base, f"{here} → base {base.name}"))
            for cls, label in neighbours:
                if cls.qualname not in prov:
                    prov[cls.qualname] = label
                    frontier.append(cls)
        return prov


def _mentions_bare_self(expr: ast.expr) -> bool:
    """True when ``expr`` mentions ``self`` other than as an attribute
    receiver (``self`` yes; ``self.x`` / ``self.x.y`` no)."""
    receivers = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ) and node.value.id == "self":
            receivers.add(id(node.value))
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id == "self" and \
                id(node) not in receivers:
            return True
    return False


def _short(qualname: str) -> str:
    """The last two dotted segments — enough to read a chain."""
    parts = qualname.rsplit(".", 2)
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname
