"""Per-function and per-class summaries for the project model.

One recursive walk per function collects everything the CONC/CRASH/
PICKLE rules need, annotated with the *lock context* (the nesting
depth of ``with <lock>:`` statements) at each site:

* :class:`CallSite` — every call, resolved module-granularly to
  project functions/classes (through import aliases and ``self.``
  method dispatch including project base classes) or to an external
  dotted path;
* :class:`AttrWrite` — every write to ``self.<attr>`` classified as a
  *rebind* (``self.x = …``) or a *mutation* (``self.x += …``,
  ``self.x[k] = …``, ``self.x.append(…)``);
* :class:`DurableWrite` / :class:`ReplaceCall` — file writes that
  land bytes on disk and the ``os.replace`` calls that publish them,
  each carrying the lowercase token bag of its path expression
  (identifiers + string literals, with one level of local-variable
  expansion) so the CRASH rules can classify checkpoint/tmp paths;
* blocking facts (``time.sleep``, socket/subprocess primitives,
  ``.join()``/``.acquire()`` on concurrency-named receivers), direct
  ``raise`` statements, and ``os.fsync`` calls.

Class summaries aggregate the methods: lock-attribute ownership,
thread launches, attribute→class bindings (from constructor calls,
``self.x: T`` annotations, class-body fields, and ``__init__``
parameter annotations — the edges pickle-reachability walks), and
custom-pickle (``__getstate__``/``__reduce__``) markers.

Nested ``def``s and ``lambda`` bodies are *not* folded into their
enclosing function's summary — they execute at some other time, so
their calls must not inherit the enclosing lock context.  Nested
defs are summarized as functions in their own right.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lintkit.model.builder import (
        ClassInfo,
        FunctionInfo,
        ModuleInfo,
        ProjectModel,
    )

#: External callables that block the calling thread.
BLOCKING_EXTERNAL = {
    "time.sleep",
    "open",
    "socket.socket",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "urllib.request.urlopen",
    "select.select",
    "os.fsync",
}

#: Method names that block when invoked on a concurrency object; the
#: receiver must *look* like one (see :func:`_concurrencyish`) so that
#: ``", ".join(parts)`` or ``dict.get`` never match.
BLOCKING_METHODS = {
    "join", "acquire", "wait", "recv", "recv_into", "accept", "connect",
    "sendall", "serve_forever", "get",
}

_CONCURRENCY_RECEIVER_MARKERS = (
    "thread", "proc", "sock", "conn", "queue", "lock", "event", "server",
    "httpd", "pipe",
)

#: Constructors whose result owns an OS lock handle.
LOCK_CONSTRUCTORS = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
}

#: Substrings marking a ``with self.<attr>:`` context as a lock.
_LOCK_NAME_MARKERS = ("lock", "mutex", "cond", "sem")

#: Container-mutating method names counted as attribute writes.
_MUTATOR_METHODS = {
    "append", "add", "update", "extend", "insert", "pop", "popitem",
    "popleft", "appendleft", "setdefault", "clear", "remove", "discard",
    "sort", "reverse",
}

#: numpy savers that write a file at their first argument.
_NUMPY_SAVERS = {"numpy.savez", "numpy.savez_compressed", "numpy.save"}


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    lock_depth: int  #: number of enclosing ``with <lock>:`` statements
    candidates: List[str] = field(default_factory=list)  #: project qualnames
    external: Optional[str] = None  #: resolved dotted path for externals
    receiver: Optional[str] = None  #: dotted receiver for method calls
    method: Optional[str] = None  #: trailing attribute for method calls
    instantiates: Optional[str] = None  #: class qualname if a constructor


@dataclass
class AttrWrite:
    """One write to ``self.<attr>``."""

    attr: str
    node: ast.AST
    kind: str  #: ``rebind`` (self.x = …) or ``mutate`` (aug/subscript/method)
    lock_depth: int
    function: "FunctionInfo"
    value: Optional[ast.expr] = None  #: RHS for rebinds


@dataclass
class DurableWrite:
    """A call that lands bytes at a path (open-for-write,
    ``write_text``/``write_bytes``, numpy savers)."""

    node: ast.AST
    via: str  #: ``open`` / ``write_text`` / ``write_bytes`` / ``numpy``
    path_tokens: Set[str]
    assigned_to: Optional[str] = None  #: local name bound to an open() handle


@dataclass
class ReplaceCall:
    """``os.replace(src, dst)`` or ``<tmp-path>.replace(dst)``."""

    node: ast.AST
    src_tokens: Set[str]
    dst_tokens: Set[str]


@dataclass
class ThreadCreate:
    """One ``threading.Thread(...)`` construction."""

    node: ast.Call
    has_daemon: bool
    assigned_to: Optional[str]  #: dotted target (``self._thread``, ``t``)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _concurrencyish(receiver: Optional[str]) -> bool:
    if not receiver:
        return False
    low = receiver.lower()
    return any(marker in low for marker in _CONCURRENCY_RECEIVER_MARKERS)


def _is_lock_context(expr: ast.expr) -> Optional[str]:
    """The lock attribute name if ``expr`` names a lock, else None."""
    dotted = _dotted(expr)
    if dotted is None:
        return None
    leaf = dotted.rpartition(".")[2].lower()
    if any(marker in leaf for marker in _LOCK_NAME_MARKERS):
        return dotted.rpartition(".")[2]
    return None


def expr_tokens(expr: ast.AST) -> Set[str]:
    """Lowercased identifiers and string literals inside ``expr``."""
    tokens: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            tokens.add(node.id.lower())
        elif isinstance(node, ast.Attribute):
            tokens.add(node.attr.lower())
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            tokens.add(node.value.lower())
    return tokens


class _FunctionWalker:
    """Single pass over one function body, tracking lock depth."""

    def __init__(
        self,
        model: "ProjectModel",
        module: "ModuleInfo",
        info: "FunctionInfo",
    ) -> None:
        self.model = model
        self.module = module
        self.info = info
        self.lock_depth = 0
        #: Lock-named attributes used as ``with self.X:`` contexts.
        self.lock_attrs_used: Set[str] = set()
        self.thread_creates: List[ThreadCreate] = []
        #: Local name -> RHS expression (for path-token expansion).
        self.local_values: Dict[str, ast.expr] = {}

    def run(self) -> None:
        # Pre-pass: local assignments, so path tokens can expand a
        # ``tmp = f"{path}.tmp"`` binding used before/after its write.
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self.local_values.setdefault(target.id, node.value)
        for stmt in self.info.node.body:  # type: ignore[attr-defined]
            self._visit(stmt)

    # ------------------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return  # different execution context; summarized separately
        if isinstance(node, (ast.With, ast.AsyncWith)):
            locks = [
                _is_lock_context(item.context_expr) for item in node.items
            ]
            held = [name for name in locks if name is not None]
            for item in node.items:
                self._visit(item.context_expr)
            if held:
                self.lock_attrs_used.update(held)
                self.lock_depth += 1
            for stmt in node.body:
                self._visit(stmt)
            if held:
                self.lock_depth -= 1
            return
        if isinstance(node, ast.Raise):
            self.info.raises_directly = True
        if isinstance(node, ast.Assign):
            self._record_assign(node)
        elif isinstance(node, ast.AugAssign):
            self._record_augassign(node)
        elif isinstance(node, ast.AnnAssign):
            self._record_annassign(node)
        if isinstance(node, ast.Call):
            self._record_call(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # ------------------------------------------------------------------
    # attribute writes

    def _record_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ) and target.value.id == "self":
                self.info.attr_writes.append(
                    AttrWrite(target.attr, node, "rebind", self.lock_depth,
                              self.info, value=node.value)
                )
            elif isinstance(target, ast.Subscript):
                attr = self._self_attr(target.value)
                if attr is not None:
                    self.info.attr_writes.append(
                        AttrWrite(attr, node, "mutate", self.lock_depth,
                                  self.info)
                    )

    def _record_augassign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            self.info.attr_writes.append(
                AttrWrite(target.attr, node, "mutate", self.lock_depth,
                          self.info)
            )
        elif isinstance(target, ast.Subscript):
            attr = self._self_attr(target.value)
            if attr is not None:
                self.info.attr_writes.append(
                    AttrWrite(attr, node, "mutate", self.lock_depth,
                              self.info)
                )

    def _record_annassign(self, node: ast.AnnAssign) -> None:
        target = node.target
        if node.value is not None and isinstance(
            target, ast.Attribute
        ) and isinstance(target.value, ast.Name) and target.value.id == "self":
            self.info.attr_writes.append(
                AttrWrite(target.attr, node, "rebind", self.lock_depth,
                          self.info, value=node.value)
            )

    @staticmethod
    def _self_attr(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ) and expr.value.id == "self":
            return expr.attr
        return None

    # ------------------------------------------------------------------
    # calls

    def _record_call(self, call: ast.Call) -> None:
        site = CallSite(node=call, lock_depth=self.lock_depth)
        dotted = _dotted(call.func)
        owner = self.info.owner
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            if head == "self" and owner is not None and rest:
                if "." not in rest:
                    method = self.model.method_of(owner, rest)
                    if method is not None:
                        site.candidates.append(method.qualname)
                site.receiver = "self." + rest.rpartition(".")[0] if "." in \
                    rest else "self"
                site.method = rest.rpartition(".")[2]
            elif "." not in dotted:
                target = self.model.resolve_function(self.module, dotted)
                cls = self.model.resolve_class(self.module, dotted)
                if target is not None:
                    site.candidates.append(target.qualname)
                elif cls is not None:
                    site.instantiates = cls.qualname
                    init = self.model.method_of(cls, "__init__")
                    if init is not None:
                        site.candidates.append(init.qualname)
                else:
                    site.external = self.module.resolve_alias(dotted)
            else:
                target = self.model.resolve_function(self.module, dotted)
                cls = self.model.resolve_class(self.module, dotted)
                if target is not None:
                    site.candidates.append(target.qualname)
                elif cls is not None:
                    site.instantiates = cls.qualname
                    init = self.model.method_of(cls, "__init__")
                    if init is not None:
                        site.candidates.append(init.qualname)
                else:
                    site.external = _normalize_numpy(
                        self.module.resolve_alias(dotted)
                    )
                    site.receiver = dotted.rpartition(".")[0]
                    site.method = dotted.rpartition(".")[2]
        self.info.calls.append(site)
        self._classify_call(site)

    def _classify_call(self, site: CallSite) -> None:
        call = site.node
        external = site.external
        # -- blocking primitives ---------------------------------------
        if external in BLOCKING_EXTERNAL and not (
            external == "open" and not _is_write_open(call)
            and site.lock_depth == 0
        ):
            self.info.blocking_sites.append(site)
        elif (
            site.method in BLOCKING_METHODS
            and not site.candidates
            and _concurrencyish(site.receiver)
        ):
            self.info.blocking_sites.append(site)
        if external == "os.fsync":
            self.info.calls_fsync = True
        # -- thread construction ---------------------------------------
        if external == "threading.Thread":
            self.thread_creates.append(
                ThreadCreate(
                    call,
                    has_daemon=any(k.arg == "daemon" for k in call.keywords),
                    assigned_to=None,  # filled by summarize_function
                )
            )
        # -- durable writes / replaces ---------------------------------
        if external == "open" and _is_write_open(call) and call.args:
            self.info.durable_writes.append(
                DurableWrite(call, "open", self._path_tokens(call.args[0]))
            )
        elif site.method in ("write_text", "write_bytes") and isinstance(
            call.func, ast.Attribute
        ):
            self.info.durable_writes.append(
                DurableWrite(call, site.method,
                             self._path_tokens(call.func.value))
            )
        elif external in _NUMPY_SAVERS and call.args:
            self.info.durable_writes.append(
                DurableWrite(call, "numpy", self._path_tokens(call.args[0]))
            )
        if external == "os.replace" and len(call.args) >= 2:
            self.info.replaces.append(
                ReplaceCall(call, self._path_tokens(call.args[0]),
                            self._path_tokens(call.args[1]))
            )
        elif (
            site.method == "replace"
            and isinstance(call.func, ast.Attribute)
            and len(call.args) == 1
            and not call.keywords
        ):
            # Path.replace(target) — only counted when the receiver
            # looks like a tmp path, so str.replace never matches.
            src = self._path_tokens(call.func.value)
            if any("tmp" in t or "temp" in t for t in src):
                self.info.replaces.append(
                    ReplaceCall(call, src, self._path_tokens(call.args[0]))
                )

    def _path_tokens(self, expr: ast.expr) -> Set[str]:
        tokens = expr_tokens(expr)
        if isinstance(expr, ast.Name):
            bound = self.local_values.get(expr.id)
            if bound is not None:
                tokens |= expr_tokens(bound)
        return tokens


def _is_write_open(call: ast.Call) -> bool:
    """True when an ``open(...)`` call's mode writes (w/x/a)."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(c in mode.value for c in "wxa")
    return False


def _normalize_numpy(path: str) -> str:
    return "numpy." + path[3:] if path.startswith("np.") else path


# ----------------------------------------------------------------------
# module / class aggregation


def summarize_module(model: "ProjectModel", module: "ModuleInfo") -> None:
    """Fill function summaries, then aggregate class facts."""
    walkers: Dict[str, _FunctionWalker] = {}
    for info in model.functions.values():
        if info.module is not module:
            continue
        walker = _FunctionWalker(model, module, info)
        walker.run()
        walkers[info.qualname] = walker
        _bind_thread_targets(info, walker)
    for cls in module.classes.values():
        _summarize_class(model, cls, walkers)


def _bind_thread_targets(info: "FunctionInfo", walker: _FunctionWalker) -> None:
    """Attach ``x = threading.Thread(...)`` targets to the create."""
    by_node = {tc.node: tc for tc in walker.thread_creates}
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            create = by_node.get(node.value)
            if create is not None and len(node.targets) == 1:
                create.assigned_to = _dotted(node.targets[0])
    info.thread_creates = walker.thread_creates


def _summarize_class(
    model: "ProjectModel",
    cls: "ClassInfo",
    walkers: Dict[str, _FunctionWalker],
) -> None:
    cls.custom_pickle = any(
        name in cls.methods
        for name in ("__getstate__", "__reduce__", "__reduce_ex__")
    )
    # Class-body annotations (dataclass fields): x: SomeClass = ...
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            _merge_annotation_classes(
                model, cls, stmt.target.id, stmt.annotation
            )
    for method in cls.methods.values():
        walker = walkers.get(method.qualname)
        if walker is None:
            continue
        cls.lock_attrs |= {
            name for name in walker.lock_attrs_used if name
        }
        if walker.thread_creates:
            cls.launches_thread = True
        for write in method.attr_writes:
            if write.kind != "rebind" or write.value is None:
                continue
            # Lock ownership: self.x = threading.Lock()
            if isinstance(write.value, ast.Call):
                dotted = _dotted(write.value.func)
                if dotted is not None and cls.module.resolve_alias(
                    _normalize_numpy(dotted)
                ) in LOCK_CONSTRUCTORS:
                    cls.lock_attrs.add(write.attr)
            # Attribute -> class bindings: self.x = SomeClass(...) or
            # any expression instantiating project classes (list
            # comprehensions of constructors included).
            for sub in ast.walk(write.value):
                if isinstance(sub, ast.Call):
                    dotted = _dotted(sub.func)
                    if dotted is None:
                        continue
                    target = model.resolve_class(cls.module, dotted)
                    if target is not None:
                        cls.attr_classes.setdefault(write.attr, set()).add(
                            target.qualname
                        )
        # self.x: SomeClass annotations inside methods
        for node in ast.walk(method.node):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Attribute
            ) and isinstance(node.target.value, ast.Name) and \
                    node.target.value.id == "self":
                _merge_annotation_classes(
                    model, cls, node.target.attr, node.annotation
                )
    # __init__ parameter annotations: instances handed in and stored.
    init = cls.methods.get("__init__")
    if init is not None:
        args = init.node.args  # type: ignore[attr-defined]
        for arg in list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None and arg.arg != "self":
                _merge_annotation_classes(
                    model, cls, arg.arg, arg.annotation
                )


def _merge_annotation_classes(
    model: "ProjectModel",
    cls: "ClassInfo",
    attr: str,
    annotation: ast.expr,
) -> None:
    """Resolve every project class named inside an annotation."""
    for node in ast.walk(annotation):
        dotted = _dotted(node)
        if dotted is None:
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                dotted = node.value  # string-quoted forward reference
            else:
                continue
        target = model.resolve_class(cls.module, dotted)
        if target is not None:
            cls.attr_classes.setdefault(attr, set()).add(target.qualname)
