"""Symbol table: modules, classes, and functions under dotted names.

The builder walks every parsed :class:`~repro.lintkit.context
.FileContext` once and indexes its definitions.  Qualified names are
dotted module paths derived from the file's project-relative path
(``src/repro/service/daemon.py`` → ``repro.service.daemon``; a
``tools/`` or ``examples/`` script keeps its directory as the package
prefix), so fixture trees in tests and the real tree resolve the same
way.  Nested defs (a function inside a function) are indexed under
their lexical owner with ``<locals>`` elided — call resolution is
module-granular, which is as deep as the rules need.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.lintkit.base import import_aliases
from repro.lintkit.context import FileContext, Project

#: Attribute name on the Project instance caching the built model.
_CACHE_ATTR = "_lintkit_model"


def module_name_for(rel: str) -> str:
    """Dotted module name for a project-relative posix path.

    A leading ``src/`` is stripped (the import root), ``__init__.py``
    names the package itself, and any other directory prefix (tools/,
    examples/) becomes part of the dotted name.
    """
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf == "__init__.py":
        parts = parts[:-1]
    elif leaf.endswith(".py"):
        parts = parts[:-1] + [leaf[:-3]]
    return ".".join(parts)


class FunctionInfo:
    """One function or method definition.

    Summary fields (``calls``, ``attr_writes``, ``durable_writes``,
    ``replaces``, ``raises_directly``, ``blocking_sites``) are filled
    by :mod:`~repro.lintkit.model.summaries` right after construction;
    the builder only records identity.
    """

    def __init__(
        self,
        qualname: str,
        node: ast.AST,
        module: "ModuleInfo",
        owner: Optional["ClassInfo"],
    ) -> None:
        self.qualname = qualname
        self.name = node.name  # type: ignore[attr-defined]
        self.node = node
        self.module = module
        self.owner = owner  #: owning ClassInfo for methods, else None
        # -- filled by summaries.summarize_function --
        self.calls: list = []
        self.attr_writes: list = []
        self.durable_writes: list = []
        self.replaces: list = []
        self.raises_directly = False
        self.blocking_sites: list = []
        self.calls_fsync = False
        self.thread_creates: list = []

    @property
    def ctx(self) -> FileContext:
        return self.module.ctx

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.qualname}>"


class ClassInfo:
    """One class definition plus its attribute/base summaries."""

    def __init__(
        self, qualname: str, node: ast.ClassDef, module: "ModuleInfo"
    ) -> None:
        self.qualname = qualname
        self.name = node.name
        self.node = node
        self.module = module
        self.methods: Dict[str, FunctionInfo] = {}
        #: Base-class dotted names as written (resolved lazily by the
        #: model against the symbol table + import aliases).
        self.base_names: List[str] = []
        # -- filled by summaries.summarize_class --
        self.attr_classes: Dict[str, Set[str]] = {}
        self.lock_attrs: Set[str] = set()
        self.launches_thread = False
        self.custom_pickle = False  #: defines __getstate__/__reduce__

    @property
    def ctx(self) -> FileContext:
        return self.module.ctx

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClassInfo {self.qualname}>"


class ModuleInfo:
    """One source file as a module: its definitions and imports."""

    def __init__(self, name: str, ctx: FileContext) -> None:
        self.name = name
        self.ctx = ctx
        self.aliases: Dict[str, str] = (
            import_aliases(ctx.tree) if ctx.tree is not None else {}
        )
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}

    @property
    def imports_threading(self) -> bool:
        return any(
            target == "threading" or target.startswith("threading.")
            for target in self.aliases.values()
        )

    def resolve_alias(self, dotted: str) -> str:
        """Expand the leading segment of ``dotted`` through this
        module's import aliases (``np.x`` → ``numpy.x``)."""
        head, _, rest = dotted.partition(".")
        resolved = self.aliases.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved


class ProjectModel:
    """The symbol table plus lazily-built graph queries."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        for ctx in project.files:
            if ctx.tree is None:
                continue
            self._index_module(ctx)
        # Summaries need the full symbol table (cross-module call
        # resolution), so they run as a second pass.
        from repro.lintkit.model.summaries import summarize_module

        for module in self.modules.values():
            summarize_module(self, module)
        from repro.lintkit.model.queries import GraphQueries

        self.queries = GraphQueries(self)

    # ------------------------------------------------------------------
    # indexing

    def _index_module(self, ctx: FileContext) -> None:
        module = ModuleInfo(module_name_for(ctx.rel), ctx)
        self.modules[module.name] = module
        self._index_body(module, None, module.name, ctx.tree.body)

    def _index_body(
        self,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
        prefix: str,
        body: Iterable[ast.stmt],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                info = FunctionInfo(qualname, node, module, owner)
                self.functions[qualname] = info
                if owner is not None:
                    owner.methods[node.name] = info
                else:
                    module.functions[node.name] = info
                # Nested defs are indexed (so their bodies are
                # summarized) but stay invisible to name lookup —
                # module-granular resolution never targets them.
                self._index_body(module, owner, qualname, node.body)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                cls = ClassInfo(qualname, node, module)
                self.classes[qualname] = cls
                module.classes[node.name] = cls
                for base in node.bases:
                    dotted = _dotted(base)
                    if dotted:
                        cls.base_names.append(dotted)
                self._index_body(module, cls, qualname, node.body)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.AsyncWith,
                                   ast.For, ast.AsyncFor, ast.While)):
                # Definitions behind TYPE_CHECKING / version guards, or
                # nested inside with/loop blocks.
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, ast.stmt):
                        self._index_body(module, owner, prefix, [sub])

    # ------------------------------------------------------------------
    # lookup

    def resolve_class(
        self, module: ModuleInfo, dotted: str
    ) -> Optional[ClassInfo]:
        """The project class a (possibly aliased) name refers to from
        within ``module``, or None for externals."""
        if dotted in module.classes:
            return module.classes[dotted]
        resolved = module.resolve_alias(dotted)
        if resolved in self.classes:
            return self.classes[resolved]
        # ``pkg.mod.Cls`` written out or via a module alias.
        head, _, leaf = resolved.rpartition(".")
        target = self.modules.get(head)
        if target is not None and leaf in target.classes:
            return target.classes[leaf]
        return None

    def resolve_function(
        self, module: ModuleInfo, dotted: str
    ) -> Optional[FunctionInfo]:
        """The project function a name refers to from ``module``."""
        if dotted in module.functions:
            return module.functions[dotted]
        resolved = module.resolve_alias(dotted)
        if resolved in self.functions:
            return self.functions[resolved]
        head, _, leaf = resolved.rpartition(".")
        target = self.modules.get(head)
        if target is not None and leaf in target.functions:
            return target.functions[leaf]
        return None

    def base_classes(self, cls: ClassInfo) -> List[ClassInfo]:
        """Project classes among ``cls``'s direct bases."""
        out = []
        for name in cls.base_names:
            base = self.resolve_class(cls.module, name)
            if base is not None:
                out.append(base)
        return out

    def subclasses_of(self, cls: ClassInfo) -> List[ClassInfo]:
        """Every project class with ``cls`` in its transitive bases."""
        out = []
        for candidate in self.classes.values():
            if candidate is cls:
                continue
            seen: Set[str] = set()
            frontier = [candidate]
            while frontier:
                current = frontier.pop()
                for base in self.base_classes(current):
                    if base.qualname in seen:
                        continue
                    seen.add(base.qualname)
                    if base is cls:
                        out.append(candidate)
                        frontier = []
                        break
                    frontier.append(base)
                else:
                    continue
                break
        return out

    def method_of(
        self, cls: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        """``cls``'s method ``name``, searching project base classes."""
        seen: Set[str] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            frontier.extend(self.base_classes(current))
        return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def get_model(project: Project) -> ProjectModel:
    """The (cached) analysis model for ``project``."""
    model = getattr(project, _CACHE_ATTR, None)
    if model is None:
        model = ProjectModel(project)
        setattr(project, _CACHE_ATTR, model)
    return model
