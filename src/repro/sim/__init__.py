"""Simulation engine: configuration, performance model, and the
per-run driver tying workloads, tiers, the CXL controller, and the
page-migration policies together."""

from repro.sim.config import FleetConfig, SimConfig
from repro.sim.engine import (
    ALL_POLICIES,
    BASELINE_POLICIES,
    CHECKPOINT_FORMAT_VERSION,
    M5_POLICIES,
    CheckpointError,
    M5Options,
    RunResult,
    Simulation,
    access_count_ratio,
    run_policy,
)
from repro.sim.perf import EpochPerf, PerformanceModel
from repro.sim.sweep import (
    cell_seed,
    collect_fleet,
    collect_matrix,
    matrix_means,
    normalized,
    run_matrix,
    run_one,
)
from repro.sim.telemetry import (
    JsonlSink,
    RingBufferSink,
    TelemetryBus,
    TelemetrySink,
    read_jsonl,
)

__all__ = [
    "FleetConfig",
    "SimConfig",
    "ALL_POLICIES",
    "BASELINE_POLICIES",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "M5_POLICIES",
    "M5Options",
    "RunResult",
    "Simulation",
    "access_count_ratio",
    "run_policy",
    "EpochPerf",
    "PerformanceModel",
    "cell_seed",
    "collect_fleet",
    "collect_matrix",
    "matrix_means",
    "normalized",
    "run_matrix",
    "run_one",
    "JsonlSink",
    "RingBufferSink",
    "TelemetryBus",
    "TelemetrySink",
    "read_jsonl",
]
