"""The simulation engine: a per-epoch pipeline over pluggable policies.

One :class:`Simulation` reproduces the paper's run methodology as a
fixed pipeline of stages executed once per epoch::

    trace → translate → snoop → policy → migrate → perf → checkpoint

1. **trace** — the workload emits the epoch's address chunk;
2. **translate** — addresses pass through the page map; the tiers
   count the epoch's traffic (all application pages start on CXL
   DRAM, the §4.1/§7 cgroup binding);
3. **snoop** — CXL-bound requests pass through the controller, where
   PAC (always), WAC (optionally), and the M5 trackers (when M5 is
   the policy) snoop every address; MGLRU records recency;
4. **policy** — the active page-migration policy observes the epoch
   through the uniform :class:`~repro.baselines.base.EpochPolicy`
   interface and returns a
   :class:`~repro.baselines.base.PolicyDecision`;
5. **migrate** — the engine applies the decision: promotions first
   (once DDR is full every promotion demotes an MGLRU victim), then
   the policy's proactive watermark demotions;
6. **perf** — the performance model converts tier hit counts, policy
   CPU overhead, and migration work into simulated time;
7. **checkpoint** — in identification-only mode, the access-count
   ratio is snapshotted at the configured measurement points.

CPU-driven baselines and the M5 manager flow through the *same*
policy stage — there is no per-family branching in the loop — so a
new policy only needs to implement ``EpochPolicy`` to plug in.

Stages publish per-epoch events (tier occupancy, promotions and
demotions, policy overhead, migration time, ratio checkpoints) to a
:class:`~repro.sim.telemetry.TelemetryBus`; a ring-buffer sink is
attached by default and surfaces as ``RunResult.timeline``.

Passing an :class:`~repro.obs.Observability` bundle turns on the
observability layer: the engine, manager, async migration engine, and
CXL controller register counters/gauges/histograms into its metrics
registry (snapshotted onto ``RunResult.metrics``), and the run loop
wraps every stage in a tracing span (wall + simulated time, with the
async migration tick nested underneath ``stage.migrate``) for the
per-run flame table and Chrome-trace export.  Without it, the shared
disabled instance makes every instrument a no-op and the loop runs
the uninstrumented seed path.

``config.migrate = False`` selects the identification-only mode
(§4.1 S1): policies build their hot-page lists but nothing moves, so
PAC's counts score them cleanly.

``config.migration_mode = "async"`` replaces the instantaneous
migrate stage with the transactional subsystem in
:mod:`repro.migration`: the decision's promotions (and the Promoter's
writes, for M5) *enqueue* into a bounded queue, and one engine tick
per epoch executes requests as Nomad-style transactions — shadow copy,
dirty recheck against the epoch's snooped writes, then commit or
abort with retry/backoff — under a per-epoch in-flight budget and an
optional copy-bandwidth throttle.  Copy traffic is charged into the
performance model as contention against demand traffic
(``migration.enqueue/commit/abort/retry`` telemetry events trace the
queue's behaviour).  Instant mode stays the default.
"""

from __future__ import annotations

import contextlib
import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
from numpy.typing import ArrayLike

from repro.baselines import (
    AutoNumaBalancing,
    Damon,
    EpochPolicy,
    EpochView,
    MigrationPolicy,
    NoMigration,
    PebsSampler,
    PolicyDecision,
    PteScanner,
    Tpp,
)
from repro.core.manager import (
    HPT_DRIVEN,
    HPT_ONLY,
    HWT_DRIVEN,
    Elector,
    M5Manager,
    Nominator,
    power_fscale,
)
from repro.core.trackers import make_hpt, make_hwt
from repro.cxl.controller import CxlController
from repro.cxl.pac import PageAccessCounter
from repro.cxl.wac import WordAccessCounter
from repro.memory.address import PAGE_SHIFT
from repro.memory.migration import MigrationCostModel, MigrationEngine
from repro.memory.mglru import MultiGenLru
from repro.memory.tiers import NodeKind, NodeSpec, TieredMemory
from repro.migration import AsyncMigrationConfig, AsyncMigrationEngine, TickReport
from repro.obs import (
    NULL_OBS,
    Observability,
    SloWatchdog,
    TimeSeriesRecorder,
    load_rules,
    parse_series_spec,
    wall_clock,
)
from repro.obs.tracing import SimClock
from repro.sim.config import SimConfig
from repro.sim.perf import EpochPerf, PerformanceModel
from repro.sim.telemetry import RingBufferSink, TelemetryBus
from repro.workloads.base import SyntheticWorkload

#: Registry-visible policy names.
BASELINE_POLICIES = ("none", "anb", "damon", "tpp", "pte-scan", "pebs")
M5_POLICIES = ("m5-hpt", "m5-hwt", "m5-hpt+hwt")
ALL_POLICIES = BASELINE_POLICIES + M5_POLICIES

#: On-disk checkpoint format.  Bumped whenever the pickled state's
#: shape changes incompatibly; ``load_state`` refuses other versions
#: rather than resuming from state it would misinterpret.
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or read back."""


@dataclass
class M5Options:
    """Configuration of the M5 policy stack."""

    algorithm: str = "cm-sketch"
    num_counters: int = 32 * 1024
    k_hpt: int = 64
    k_hwt: int = 128
    nominator_mode: str = HPT_ONLY
    min_hot_words: int = 16
    fscale_n: float = 4.0
    f_default: float = 1.0
    min_period_s: float = 1e-3
    max_period_s: float = 2.0
    #: Elector's improvement dead band; negative values make every
    #: period migrate (maximally aggressive, churn included).
    improvement_epsilon: float = 1e-2


@dataclass
class RunResult:
    """Everything one simulated run produced."""

    benchmark: str
    policy: str
    execution_time_s: float
    app_time_s: float
    overhead_time_s: float
    migration_time_s: float
    p99_latency_us: Optional[float]
    hot_pfns: List[int]
    ratio_checkpoints: List[float]
    promoted: int
    demoted: int
    nr_pages_ddr: int
    nr_pages_cxl: int
    overhead_events: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    #: Epoch-resolution telemetry events (from the run's ring-buffer
    #: sink): tier occupancy, promotions/demotions, overhead and
    #: migration time per epoch, plus ratio checkpoints.
    timeline: List[Dict[str, float]] = field(default_factory=list)
    #: Events the ring-buffer sink evicted because it was full; a
    #: non-zero value means ``timeline`` is the *tail* of the run.
    timeline_dropped: int = 0
    #: Metrics-registry snapshot (see :mod:`repro.obs`); populated
    #: only when the run's :class:`~repro.obs.Observability` has
    #: metrics enabled.
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def access_count_ratio(self) -> Optional[float]:
        """Mean of the checkpointed access-count ratios (§4.1 S5)."""
        if not self.ratio_checkpoints:
            return None
        return float(np.mean(self.ratio_checkpoints))

    def timeline_events(self, stage: str) -> List[Dict[str, float]]:
        """The timeline filtered to one pipeline stage's events."""
        return [e for e in self.timeline if e.get("stage") == stage]


def access_count_ratio(
    pac: PageAccessCounter, hot_pfns: ArrayLike, k_cap: Optional[int] = None
) -> float:
    """The §4.1 metric: Σ counts(identified) / Σ counts(true top-K).

    K equals the number of *distinct* identified pages (capped at
    ``k_cap``, the paper's 128K ≈ footprint/16); re-identifications of
    the same page across querying periods are collapsed, keeping first
    identification order.
    """
    pfns = np.asarray(list(hot_pfns), dtype=np.int64)
    if pfns.size:
        _, first = np.unique(pfns, return_index=True)
        pfns = pfns[np.sort(first)]
    if k_cap is not None and pfns.size > k_cap:
        pfns = pfns[:k_cap]
    if pfns.size == 0:
        return 0.0
    k_access = int(pac.counts_of_pages(pfns).sum())
    top = pac.top_k_access_count(int(pfns.size))
    return k_access / top if top > 0 else 0.0


@dataclass
class _EpochState:
    """Mutable pipeline state threaded through the stages.

    Cross-epoch fields (clock, trace budget, migration-time baseline,
    duration estimate, ratio list) persist for the whole run; the
    per-epoch fields are overwritten by each epoch's stages.
    """

    # run-scoped
    now_s: float = 0.0
    remaining: int = 0
    epoch: int = 0
    migration_us_prev: float = 0.0
    epoch_s_estimate: float = 0.0
    ratios: List[float] = field(default_factory=list)
    # epoch-scoped
    chunk: Optional[np.ndarray] = None
    lpages: Optional[np.ndarray] = None
    phys: Optional[np.ndarray] = None
    view: Optional[EpochView] = None
    decision: Optional[PolicyDecision] = None
    promoted_before: int = 0
    demoted_before: int = 0
    migration_us: float = 0.0
    perf: Optional[EpochPerf] = None
    # async-migration bookkeeping (None/0 in instant mode)
    tick: Optional[TickReport] = None
    enqueued_before: int = 0
    qdropped_before: int = 0


class Simulation:
    """One benchmark run under one page-migration policy.

    Args:
        workload: trace generator (typically from the registry).
        config: simulation parameters.
        policy: one of :data:`ALL_POLICIES`.
        m5_options: M5 stack configuration (M5 policies only).
        enable_wac: attach a WAC to the controller (needed for the
            sparsity experiments; off by default for speed).
        telemetry: a :class:`TelemetryBus` to publish per-epoch events
            to.  A fresh bus is created when omitted; either way a
            ring-buffer sink is attached so ``RunResult.timeline`` is
            always populated.
        timeline_capacity: ring-buffer size for the default timeline
            sink.
        obs: an :class:`~repro.obs.Observability` bundle (metrics
            registry + stage tracer).  Omitted, the shared disabled
            instance is used: every instrument is a no-op and the
            pipeline is bit-identical to the uninstrumented engine.
        nodes: optional ordered :class:`NodeSpec` hierarchy replacing
            the config's two-node DDR/CXL layout (the fleet passes
            per-tenant capacity shares here).  Pages cold-start by
            spilling down the sub-DRAM tiers in order; a two-node
            hierarchy whose CXL tier fits the footprint is
            bit-identical to the default layout.
    """

    def __init__(
        self,
        workload: SyntheticWorkload,
        config: Optional[SimConfig] = None,
        policy: str = "none",
        m5_options: Optional[M5Options] = None,
        enable_wac: bool = False,
        telemetry: Optional[TelemetryBus] = None,
        timeline_capacity: int = 4096,
        obs: Optional[Observability] = None,
        nodes: Optional[Sequence[NodeSpec]] = None,
        tenant: int = 0,
    ) -> None:
        self.workload = workload
        #: Owning fleet tenant; 0 for plain single runs.
        self.tenant = int(tenant)
        self.config = config if config is not None else SimConfig()
        if policy not in ALL_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {ALL_POLICIES}")
        self.policy_name = policy
        self.m5_options = m5_options if m5_options is not None else M5Options()
        self.obs = obs if obs is not None else NULL_OBS
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        self._timeline = self.telemetry.attach(RingBufferSink(timeline_capacity))

        spec = workload.spec
        # One knob selects the hot-path implementation everywhere:
        # vectorized array kernels ("batched", the default) or the
        # per-access reference loops ("reference").  Bit-identical by
        # construction; the reference engine is the differential-oracle
        # baseline and the bench_engine speedup denominator.
        batched = self.config.engine == "batched"
        if nodes is None:
            self.memory = TieredMemory(
                ddr_pages=self.config.ddr_pages,
                cxl_pages=max(self.config.cxl_pages, spec.footprint_pages),
                num_logical_pages=spec.footprint_pages,
                ddr_latency_ns=self.config.ddr_latency_ns,
                cxl_latency_ns=self.config.cxl_latency_ns,
                batched=batched,
                tenant=tenant,
            )
            self.memory.allocate_all(NodeKind.CXL)
        else:
            self.memory = TieredMemory(
                num_logical_pages=spec.footprint_pages,
                batched=batched,
                nodes=nodes,
                tenant=tenant,
            )
            self.memory.allocate_spill()
        self.mglru = MultiGenLru(spec.footprint_pages, batched=batched)
        self.engine = MigrationEngine(
            self.memory,
            cost_model=MigrationCostModel(self.config.migration_cost_us),
            mglru=self.mglru,
            batched=batched,
        )
        #: The asynchronous transactional migration subsystem; None in
        #: instant mode (the default), where decisions apply atomically.
        self.async_engine: Optional[AsyncMigrationEngine] = None
        self._write_rng = None
        self._promoter_dropped_prev = 0
        #: Replay workloads count wrap-arounds; the engine surfaces
        #: the total (RunResult.extra + replay.wrap telemetry) so a
        #: truncated capture never replays silently as periodic.
        self._tracks_wraps = hasattr(workload, "wraps")
        self._replay_wraps_prev = 0
        #: Epoch state restored by :meth:`load_state`; ``run`` resumes
        #: from it instead of starting fresh.
        self._resume_state: Optional[_EpochState] = None
        #: Checkpoints written over the simulation's lifetime
        #: (survives resume — the count keeps climbing).
        self.checkpoints_written = 0
        if self.config.migration_mode == "async":
            self.async_engine = AsyncMigrationEngine(
                self.engine,
                AsyncMigrationConfig.from_sim_config(self.config),
                metrics=self.obs.registry,
            )
            # Dirty-page model RNG, independent of the workload's
            # stream so instant-mode traces are untouched.
            self._write_rng = np.random.default_rng(
                np.random.SeedSequence([self.config.seed, 0xD117])
            )
        self.controller = CxlController(
            self.memory.cxl.region,
            access_latency_ns=self.config.cxl_latency_ns,
            metrics=self.obs.registry,
            batched=batched,
        )
        self.pac = PageAccessCounter(self.memory.cxl.region, batched=batched)
        self.controller.attach(self.pac)
        self.wac: Optional[WordAccessCounter] = None
        if enable_wac:
            self.wac = WordAccessCounter(self.memory.cxl.region, batched=batched)
            self.controller.attach(self.wac)

        self._baseline: Optional[MigrationPolicy] = None
        self._manager: Optional[M5Manager] = None
        if policy in BASELINE_POLICIES:
            self._baseline = self._make_baseline(policy)
        else:
            self._manager = self._make_m5(policy)
        node_params = None
        if nodes is not None:
            node_params = [
                (s.resolved_latency_ns, s.bandwidth_gbps)
                for s in self.memory.node_specs
            ]
        self.perf = PerformanceModel(self.config, spec, node_params=node_params)
        #: The pipeline's stage sequence; each stage is a callable
        #: ``stage(policy, state)`` run once per epoch, in order.
        self.stages = (
            self._stage_trace,
            self._stage_translate,
            self._stage_snoop,
            self._stage_policy,
            self._stage_migrate,
            self._stage_perf,
            self._stage_checkpoint,
        )
        self._stage_names = ("trace", "translate", "snoop", "policy",
                             "migrate", "perf", "checkpoint")
        #: Per-epoch invariant checking (see :mod:`repro.verify`); the
        #: checker rides the pipeline as an extra stage so the default
        #: (unchecked) loop stays exactly the frozen-golden sequence.
        self.checker = None
        if self.config.check_invariants:
            from repro.verify import InvariantChecker

            self.checker = InvariantChecker(self)
            self.stages += (self._stage_verify,)
            self._stage_names += ("verify",)
        #: The live-observability stack (see :mod:`repro.obs.live`):
        #: a per-epoch ring recorder and an optional SLO watchdog,
        #: riding the pipeline as one appended ``record`` stage — like
        #: the checker, so the disabled path stays exactly the frozen
        #: golden sequence.  Both need the metrics registry; with
        #: metrics off they stay None and no stage is appended.
        self.recorder: Optional[TimeSeriesRecorder] = None
        self.watchdog: Optional[SloWatchdog] = None
        record_spec = self.config.record_series
        if self.config.slo_rules and not record_spec:
            # Watchdog rules read recorder columns, so rules imply
            # recording (the curated default set).
            record_spec = "default"
        if record_spec and self.obs.metrics_on:
            self.recorder = TimeSeriesRecorder(
                self.obs.registry,
                series=parse_series_spec(record_spec),
                capacity=self.config.record_epochs,
            )
            if self.config.slo_rules:
                self.watchdog = SloWatchdog(
                    load_rules(self.config.slo_rules, self.config),
                    self.recorder,
                    bus=self.telemetry,
                )
            self.stages += (self._stage_record,)
            self._stage_names += ("record",)
        #: Periodic state persistence (checkpoint/resume): every
        #: ``checkpoint_every`` epochs the full simulation state is
        #: pickled atomically to ``checkpoint_path``.  Appended last so
        #: a checkpoint always captures a fully-finished epoch — and,
        #: like the other optional stages, the disabled path stays
        #: exactly the frozen golden sequence.
        if self.config.checkpoint_every > 0 and self.config.checkpoint_path:
            self.stages += (self._stage_persist,)
            self._stage_names += ("persist",)
        self._register_engine_metrics()
        self.result: Optional[RunResult] = None

    def _register_engine_metrics(self) -> None:
        """Declare the engine's instruments (no-ops when obs is off).

        The labelled series are resolved once here so the per-epoch
        hot path does a plain attribute call, never a dict lookup.
        """
        reg = self.obs.registry
        self._m_epochs = reg.counter(
            "sim_epochs_total", "Pipeline epochs executed"
        )
        accesses = reg.counter(
            "sim_accesses_total", "Demand accesses by serving tier",
            labels=("tier",),
        )
        self._mx_acc = tuple(
            accesses.labels(tier=node.name) for node in self.memory.nodes
        )
        self._mx_acc_ddr = self._mx_acc[0]
        self._mx_acc_cxl = self._mx_acc[self.memory.node_index(NodeKind.CXL)]
        migrated = reg.counter(
            "sim_migrated_pages_total", "Pages moved by the migrate stage",
            labels=("direction",),
        )
        self._mx_promoted = migrated.labels(direction="promote")
        self._mx_demoted = migrated.labels(direction="demote")
        tier_pages = reg.gauge(
            "tier_resident_pages", "Resident pages per tier at run end",
            labels=("tier",),
        )
        self._mx_pages = tuple(
            tier_pages.labels(tier=node.name) for node in self.memory.nodes
        )
        self._mx_pages_ddr = self._mx_pages[0]
        self._mx_pages_cxl = self._mx_pages[self.memory.node_index(NodeKind.CXL)]
        self._m_sim_seconds = reg.gauge(
            "sim_time_seconds", "Simulated clock at run end"
        )
        self._m_ring_dropped = reg.gauge(
            "telemetry_ring_dropped_total",
            "Timeline events evicted from the ring-buffer sink",
        )
        stage_seconds = reg.histogram(
            "pipeline_stage_seconds", "Wall-clock spent per pipeline stage",
            labels=("stage",),
        )
        self._stage_obs = tuple(
            (f"stage.{name}", stage_seconds.labels(stage=name))
            for name in self._stage_names
        )

    # ------------------------------------------------------------------
    # construction helpers

    def _make_baseline(self, name: str) -> MigrationPolicy:
        cfg = self.config
        batched = cfg.engine == "batched"
        if name == "none":
            return NoMigration(self.memory, batched=batched)
        if name == "anb":
            policy = AutoNumaBalancing(self.memory, batched=batched)
            # Unmap/fault volume scales with the page grouping: one
            # model-page fault stands for footprint_scale real faults.
            policy.costs.scale = cfg.footprint_scale
            return policy
        if name == "damon":
            # DAMON's sampling rate is footprint-independent, so its
            # costs stay unscaled.  Its statistical access-bit check
            # needs the real per-page rate: a model count undercounts
            # real accesses by the trace_subsample factor (the page
            # grouping cancels between count and group size).
            return Damon(
                self.memory, access_scale=cfg.trace_subsample, batched=batched
            )
        if name == "tpp":
            policy = Tpp(self.memory, batched=batched)
            policy.costs.scale = cfg.footprint_scale  # fault volume
            return policy
        if name == "pte-scan":
            policy = PteScanner(self.memory, batched=batched)
            policy.costs.scale = cfg.footprint_scale  # scans every PTE
            return policy
        if name == "pebs":
            policy = PebsSampler(self.memory, batched=batched)
            policy.costs.scale = cfg.time_dilation  # samples ∝ accesses
            return policy
        raise ValueError(name)

    def _make_m5(self, name: str) -> M5Manager:
        opts = self.m5_options
        batched = self.config.engine == "batched"
        hpt = make_hpt(
            k=opts.k_hpt,
            algorithm=opts.algorithm,
            num_counters=opts.num_counters,
            batched=batched,
        )
        self.controller.attach(hpt)
        hwt = None
        mode = {
            "m5-hpt": HPT_ONLY,
            "m5-hwt": HWT_DRIVEN,
            "m5-hpt+hwt": HPT_DRIVEN,
        }[name]
        if opts.nominator_mode != HPT_ONLY and name == "m5-hpt":
            mode = opts.nominator_mode
        if mode != HPT_ONLY:
            hwt = make_hwt(
                k=opts.k_hwt,
                algorithm=opts.algorithm,
                num_counters=opts.num_counters,
                batched=batched,
            )
            self.controller.attach(hwt)
        nominator = Nominator(mode=mode, min_hot_words=opts.min_hot_words)
        elector = Elector(
            f_default=opts.f_default,
            fscale=power_fscale(opts.fscale_n),
            min_period_s=opts.min_period_s,
            max_period_s=opts.max_period_s,
            improvement_epsilon=opts.improvement_epsilon,
        )
        manager = M5Manager(
            self.memory,
            self.engine,
            hpt=hpt,
            hwt=hwt,
            nominator=nominator,
            elector=elector,
            batch_limit=self.config.migration_batch,
            dry_run=not self.config.migrate,
            async_engine=self.async_engine,
            metrics=self.obs.registry,
        )
        manager.name = name
        return manager

    # ------------------------------------------------------------------

    @property
    def epoch_policy(self) -> EpochPolicy:
        """The active policy behind the pipeline's uniform interface.

        Resolved lazily so callers that swap ``_manager`` (custom M5
        stacks, e.g. ``examples/policy_design.py``) are honoured.
        """
        return self._manager if self._manager is not None else self._baseline

    @property
    def hot_pfns(self) -> List[int]:
        return list(self.epoch_policy.hot_pfns)

    def _k_cap(self) -> int:
        """The paper's K cap: ~1/16 of the footprint (§4.1)."""
        return max(1, self.workload.spec.footprint_pages // 16)

    # ------------------------------------------------------------------
    # pipeline stages (each runs once per epoch, in `self.stages` order)

    def _stage_trace(self, policy: EpochPolicy, st: _EpochState) -> None:
        """Emit the epoch's address chunk from the workload."""
        take = min(st.remaining, self.config.chunk_size)
        st.remaining -= take
        st.chunk = self.workload.chunk(take)
        st.lpages = (st.chunk >> np.uint64(PAGE_SHIFT)).astype(np.int64)
        if self._tracks_wraps:
            wraps = self.workload.wraps
            if wraps > self._replay_wraps_prev:
                if self.telemetry.active:
                    self.telemetry.publish(
                        "replay.wrap",
                        st.epoch,
                        st.now_s,
                        wraps=wraps - self._replay_wraps_prev,
                        total_wraps=wraps,
                    )
                self._replay_wraps_prev = wraps
        if self.async_engine is not None:
            # Later stages (Promoter, the tick) tag queue entries with
            # the current epoch; deltas feed the enqueue telemetry.
            self.async_engine.current_epoch = st.epoch
            st.tick = None
            st.enqueued_before = self.async_engine.stats.enqueued
            st.qdropped_before = self.async_engine.stats.dropped_queue_full

    def _stage_translate(self, policy: EpochPolicy, st: _EpochState) -> None:
        """Translate virtual addresses; tiers count the traffic."""
        self.memory.begin_epoch(1.0)
        self.memory.record_epoch_accesses(st.lpages)
        st.phys = self.memory.translate(st.chunk)

    def _stage_snoop(self, policy: EpochPolicy, st: _EpochState) -> None:
        """CXL controller (PAC/WAC/trackers) and MGLRU observe."""
        self.controller.serve(st.phys)
        self.mglru.record_accesses(st.lpages)

    def _stage_policy(self, policy: EpochPolicy, st: _EpochState) -> None:
        """The policy observes the epoch and decides."""
        st.view = EpochView(
            epoch=st.epoch,
            lpages=st.lpages,
            now_s=st.now_s,
            epoch_s=st.epoch_s_estimate,
            migrate=self.config.migrate,
            batch_limit=self.config.migration_batch,
            memory=self.memory,
            mglru=self.mglru,
        )
        st.promoted_before = self.engine.stats.promoted
        st.demoted_before = self.engine.stats.demoted
        st.decision = policy.on_epoch(st.view)
        if self.telemetry.active:
            self.telemetry.publish(
                "policy",
                st.epoch,
                st.now_s,
                overhead_us=st.decision.overhead_us,
                nominated=st.decision.nominated,
            )
        if self._manager is not None and self.telemetry.active:
            dropped = self._manager.promoter.proc_file.dropped
            if dropped > self._promoter_dropped_prev:
                self.telemetry.publish(
                    "promoter.drop",
                    st.epoch,
                    st.now_s,
                    dropped=dropped - self._promoter_dropped_prev,
                    total_dropped=dropped,
                )
                self._promoter_dropped_prev = dropped

    def _epoch_dirty_pages(self, st: _EpochState) -> np.ndarray:
        """Pages written inside this epoch's migration copy windows.

        The dirty-recheck races only against stores concurrent with a
        copy, so each access is marked dirty-in-window with probability
        ``write_fraction * dirty_window_frac`` (see SimConfig).
        """
        p = self.config.write_fraction * self.config.dirty_window_frac
        if p <= 0.0 or st.lpages is None or st.lpages.size == 0:
            return np.empty(0, dtype=np.int64)
        mask = self._write_rng.random(st.lpages.size) < p
        return np.unique(st.lpages[mask])

    def _migrate_async(self, policy: EpochPolicy, st: _EpochState) -> None:
        """Async mode: enqueue the decision, then run one queue tick."""
        eng = self.async_engine
        if st.decision.promotions.size:
            eng.enqueue_promotions(st.decision.promotions)
        victims = policy.demotion_victims(st.view)
        if victims.size:
            eng.enqueue_demotions(victims)
        # The transactional tick is a child span under stage.migrate,
        # so migration transactions show up nested in the flame table
        # and the Chrome trace.
        with self.obs.tracer.span("migrate.tick") as span:
            st.tick = eng.tick(
                st.epoch, self._epoch_dirty_pages(st),
                epoch_s=st.epoch_s_estimate,
            )
            span.set(
                attempted=st.tick.attempted,
                committed=st.tick.committed,
                aborted=st.tick.aborted,
            )
        if not self.telemetry.active:
            return
        report = st.tick
        enqueued = eng.stats.enqueued - st.enqueued_before
        dropped_full = eng.stats.dropped_queue_full - st.qdropped_before
        if enqueued or dropped_full:
            self.telemetry.publish(
                "migration.enqueue",
                st.epoch,
                st.now_s,
                enqueued=enqueued,
                dropped_full=dropped_full,
                pending=eng.pending,
            )
        if report.committed:
            self.telemetry.publish(
                "migration.commit",
                st.epoch,
                st.now_s,
                committed=report.committed,
                promoted=report.promoted,
                demoted=report.demoted,
            )
        if report.aborted:
            self.telemetry.publish(
                "migration.abort",
                st.epoch,
                st.now_s,
                aborted=report.aborted,
                dirty=report.aborted_dirty,
                injected=report.aborted_injected,
                enomem=report.aborted_enomem,
            )
        if report.retried or report.dropped_retries:
            self.telemetry.publish(
                "migration.retry",
                st.epoch,
                st.now_s,
                retried=report.retried,
                dropped=report.dropped_retries,
            )

    def _stage_migrate(self, policy: EpochPolicy, st: _EpochState) -> None:
        """Apply the decision: promotions, then watermark demotions.

        Instant mode applies the decision atomically; async mode feeds
        the transactional subsystem's bounded queue and runs one tick.
        """
        if st.view.migrate:
            if self.async_engine is not None:
                self._migrate_async(policy, st)
            else:
                if st.decision.promotions.size:
                    self.engine.promote(st.decision.promotions)
                victims = policy.demotion_victims(st.view)
                if victims.size:
                    self.engine.demote(victims)
        self.mglru.age()
        promoted = self.engine.stats.promoted - st.promoted_before
        demoted = self.engine.stats.demoted - st.demoted_before
        self._mx_promoted.inc(promoted)
        self._mx_demoted.inc(demoted)
        if self.telemetry.active and (promoted or demoted):
            self.telemetry.publish(
                "migrate", st.epoch, st.now_s, promoted=promoted, demoted=demoted
            )

    def _stage_perf(self, policy: EpochPolicy, st: _EpochState) -> None:
        """Convert the epoch's traffic and overheads into time."""
        st.migration_us = self.engine.stats.time_us - st.migration_us_prev
        st.migration_us_prev = self.engine.stats.time_us
        n_ddr = self.memory.ddr.accesses_this_epoch
        n_cxl = self.memory.cxl.accesses_this_epoch
        deep = self.memory.num_nodes > 2
        if deep:
            node_counts = [n.accesses_this_epoch for n in self.memory.nodes]
            for mx, count in zip(self._mx_acc, node_counts):
                mx.inc(count)
        else:
            node_counts = None
            self._mx_acc_ddr.inc(n_ddr)
            self._mx_acc_cxl.inc(n_cxl)
        st.perf = self.perf.record_epoch(
            n_ddr,
            n_cxl,
            st.decision.overhead_us,
            st.migration_us,
            migration_bytes=(
                float(st.tick.copy_bytes) if st.tick is not None else 0.0
            ),
            node_counts=node_counts,
        )
        st.now_s += st.perf.total_s
        st.epoch_s_estimate = st.perf.total_s
        if self.telemetry.active:
            fields: Dict[str, float] = dict(
                epoch_s=st.perf.total_s,
                n_ddr=n_ddr,
                n_cxl=n_cxl,
                nr_pages_ddr=self.memory.nr_pages(NodeKind.DDR),
                nr_pages_cxl=self.memory.nr_pages(NodeKind.CXL),
                promoted=self.engine.stats.promoted - st.promoted_before,
                demoted=self.engine.stats.demoted - st.demoted_before,
                overhead_us=st.decision.overhead_us,
                migration_us=st.migration_us,
            )
            if deep:
                # Extra tiers ride along under name-derived keys; the
                # two-node event shape stays frozen.
                for i, node in enumerate(self.memory.nodes[2:], start=2):
                    fields[f"n_{node.name}"] = node.accesses_this_epoch
                    fields[f"nr_pages_{node.name}"] = self.memory.nr_pages_at(i)
            self.telemetry.publish("epoch", st.epoch, st.now_s, **fields)

    def _stage_verify(self, policy: EpochPolicy, st: _EpochState) -> None:
        """Run the invariant catalogue against the finished epoch."""
        self.checker.check_epoch(st)

    def _stage_record(self, policy: EpochPolicy, st: _EpochState) -> None:
        """Sample the selected metric families into the ring recorder
        and let the SLO watchdog judge the fresh row."""
        self.recorder.sample(
            st.epoch,
            st.now_s,
            extra={
                "epoch_s": st.perf.total_s if st.perf is not None else 0.0
            },
        )
        if self.watchdog is not None:
            self.watchdog.evaluate(st.epoch, st.now_s)

    def _stage_checkpoint(self, policy: EpochPolicy, st: _EpochState) -> None:
        """Snapshot the access-count ratio at measurement points."""
        if st.epoch not in self._checkpoint_epochs or self.config.migrate:
            return
        ratio = access_count_ratio(self.pac, policy.hot_pfns, self._k_cap())
        st.ratios.append(ratio)
        if self.telemetry.active:
            self.telemetry.publish("ratio", st.epoch, st.now_s, ratio=ratio)

    def _stage_persist(self, policy: EpochPolicy, st: _EpochState) -> None:
        """Checkpoint the full simulation state every K epochs."""
        if st.epoch % self.config.checkpoint_every != 0:
            return
        self.save_state(self.config.checkpoint_path, st)

    # ------------------------------------------------------------------
    # checkpoint / resume

    def save_state(self, path: "str | os.PathLike", st: _EpochState) -> None:
        """Serialise the complete run state for a later bit-identical
        resume.

        One pickle captures the whole object graph — workload RNGs,
        tiers and page maps, trackers, MGLRU, the async migration
        queue, the performance model's running totals, the telemetry
        ring, the metrics registry, and the epoch state — so every
        cross-reference (the policy's view of the tiers, the
        controller's attached trackers) survives intact.  The write is
        atomic and durable (tmp + ``os.fsync`` + ``os.replace``): a
        crash mid-checkpoint leaves the previous checkpoint, never a
        torn file, and power loss after the replace cannot publish an
        empty one.

        Checkpointing a run with *tracing* enabled is refused: spans
        hold wall-clock state that cannot meaningfully resume.  The
        metrics registry, by contrast, checkpoints fine — counters
        continue exactly where they stopped.
        """
        if self.obs.tracing_on:
            raise CheckpointError(
                "cannot checkpoint a run with tracing enabled; spans "
                "hold wall-clock state that does not resume (metrics "
                "and telemetry checkpoint fine)"
            )
        # Deliberately no telemetry event: checkpointing must leave
        # the run's observable results (timeline, metrics, RunResult)
        # bit-identical to a run without it, so a resumed run can be
        # compared against *any* uninterrupted twin.  Cadence is
        # visible via :attr:`checkpoints_written` instead.
        self.checkpoints_written += 1
        payload = {
            "format": CHECKPOINT_FORMAT_VERSION,
            "benchmark": self.workload.spec.name,
            "policy": self.policy_name,
            "epoch": st.epoch,
            "sim": self,
            "epoch_state": st,
        }
        path = os.fspath(path)
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except Exception:
            with contextlib.suppress(OSError):
                os.remove(tmp)
            raise

    @classmethod
    def load_state(cls, path: "str | os.PathLike") -> "Simulation":
        """Rehydrate a checkpointed simulation, ready to :meth:`run`.

        The returned simulation continues from the checkpointed epoch;
        running it to completion produces a ``RunResult`` (timeline
        and metrics included) bit-identical to the uninterrupted run
        — the ``resume`` oracle in ``repro verify`` enforces exactly
        this.
        """
        with open(os.fspath(path), "rb") as fh:
            payload = pickle.load(fh)
        if not isinstance(payload, dict) or "sim" not in payload:
            raise CheckpointError(f"{path} is not a simulation checkpoint")
        version = payload.get("format")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format {version!r} is not supported "
                f"(this build reads format {CHECKPOINT_FORMAT_VERSION}); "
                "re-create the checkpoint with this version"
            )
        sim: "Simulation" = payload["sim"]
        sim._resume_state = payload["epoch_state"]
        return sim

    @property
    def resumed_epoch(self) -> Optional[int]:
        """Epoch the pending resume starts after (None = fresh run)."""
        if self._resume_state is None:
            return None
        return self._resume_state.epoch

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        policy = self.epoch_policy
        if self._resume_state is not None:
            st, self._resume_state = self._resume_state, None
        else:
            st = self._initial_state()
        if self.obs.enabled:
            self._run_instrumented(policy, st)
        else:
            while st.remaining > 0:
                self.step_epoch(st, policy)
        return self.finalize(st)

    def _initial_state(self) -> _EpochState:
        """Fresh run-scoped pipeline state (one per run)."""
        cfg = self.config
        self._checkpoint_epochs = set(
            np.linspace(1, cfg.num_epochs, cfg.checkpoints, dtype=int).tolist()
        )
        return _EpochState(
            remaining=cfg.total_accesses,
            # Nominal epoch duration estimate for the first epoch;
            # later epochs use the previous epoch's measured duration.
            epoch_s_estimate=(
                cfg.chunk_size
                * (self.perf.compute_per_access_s + self.perf.cxl_stall_s)
                * self.perf.dilation
                / self.perf.cores
            ),
        )

    def step_epoch(
        self, st: _EpochState, policy: Optional[EpochPolicy] = None
    ) -> None:
        """Advance the pipeline by exactly one epoch.

        The fleet drives tenants in lockstep through this entry point;
        ``run`` is precisely ``step_epoch`` until the trace budget is
        spent, then :meth:`finalize`.
        """
        if policy is None:
            policy = self.epoch_policy
        st.epoch += 1
        # No-op with observability off; with it on, externally driven
        # runs (fleet tenants, service streams) must count epochs the
        # same way the instrumented run loop does, or a checkpoint
        # taken under one driver diverges from the other.
        self._m_epochs.inc()
        for stage in self.stages:
            stage(policy, st)

    def finalize(self, st: _EpochState) -> RunResult:
        """Assemble the RunResult after the epoch loop finishes."""
        spec = self.workload.spec
        policy = self.epoch_policy
        for i, mx in enumerate(self._mx_pages):
            mx.set(self.memory.nr_pages_at(i))
        self._m_sim_seconds.set(st.now_s)
        self._m_ring_dropped.set(self._timeline.dropped)
        self.result = RunResult(
            benchmark=spec.name,
            policy=self.policy_name,
            execution_time_s=self.perf.execution_time_s,
            app_time_s=self.perf.app_time_s,
            overhead_time_s=self.perf.overhead_time_s,
            migration_time_s=self.perf.migration_time_s,
            p99_latency_us=(
                self.perf.p99_latency_us() if spec.latency_sensitive else None
            ),
            hot_pfns=self.hot_pfns,
            ratio_checkpoints=st.ratios,
            promoted=self.engine.stats.promoted,
            demoted=self.engine.stats.demoted,
            nr_pages_ddr=self.memory.nr_pages(NodeKind.DDR),
            nr_pages_cxl=self.memory.nr_pages(NodeKind.CXL),
            overhead_events=policy.overhead_events(),
            timeline=self._timeline.events,
            timeline_dropped=self._timeline.dropped,
        )
        if self.memory.num_nodes > 2:
            for i, node in enumerate(self.memory.nodes[2:], start=2):
                self.result.extra[f"nr_pages_{node.name}"] = float(
                    self.memory.nr_pages_at(i)
                )
        if self.async_engine is not None:
            self.result.extra.update(self.async_engine.stats.as_extra())
            self.result.extra["mig_pending"] = float(self.async_engine.pending)
        if self.checker is not None:
            self.result.extra["invariant_checks"] = float(self.checker.checks_run)
            self.result.extra["invariant_violations"] = float(
                len(self.checker.violations)
            )
        if self.recorder is not None:
            self.result.extra["recorded_epochs"] = float(self.recorder.rows)
        if self.watchdog is not None:
            self.result.extra["slo_breaches"] = float(
                self.watchdog.breaches_total
            )
        if self._tracks_wraps:
            self.result.extra["replay_wraps"] = float(self.workload.wraps)
        if self.obs.metrics_on:
            self.result.metrics = self.obs.snapshot()
        return self.result

    def _run_instrumented(self, policy: EpochPolicy, st: _EpochState) -> None:
        """The epoch loop with stage spans and stage-latency metrics.

        Kept as a separate loop so the observability-off path stays
        exactly the seed loop (no per-stage clock reads at all).  The
        ``run`` root span wraps the whole loop; per-stage spans are its
        children, so the flame table's stage rows account for ≥95% of
        the measured run wall-clock.
        """
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.sim_clock = SimClock(st)
            if tracer.bus is None:
                tracer.bus = self.telemetry
        with tracer.span("run"):
            while st.remaining > 0:
                st.epoch += 1
                tracer.current_epoch = st.epoch
                self._m_epochs.inc()
                for (name, hist), stage in zip(self._stage_obs, self.stages):
                    t0 = wall_clock()
                    with tracer.span(name):
                        stage(policy, st)
                    hist.observe(wall_clock() - t0)


def run_policy(
    workload: SyntheticWorkload,
    policy: str,
    config: Optional[SimConfig] = None,
    m5_options: Optional[M5Options] = None,
    enable_wac: bool = False,
    telemetry: Optional[TelemetryBus] = None,
    obs: Optional[Observability] = None,
) -> RunResult:
    """Convenience one-shot runner."""
    sim = Simulation(
        workload,
        config=config,
        policy=policy,
        m5_options=m5_options,
        enable_wac=enable_wac,
        telemetry=telemetry,
        obs=obs,
    )
    return sim.run()
