"""Simulation configuration shared by the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.memory.tiers import (
    CXL_LATENCY_NS,
    CXL_POOLED_LATENCY_NS,
    DDR_LATENCY_NS,
)
from repro.workloads.registry import (
    PAGES_PER_GB,
    cxl_capacity_pages,
    ddr_capacity_pages,
)


@dataclass
class SimConfig:
    """Knobs of one simulated run.

    Attributes:
        total_accesses: DRAM accesses to simulate (the trace length).
        chunk_size: accesses per epoch (the engine's time step).
        ddr_pages / cxl_pages: tier capacities; defaults reproduce the
            paper's 3GB-DDR-cap / 8GB-CXL setup at the registry's
            scale factor.
        ddr_latency_ns / cxl_latency_ns: load-to-use latencies (the
            §7.2 pair: 100ns vs 270ns).
        mlp: memory-level parallelism — outstanding-miss overlap
            dividing the per-access stall.
        ipc: core instructions per cycle for the compute component.
        cpu_ghz: core frequency (paper: 2.1 GHz Xeon 6430).
        migrate: False runs identification-only (the §4.1 S1 mode
            where policies record hot pages but never migrate).
        migration_batch: max pages migrated per epoch.
        migration_mode: "instant" (atomic flat-cost migration, the
            default) or "async" (the transactional subsystem — see the
            ``migration_*`` knobs below).
        seed: RNG seed.
        checkpoints: number of evenly spaced measurement points at
            which access-count ratios are snapshotted (the paper
            measures at 10 random execution points).
    """

    total_accesses: int = 2_000_000
    chunk_size: int = 65_536
    footprint_scale: float = 0.0  # 0 = derive from pages_per_gb
    trace_subsample: float = 16.0
    time_dilation: float = 0.0  # 0 = footprint_scale * trace_subsample
    ddr_pages: int = field(default_factory=ddr_capacity_pages)
    cxl_pages: int = field(default_factory=cxl_capacity_pages)
    ddr_latency_ns: float = DDR_LATENCY_NS
    cxl_latency_ns: float = CXL_LATENCY_NS
    mlp: float = 4.0
    ipc: float = 1.5
    cpu_ghz: float = 2.1
    #: Per-node bandwidth ceilings in GB/s (0 = unlimited, the default
    #: latency-only model).  Table 2's DDR side is 4x DDR5-4800
    #: (~153GB/s); a CXL x16 PCIe5 link is ~64GB/s.
    ddr_bandwidth_gbps: float = 0.0
    cxl_bandwidth_gbps: float = 0.0
    migrate: bool = True
    migration_batch: int = 512
    migration_cost_us: float = 54.0
    #: ``"instant"`` applies decisions atomically at the paper's flat
    #: 54 µs/page cost; ``"async"`` routes them through the
    #: transactional subsystem in ``repro.migration`` (bounded queue,
    #: in-flight budgets, dirty-recheck aborts, retry/backoff), with
    #: migration copy traffic charged as contention against demand
    #: traffic instead of a flat cost.
    migration_mode: str = "instant"
    #: Async mode: max page copies in flight per epoch.
    migration_inflight_budget: int = 128
    #: Async mode: bounded queue capacity (overflow drops + counts).
    migration_queue_capacity: int = 4096
    #: Async mode: injected mid-copy abort probability (robustness
    #: testing hook; 0 disables injection).
    migration_abort_rate: float = 0.0
    #: Async mode: aborted requests retry this many times, then drop.
    migration_max_retries: int = 3
    #: Async mode: base retry backoff; retry n waits
    #: ``backoff * 2**(n-1)`` epochs.
    migration_backoff_epochs: int = 1
    #: Async mode: migration copy-engine bandwidth in GB/s (0 = only
    #: the in-flight budget throttles the queue).
    migration_copy_gbps: float = 0.0
    #: Async mode: what a full fast tier does to a promotion —
    #: ``"demote-first"`` evicts an MGLRU victim to make room (TPP's
    #: discipline), ``"abort"`` fails the transaction with ENOMEM.
    migration_enomem_policy: str = "demote-first"
    #: Async mode: kernel CPU cost per committed page (the unmap/
    #: remap/TLB share of the 54 µs; the copy itself is charged as
    #: memory traffic).
    migration_remap_us: float = 12.0
    #: Async mode: fraction of accesses that are stores (drives the
    #: dirty-page model behind the Nomad-style recheck).
    write_fraction: float = 0.3
    #: Async mode: fraction of an epoch's writes that land inside a
    #: transaction's copy window (the recheck races only against
    #: writes concurrent with the copy, not the whole epoch).
    dirty_window_frac: float = 0.01
    #: Fraction of migration work landing on the application's
    #: critical path.  Migration runs in kernel threads that overlap
    #: the benchmark's other instances; only TLB shootdowns, locks,
    #: and the straggler instance's own faults serialise with it.
    migration_overlap: float = 0.3
    #: Run the :mod:`repro.verify` invariant catalogue after every
    #: epoch (counter conservation, tier conservation, tracker/queue
    #: bounds, non-negative perf times).  Off by default: the unchecked
    #: pipeline stays bit-identical to the frozen goldens; on, a
    #: violation aborts the run with an ``InvariantViolation``.
    check_invariants: bool = False
    #: Epoch hot-path implementation: ``"batched"`` flows each chunk
    #: through vectorized array kernels end to end; ``"reference"``
    #: keeps the per-access Python loops.  Results are bit-identical
    #: (enforced by the ``engine``/``kernels`` oracles in
    #: :mod:`repro.verify`); the reference path exists for goldens,
    #: debugging, and the ``tools/bench_engine.py`` speedup baseline.
    engine: str = "batched"
    #: Serve ``/metrics`` + ``/healthz`` + ``/snapshot.json`` from an
    #: in-process HTTP daemon thread while the run executes (see
    #: :mod:`repro.obs.live`).  Off by default: no thread, no socket.
    serve: bool = False
    #: TCP port for ``serve`` (0 binds an ephemeral port, printed at
    #: startup).
    serve_port: int = 0
    #: Metric families the per-epoch ring recorder samples: empty
    #: disables the recorder stage entirely (the seed pipeline),
    #: ``"default"`` selects the curated low-cost set, ``"all"`` every
    #: family, or a comma-separated list of family names.
    record_series: str = ""
    #: Ring capacity of the recorder, in epochs (rows); memory is
    #: bounded at ``record_epochs * 8`` bytes per recorded column.
    record_epochs: int = 4096
    #: SLO watchdog rules: empty disables the watchdog, ``"default"``
    #: loads the built-in catalogue (queue saturation, epoch-duration
    #: p99, invariant violations, bandwidth starvation), else a path
    #: to a JSON rule file (see :mod:`repro.obs.slo`).
    slo_rules: str = ""
    #: Persist the full simulation state every this many epochs
    #: (0 disables checkpointing entirely — the seed pipeline).
    #: Resuming from a checkpoint reproduces the uninterrupted run
    #: bit-identically (the ``resume`` oracle in :mod:`repro.verify`).
    checkpoint_every: int = 0
    #: Destination file for periodic checkpoints (atomically replaced
    #: on every write).  Required when ``checkpoint_every > 0``.
    checkpoint_path: str = ""
    seed: int = 0
    checkpoints: int = 10
    pages_per_gb: int = PAGES_PER_GB

    def __post_init__(self) -> None:
        if self.total_accesses <= 0 or self.chunk_size <= 0:
            raise ValueError("trace sizes must be positive")
        if self.mlp <= 0 or self.ipc <= 0 or self.cpu_ghz <= 0:
            raise ValueError("performance parameters must be positive")
        if self.checkpoints < 1:
            raise ValueError("need at least one checkpoint")
        if self.time_dilation < 0 or self.footprint_scale < 0:
            raise ValueError("scale factors must be non-negative")
        if self.trace_subsample < 1:
            raise ValueError("trace_subsample must be >= 1")
        if self.migration_mode not in ("instant", "async"):
            raise ValueError(
                f"migration_mode must be 'instant' or 'async', "
                f"got {self.migration_mode!r}"
            )
        if self.migration_enomem_policy not in ("demote-first", "abort"):
            raise ValueError(
                "migration_enomem_policy must be 'demote-first' or 'abort'"
            )
        if self.engine not in ("reference", "batched"):
            raise ValueError(
                f"engine must be 'reference' or 'batched', got {self.engine!r}"
            )
        if self.migration_inflight_budget < 1:
            raise ValueError("migration_inflight_budget must be positive")
        if not 0.0 <= self.migration_abort_rate <= 1.0:
            raise ValueError("migration_abort_rate must be in [0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0.0 <= self.dirty_window_frac <= 1.0:
            raise ValueError("dirty_window_frac must be in [0, 1]")
        if not 0 <= self.serve_port <= 65535:
            raise ValueError("serve_port must be a TCP port (0-65535)")
        if self.record_epochs < 1:
            raise ValueError("record_epochs must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.checkpoint_every > 0 and not self.checkpoint_path:
            raise ValueError(
                "checkpoint_every > 0 requires a checkpoint_path"
            )
        # Two scale-down factors relate the model to the real system:
        #
        # * footprint_scale — each model page groups this many real
        #   4KB pages (real pages per GB = 262144 vs the registry's
        #   scaled pages_per_gb), and carries their combined accesses;
        # * trace_subsample — the model trace keeps 1 of this many
        #   real accesses (systematic time sampling).
        #
        # time_dilation = footprint_scale * trace_subsample: each model
        # access stands for that many real accesses, so dilating time
        # by it preserves real wall-clock — every policy keeps its
        # real-world cadence (ANB scan periods, DAMON intervals,
        # Elector periods) and real per-event CPU costs.
        if self.footprint_scale == 0:
            self.footprint_scale = 262144 / self.pages_per_gb
        if self.time_dilation == 0:
            self.time_dilation = self.footprint_scale * self.trace_subsample

    @property
    def num_epochs(self) -> int:
        return -(-self.total_accesses // self.chunk_size)


@dataclass
class FleetConfig:
    """Knobs of one multi-tenant fleet run (see ``docs/fleet.md``).

    A fleet runs ``tenants`` independent workloads in lockstep epochs
    on a shared tier hierarchy: each tenant gets a weighted capacity
    share of every tier (carved into a private physical-address
    window), and the tiers' channel bandwidth is arbitrated each
    epoch by the QoS model in :mod:`repro.sim.perf`.  Per-run engine
    knobs (trace length, engine, seed, bandwidth ceilings, ...) stay
    on :class:`SimConfig`; this object holds only the fleet shape.

    Attributes:
        tenants: number of co-located workloads.
        tiers: tier hierarchy depth — 2 (DDR + CXL) or 3 (DDR + CXL +
            pooled CXL behind a switch).
        bench: comma-separated benchmark names, assigned round-robin
            over tenants.
        policy: page-migration policy every tenant runs.
        weights: comma-separated per-tenant QoS weights (empty =
            equal); cycled over tenants like ``bench``.
        qos: True arbitrates bandwidth by weighted max-min fairness;
            False degrades to proportional sharing (every tenant slows
            by the same factor when the channel saturates).
        pooled_capacity_gb: size of the shared pooled tier (3-tier
            fleets only).
        pooled_latency_ns: load-to-use latency of the pooled tier.
        pooled_bandwidth_gbps: pooled channel ceiling (0 = unlimited).
        chain_headroom_frac: fraction of each tenant's CXL share the
            demotion chain keeps free by demoting cold pages to the
            pooled tier (the DRAM→CXL→pooled chain's middle link).
        chain_pull_budget: max pooled pages pulled back up to CXL per
            tenant-epoch when they are re-accessed (0 disables
            pull-ups).
    """

    tenants: int = 3
    tiers: int = 3
    bench: str = "mcf"
    policy: str = "m5-hpt"
    weights: str = ""
    qos: bool = True
    pooled_capacity_gb: float = 16.0
    pooled_latency_ns: float = CXL_POOLED_LATENCY_NS
    pooled_bandwidth_gbps: float = 0.0
    chain_headroom_frac: float = 0.02
    chain_pull_budget: int = 64

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError("a fleet needs at least one tenant")
        if self.tiers not in (2, 3):
            raise ValueError("tiers must be 2 (DDR+CXL) or 3 (+pooled)")
        if not self.bench.strip():
            raise ValueError("bench must name at least one benchmark")
        if self.pooled_capacity_gb <= 0 and self.tiers == 3:
            raise ValueError("pooled_capacity_gb must be positive")
        if self.pooled_latency_ns <= 0:
            raise ValueError("pooled_latency_ns must be positive")
        if not 0.0 <= self.chain_headroom_frac < 1.0:
            raise ValueError("chain_headroom_frac must be in [0, 1)")
        if self.chain_pull_budget < 0:
            raise ValueError("chain_pull_budget must be non-negative")
        self.weight_list()  # validate eagerly

    def bench_list(self) -> List[str]:
        """Per-tenant benchmark names (round-robin over ``bench``)."""
        names = [b.strip() for b in self.bench.split(",") if b.strip()]
        return [names[t % len(names)] for t in range(self.tenants)]

    def weight_list(self) -> List[float]:
        """Per-tenant QoS weights (round-robin; empty = all 1.0)."""
        raw = [w.strip() for w in self.weights.split(",") if w.strip()]
        if not raw:
            return [1.0] * self.tenants
        vals = [float(w) for w in raw]
        if any(v <= 0 for v in vals):
            raise ValueError("tenant weights must be positive")
        return [vals[t % len(vals)] for t in range(self.tenants)]
