"""Experiment sweep utilities: the parallel benchmark × policy matrix.

Orchestration shared by the benchmark harnesses, the CLI, and user
scripts: run a benchmark × policy matrix (serially or across worker
processes), normalise against the no-migration baseline, and collect
results keyed for export.

Determinism: every cell's outcome is a pure function of ``(bench,
policy, seed, config)`` — the per-cell seed is derived up front with
:func:`cell_seed`, never from scheduling order — so ``jobs=N``
produces bit-identical matrices for any ``N``.  The ``"none"``
baseline runs once per benchmark and its :class:`RunResult` is reused
both for normalisation and for the ``"none"`` matrix cell when that
policy is requested explicitly.

Note for parallel runs: ``config_factory`` (and ``m5_options``) cross
a process boundary, so they must be picklable — a module-level
function or a ``functools.partial`` over :class:`SimConfig` both
work; a lambda or closure does not.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs import Observability
from repro.sim.config import FleetConfig, SimConfig
from repro.sim.engine import M5Options, RunResult, Simulation
from repro.workloads import registry

if TYPE_CHECKING:
    from repro.fleet.sim import FleetResult, TenantShard


def cell_seed(seed: int, bench: str, tenant: int = 0) -> int:
    """Deterministic per-benchmark (and per-tenant) seed.

    Derived from the matrix seed and the benchmark name only — every
    policy in a row (including the ``"none"`` baseline it is
    normalised against) sees the same workload trace, and the value
    is independent of execution order, so serial and parallel sweeps
    agree bit-for-bit.

    Fleet cells also fold in the tenant id, so two tenants running
    the same benchmark cannot collide onto one trace.  ``tenant=0``
    hashes exactly the historical token, keeping every existing
    single-run and sweep seed unchanged.
    """
    token = bench if tenant == 0 else f"tenant{int(tenant)}/{bench}"
    return (int(seed) + zlib.crc32(token.encode())) & 0x7FFFFFFF


def run_one(
    bench: str,
    policy: str,
    config: SimConfig,
    seed: int = 1,
    m5_options: Optional[M5Options] = None,
    pages_per_gb: Optional[int] = None,
    with_metrics: bool = False,
) -> RunResult:
    """Build the benchmark fresh and run it under one policy.

    ``with_metrics=True`` runs the cell with the metrics registry
    enabled (tracing stays off — span timing is meaningless when the
    matrix fans out over loaded worker processes) and attaches the
    snapshot to ``RunResult.metrics``.  A plain bool rather than an
    ``Observability`` object so matrix cells stay picklable.
    """
    workload = registry.build(
        bench, seed=seed, pages_per_gb=pages_per_gb or registry.PAGES_PER_GB
    )
    obs = Observability(metrics=True, tracing=False) if with_metrics else None
    sim = Simulation(
        workload, config, policy=policy, m5_options=m5_options, obs=obs
    )
    return sim.run()


def normalized(base: RunResult, result: RunResult) -> float:
    """Figure 9's score: inverse p99 for latency-sensitive workloads,
    inverse execution time otherwise.

    A missing p99 (``None`` — the workload is not latency-sensitive)
    falls back to execution time; a *measured* p99 of exactly zero is
    a corrupt result and raises instead of silently switching metric.
    """
    if base.p99_latency_us is not None and result.p99_latency_us is not None:
        if base.p99_latency_us == 0.0 or result.p99_latency_us == 0.0:
            raise ValueError(
                "p99 latency measured as 0.0 "
                f"(base={base.p99_latency_us!r}, result={result.p99_latency_us!r}); "
                "a zero measurement is invalid — use p99=None for "
                "workloads without a latency metric"
            )
        return base.p99_latency_us / result.p99_latency_us
    return base.execution_time_s / result.execution_time_s


#: One matrix cell: (bench, policy, config, seed, m5_options,
#: with_metrics).
_Cell = Tuple[str, str, SimConfig, int, Optional[M5Options], bool]


def _run_cell(cell: _Cell) -> RunResult:
    """Process-pool entry point for one matrix cell."""
    bench, policy, config, seed, m5_options, with_metrics = cell
    return run_one(
        bench, policy, config, seed=seed, m5_options=m5_options,
        with_metrics=with_metrics,
    )


def collect_matrix(
    benches: Iterable[str],
    policies: Iterable[str],
    config_factory: Callable[[], SimConfig],
    seed: int = 1,
    m5_options: Optional[M5Options] = None,
    jobs: int = 1,
    with_metrics: bool = False,
    on_result: Optional[Callable[[str, str, RunResult], None]] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Run every (bench, policy) pair; returns the raw results.

    The ``"none"`` baseline is added to every row exactly once (and
    reused for the ``"none"`` cell if requested).  ``jobs > 1`` fans
    the cells out over a :class:`ProcessPoolExecutor`; results are
    keyed by cell, so scheduling order cannot change the outcome.
    ``with_metrics`` enables the per-cell metrics registry, so every
    ``RunResult.metrics`` carries the cell's snapshot (aggregated by
    ``repro sweep --metrics``).

    ``on_result(bench, policy, result)`` is invoked in the parent
    process as each cell lands (completion order, not matrix order) —
    the hook ``repro sweep --serve`` uses to merge cell snapshots into
    its live aggregate registry mid-sweep.  The hook never crosses the
    process boundary, so it may close over unpicklable state.
    """
    benches = list(benches)
    policies = list(policies)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cells: List[_Cell] = []
    for bench in benches:
        row_seed = cell_seed(seed, bench)
        row_policies = ["none"] + [p for p in policies if p != "none"]
        for policy in row_policies:
            cells.append(
                (bench, policy, config_factory(), row_seed, m5_options,
                 with_metrics)
            )

    if jobs == 1 or len(cells) <= 1:
        outcomes = []
        for cell in cells:
            outcome = _run_cell(cell)
            if on_result is not None:
                on_result(cell[0], cell[1], outcome)
            outcomes.append(outcome)
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = []
            for cell, outcome in zip(cells, pool.map(_run_cell, cells)):
                if on_result is not None:
                    on_result(cell[0], cell[1], outcome)
                outcomes.append(outcome)

    results: Dict[str, Dict[str, RunResult]] = {b: {} for b in benches}
    for (bench, policy, *_), outcome in zip(cells, outcomes):
        results[bench][policy] = outcome
    return results


def run_matrix(
    benches: Iterable[str],
    policies: Iterable[str],
    config_factory: Callable[[], SimConfig],
    seed: int = 1,
    m5_options: Optional[M5Options] = None,
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Run every (bench, policy) pair; returns normalised scores.

    Each benchmark also runs the ``none`` baseline exactly once;
    scores are normalised to it (the ``"none"`` cell, if requested,
    reuses the baseline run and scores 1.0 by construction).
    Results: ``matrix[bench][policy] = score``.
    """
    policies = list(policies)
    results = collect_matrix(
        benches, policies, config_factory, seed=seed,
        m5_options=m5_options, jobs=jobs,
    )
    matrix: Dict[str, Dict[str, float]] = {}
    for bench, row_results in results.items():
        base = row_results["none"]
        matrix[bench] = {
            policy: normalized(base, row_results[policy]) for policy in policies
        }
    return matrix


#: One fleet tenant shard: (fleet, config, tenant, m5_options,
#: with_metrics).
_TenantCell = Tuple[FleetConfig, SimConfig, int, Optional[M5Options], bool]


def _run_fleet_tenant(cell: _TenantCell) -> "TenantShard":
    """Process-pool entry point for one fleet tenant shard."""
    # Lazy import: repro.fleet imports this module for cell_seed, so a
    # top-level import here would be a cycle.
    from repro.fleet.sim import run_tenant_shard

    fleet, config, tenant, m5_options, with_metrics = cell
    return run_tenant_shard(
        fleet, config, tenant=tenant, m5_options=m5_options,
        with_metrics=with_metrics,
    )


def collect_fleet(
    fleet: FleetConfig,
    config: Optional[SimConfig] = None,
    m5_options: Optional[M5Options] = None,
    jobs: int = 1,
    with_metrics: bool = False,
) -> "FleetResult":
    """Run one fleet, sharding tenants across worker processes.

    The fleet twin of :func:`collect_matrix`'s ProcessPoolExecutor
    path, with the unit of parallelism one *tenant* instead of one
    matrix cell.  Tenants are only coupled through bandwidth
    arbitration, so whenever the fleet is uncoupled (every channel
    ceiling unlimited — the default latency-only model) each tenant
    runs to completion in its own process and the arbiter is replayed
    over the recorded demand traces afterwards — bit-identical to the
    lockstep run for any ``jobs`` (a property the fleet test suite
    pins).  Coupled fleets (any ceiling > 0, more than one tenant)
    need every tenant's previous epoch each round, so they fall back
    to the in-process lockstep :class:`~repro.fleet.FleetSimulation`
    regardless of ``jobs``.
    """
    from repro.fleet.sim import assemble_fleet, is_coupled, run_fleet

    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    config = config if config is not None else SimConfig()
    if jobs == 1 or fleet.tenants == 1 or is_coupled(fleet, config):
        return run_fleet(
            fleet, config, m5_options=m5_options, with_metrics=with_metrics
        )
    cells: List[_TenantCell] = [
        (fleet, config, tenant, m5_options, with_metrics)
        for tenant in range(fleet.tenants)
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        shards = list(pool.map(_run_fleet_tenant, cells))
    return assemble_fleet(fleet, config, shards, with_metrics=with_metrics)


def matrix_means(matrix: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Per-policy means over the benchmark axis."""
    policies = sorted({p for row in matrix.values() for p in row})
    return {
        p: sum(row[p] for row in matrix.values() if p in row)
        / sum(1 for row in matrix.values() if p in row)
        for p in policies
    }
