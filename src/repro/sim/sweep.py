"""Experiment sweep utilities.

Thin orchestration helpers shared by the benchmark harnesses, the CLI,
and user scripts: run a benchmark × policy matrix, normalise against
the no-migration baseline, and collect results keyed for export.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.sim.config import SimConfig
from repro.sim.engine import M5Options, RunResult, Simulation
from repro.workloads import registry


def run_one(
    bench: str,
    policy: str,
    config: SimConfig,
    seed: int = 1,
    m5_options: Optional[M5Options] = None,
    pages_per_gb: Optional[int] = None,
) -> RunResult:
    """Build the benchmark fresh and run it under one policy."""
    workload = registry.build(
        bench, seed=seed, pages_per_gb=pages_per_gb or registry.PAGES_PER_GB
    )
    sim = Simulation(workload, config, policy=policy, m5_options=m5_options)
    return sim.run()


def normalized(base: RunResult, result: RunResult) -> float:
    """Figure 9's score: inverse p99 for latency-sensitive workloads,
    inverse execution time otherwise."""
    if base.p99_latency_us is not None and result.p99_latency_us:
        return base.p99_latency_us / result.p99_latency_us
    return base.execution_time_s / result.execution_time_s


def run_matrix(
    benches: Iterable[str],
    policies: Iterable[str],
    config_factory: Callable[[], SimConfig],
    seed: int = 1,
    m5_options: Optional[M5Options] = None,
) -> Dict[str, Dict[str, float]]:
    """Run every (bench, policy) pair; returns normalised scores.

    Each benchmark also runs the ``none`` baseline once; scores are
    normalised to it.  Results: ``matrix[bench][policy] = score``.
    """
    matrix: Dict[str, Dict[str, float]] = {}
    for bench in benches:
        base = run_one(bench, "none", config_factory(), seed=seed)
        row: Dict[str, float] = {}
        for policy in policies:
            result = run_one(bench, policy, config_factory(), seed=seed,
                             m5_options=m5_options)
            row[policy] = normalized(base, result)
        matrix[bench] = row
    return matrix


def matrix_means(matrix: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Per-policy means over the benchmark axis."""
    policies = sorted({p for row in matrix.values() for p in row})
    return {
        p: sum(row[p] for row in matrix.values() if p in row)
        / sum(1 for row in matrix.values() if p in row)
        for p in policies
    }
