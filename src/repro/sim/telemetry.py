"""Per-epoch telemetry bus for the simulation pipeline.

Every pipeline stage can publish structured events while a run is in
flight — tier occupancy, promotions/demotions, access-count-ratio
checkpoints, policy overhead, migration time — and any number of
*sinks* consume them.  Two sinks ship with the bus:

* :class:`RingBufferSink` — bounded in-memory history; the engine
  attaches one by default and copies it into ``RunResult.timeline``
  so analysis/figures get epoch-resolution data without re-running;
* :class:`JsonlSink` — streams one JSON object per event to a file
  (togglable from the CLI via ``--timeline``), for offline tooling.

Events are plain dicts with three reserved keys — ``stage`` (the
pipeline stage that published), ``epoch`` (1-based), ``t_s`` (the
simulated clock) — plus arbitrary numeric payload fields.  Publishing
with no sinks attached is a cheap no-op, so instrumented code never
needs to guard its publish calls.

Event kinds published by the pipeline: ``policy`` (overhead,
nominations), ``migrate`` (promotions/demotions), ``epoch`` (tier
occupancy, traffic split, epoch duration), ``ratio`` (access-count
checkpoints), ``promoter.drop`` (bounded proc-file overflow), and —
in async migration mode — ``migration.enqueue`` /
``migration.commit`` / ``migration.abort`` / ``migration.retry``
(the transactional queue's per-epoch outcomes; aggregate them with
:func:`repro.analysis.timeline.migration_outcomes`).
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Any, Dict, Iterable, List, Optional, Union

Event = Dict[str, Union[str, int, float]]


class TelemetrySink:
    """Consumer of pipeline events.  Subclasses override :meth:`emit`."""

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default is a no-op
        """Release any resources (files, sockets).  Idempotent."""


class RingBufferSink(TelemetrySink):
    """Keep the most recent ``capacity`` events in memory.

    Overflow is *counted*, not silent: once the ring is full, every
    new event evicts the oldest and increments :attr:`dropped`.  The
    engine surfaces the count as ``RunResult.timeline_dropped`` (and
    the ``telemetry_ring_dropped_total`` metric), so a truncated
    timeline is always detectable.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._events: deque = deque(maxlen=self.capacity)
        #: Events evicted because the ring was at capacity.
        self.dropped = 0

    def emit(self, event: Event) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


class JsonlSink(TelemetrySink):
    """Append one JSON object per event to a file.

    Accepts a path (opened lazily on first emit, so constructing a
    sink never creates an empty file) or an already-open file object
    (not closed by :meth:`close` unless the sink opened it).

    The stream is flushed every ``flush_every`` events (as well as on
    :meth:`close`), so a run that crashes mid-flight still leaves a
    usable timeline on disk instead of a page of buffered-and-lost
    events.  ``flush_every=0`` disables periodic flushing.

    A path-backed sink survives close/re-emit cycles: the first open
    truncates (``"w"``), every reopen *appends* (``"a"``), so a
    resumed run extends the timeline it left on disk instead of
    destroying it.  For the same reason the sink pickles (checkpoints
    carry the telemetry bus): the file handle is dropped and the next
    emit reopens in append mode.  Sinks wrapping an externally-owned
    file object cannot be pickled.
    """

    def __init__(
        self, path_or_file: Union[str, bytes, IO[str]], flush_every: int = 64
    ) -> None:
        if flush_every < 0:
            raise ValueError("flush_every must be non-negative")
        self._path: Optional[Union[str, bytes]] = None
        self._fh: Optional[IO[str]] = None
        self._owns_fh = False
        #: True once the path was opened (and truncated) at least
        #: once; reopens after that must append, never truncate.
        self._opened_once = False
        self.flush_every = int(flush_every)
        self._emitted = 0
        if isinstance(path_or_file, (str, bytes)):
            self._path = path_or_file
        else:
            self._fh = path_or_file

    @property
    def path(self) -> Optional[Union[str, bytes]]:
        return self._path

    def emit(self, event: Event) -> None:
        if self._fh is None:
            assert self._path is not None
            self._fh = open(self._path, "a" if self._opened_once else "w")
            self._owns_fh = True
            self._opened_once = True
        self._fh.write(json.dumps(event) + "\n")
        self._emitted += 1
        if self.flush_every and self._emitted % self.flush_every == 0:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None and self._owns_fh:
            self._fh.close()
            self._fh = None
            self._owns_fh = False
        elif self._fh is not None:
            self._fh.flush()

    def __getstate__(self) -> Dict[str, Any]:
        if self._path is None:
            raise TypeError(
                "cannot pickle a JsonlSink wrapping an external file "
                "object; construct it from a path to make it "
                "checkpointable"
            )
        if self._fh is not None:
            self._fh.flush()
        state = self.__dict__.copy()
        # The handle is process-local; the restored sink reopens the
        # path lazily in append mode (``_opened_once`` survives).
        state["_fh"] = None
        state["_owns_fh"] = False
        return state


def read_jsonl(path: str) -> List[Event]:
    """Load a JSONL timeline back into a list of events."""
    events: List[Event] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class TelemetryBus:
    """Fan-out from pipeline stages to the attached sinks."""

    def __init__(self, sinks: Iterable[TelemetrySink] = ()) -> None:
        self.sinks: List[TelemetrySink] = list(sinks)

    # ------------------------------------------------------------------
    # sink management

    def attach(self, sink: TelemetrySink) -> TelemetrySink:
        """Register a sink; returns it for chaining."""
        self.sinks.append(sink)
        return sink

    def detach(self, sink: TelemetrySink) -> None:
        self.sinks.remove(sink)

    @property
    def active(self) -> bool:
        """True when at least one sink would see a publish."""
        return bool(self.sinks)

    # ------------------------------------------------------------------
    # publication

    def publish(self, stage: str, epoch: int, t_s: float, **fields: Any) -> None:
        """Publish one event to every sink (no-op with no sinks)."""
        if not self.sinks:
            return
        event: Event = {"stage": stage, "epoch": int(epoch), "t_s": float(t_s)}
        event.update(fields)
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every sink (flush files)."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "TelemetryBus":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        """Close the sinks even when the surrounded run raises, so a
        crashed run still leaves flushed JSONL timelines on disk."""
        self.close()
