"""Performance model: execution time and tail latency.

Execution time of a memory-intensive epoch decomposes into

* **compute** — instructions between LLC misses, from the workload's
  MPKI and the core's IPC/frequency;
* **memory stalls** — per-access load-to-use latency of the serving
  tier divided by the memory-level parallelism;
* **policy overhead** — kernel CPU time spent identifying hot pages,
  charged to the same core (the paper pins the migration processes
  and the benchmark to shared cores, §6);
* **migration time** — ~54 µs per moved page (§7.2).

With the default parameters an all-CXL run is ≈2× slower than an
all-DDR run, matching the paper's no-migration baseline (M5 ends up
106% above no-migration, i.e. near the all-DDR bound, Figure 9).

For latency-sensitive workloads (Redis), the model scores the 99th
percentile request latency: the p99 request is one that arrives while
the policy's periodic burst occupies the core, so its latency is the
base request time plus a queueing penalty that grows with the
policy's CPU utilisation share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.config import SimConfig
from repro.workloads.base import WorkloadSpec

#: Tail-amplification factor: sustained interference utilisation maps
#: into p99 inflation with roughly this gain (a request arriving
#: during a policy/migration burst queues behind it).
P99_GAIN = 6.0
#: Memory accesses per Redis-style request (average over YCSB-A ops).
ACCESSES_PER_REQUEST = 12


# ----------------------------------------------------------------------
# fleet bandwidth arbitration (noisy-neighbor model)
#
# When N tenants share a tier's channel, each epoch the arbiter turns
# per-tenant demand (bytes/s the tenant would push uncontended) into a
# bandwidth share, and the ratio demand/share becomes a >=1 stall
# multiplier on that tenant's memory time for the node.  Two regimes:
#
# * QoS off — pure proportional sharing: s_i = C * d_i / sum(d).  Every
#   tenant's factor collapses to max(1, sum(d)/C): a noisy neighbor
#   slows everyone equally.
# * QoS on — weighted max-min (water-filling): tenants demanding less
#   than their weighted fair share are fully satisfied, and the
#   surplus is redistributed by weight among the rest.  A light tenant
#   is insulated from a heavy one.


def proportional_shares(
    demands: Sequence[float], capacity: float
) -> List[float]:
    """Split ``capacity`` across tenants proportionally to demand."""
    total = 0.0
    for d in demands:
        total += float(d)
    if total <= 0.0:
        return [0.0 for _ in demands]
    return [float(capacity) * float(d) / total for d in demands]


def weighted_fair_shares(
    demands: Sequence[float],
    weights: Sequence[float],
    capacity: float,
) -> List[float]:
    """Weighted max-min (water-filling) bandwidth allocation.

    Repeatedly offers each unsatisfied tenant its weighted slice of
    the remaining capacity; tenants whose residual demand fits are
    capped at their demand and drop out, and the loop re-divides the
    surplus until nothing changes.
    """
    n = len(demands)
    if len(weights) != n:
        raise ValueError("demands and weights must have equal length")
    shares = [0.0] * n
    remaining = float(capacity)
    active = [i for i in range(n) if float(demands[i]) > 0.0]
    while active and remaining > 0.0:
        wsum = 0.0
        for i in active:
            wsum += max(0.0, float(weights[i]))
        if wsum <= 0.0:
            offers = {i: remaining / len(active) for i in active}
        else:
            offers = {
                i: remaining * max(0.0, float(weights[i])) / wsum
                for i in active
            }
        satisfied = [
            i for i in active if float(demands[i]) - shares[i] <= offers[i]
        ]
        if not satisfied:
            for i in active:
                shares[i] += offers[i]
            break
        for i in satisfied:
            remaining -= float(demands[i]) - shares[i]
            shares[i] = float(demands[i])
        remaining = max(0.0, remaining)
        active = [i for i in active if i not in satisfied]
    return shares


def bandwidth_shares(
    demands: Sequence[float],
    weights: Sequence[float],
    capacity: float,
    qos: bool = True,
) -> List[float]:
    """Per-tenant bandwidth shares of one node's channel.

    ``capacity <= 0`` models an unlimited channel: everyone receives
    exactly their demand.  Otherwise QoS picks between weighted
    max-min fairness and pure proportional sharing.
    """
    if float(capacity) <= 0.0:
        return [float(d) for d in demands]
    if not qos:
        return proportional_shares(demands, capacity)
    return weighted_fair_shares(demands, weights, capacity)


def contention_factors(
    demands: Sequence[float], shares: Sequence[float]
) -> List[float]:
    """Stall multipliers (>= 1) from demand vs granted share."""
    out: List[float] = []
    for d, s in zip(demands, shares):
        d = float(d)
        s = float(s)
        out.append(d / s if (s > 0.0 and d > s) else 1.0)
    return out


@dataclass
class EpochPerf:
    """Per-epoch performance bookkeeping."""

    compute_s: float
    memory_s: float
    overhead_s: float
    migration_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.memory_s + self.overhead_s + self.migration_s


class PerformanceModel:
    """Turns epoch access counts + overheads into time."""

    def __init__(
        self,
        config: SimConfig,
        spec: WorkloadSpec,
        node_params: Optional[Sequence[Tuple[float, float]]] = None,
    ) -> None:
        """``node_params`` optionally replaces the two-node defaults:
        one ``(latency_ns, bandwidth_gbps)`` pair per tier, fastest
        first (the fleet passes the hierarchy's resolved specs)."""
        self.config = config
        self.spec = spec
        cycles_per_instr = 1.0 / config.ipc
        instrs_per_access = 1000.0 / max(spec.mpki, 1e-6)
        self.compute_per_access_s = (
            instrs_per_access * cycles_per_instr / (config.cpu_ghz * 1e9)
        )
        if node_params is None:
            node_params = (
                (config.ddr_latency_ns, config.ddr_bandwidth_gbps),
                (config.cxl_latency_ns, config.cxl_bandwidth_gbps),
            )
        #: Per-node (stall_s, bandwidth_gbps), fastest tier first.
        self.node_stall_s: List[float] = [
            lat * 1e-9 / config.mlp for lat, _ in node_params
        ]
        self.node_bw_gbps: List[float] = [bw for _, bw in node_params]
        self.ddr_stall_s = self.node_stall_s[0]
        self.cxl_stall_s = self.node_stall_s[1]
        #: Per-node noisy-neighbor stall multipliers for the *next*
        #: epoch, set by the fleet arbiter before the perf stage and
        #: consumed (reset to None) by record_epoch.  None skips the
        #: contention arithmetic entirely, keeping single-run results
        #: bit-identical.
        self.contention: Optional[List[float]] = None
        #: Each simulated access stands for `dilation` real ones (see
        #: SimConfig), so application time scales by dilation; each
        #: model page groups `footprint_scale` real pages, so moving
        #: one costs that many real page migrations.  Policy overheads
        #: arrive already scaled by each policy's cost model.
        self.dilation = max(1.0, config.time_dilation)
        self.page_scale = max(1.0, config.footprint_scale)
        #: The paper runs one benchmark instance/thread per core (§6);
        #: the trace is the aggregate stream, so wall-clock app time is
        #: the per-core share.
        self.cores = max(1, spec.cores)
        self.epochs: List[EpochPerf] = []
        # Running totals, accumulated in record_epoch.  The aggregate
        # properties are read once per epoch (progress callbacks,
        # invariant checks), so recomputing sum(...) over the epoch
        # list made each of them O(epochs) — O(E^2) per run.  Adding
        # left-to-right from 0.0 is exactly what sum() does, so the
        # totals stay bit-identical to the recomputed values.
        self._execution_s = 0.0
        self._app_s = 0.0
        self._overhead_s = 0.0
        self._migration_s = 0.0
        # Shadow accumulator: what execution time would be with no
        # bandwidth contention (contention factors forced to 1).  The
        # per-tenant "slowdown vs isolated run" metric is
        # execution_time_s / isolated_time_s without a second run.
        self._isolated_s = 0.0

    def _node_memory_s(
        self,
        n: int,
        stall_s: float,
        bw_gbps: float,
        extra_bytes: float = 0.0,
    ) -> float:
        """Wall-clock memory time for one node's epoch traffic.

        Latency-bound time divides across cores (each core overlaps
        its own misses); bandwidth-bound time does not — the channel
        is shared.  The node is whichever bound is tighter.

        ``extra_bytes`` is non-demand traffic on the node's channel —
        asynchronous migration copies — in *model* bytes (one model
        page groups ``page_scale`` real pages).  It contends with
        demand traffic: it inflates the bandwidth-bound term, and
        under the latency-only model it is charged as the equivalent
        cacheline transfers through the same stall path.
        """
        latency_bound = n * stall_s * self.dilation / self.cores
        extra_real_bytes = extra_bytes * self.page_scale
        if bw_gbps <= 0:
            if extra_real_bytes:
                latency_bound += (
                    (extra_real_bytes / 64.0) * stall_s / self.cores
                )
            return latency_bound
        bandwidth_bound = (
            n * 64.0 * self.dilation + extra_real_bytes
        ) / (bw_gbps * 1e9)
        return max(latency_bound, bandwidth_bound)

    def record_epoch(
        self,
        n_ddr: int,
        n_cxl: int,
        overhead_us: float,
        migration_us: float,
        migration_bytes: float = 0.0,
        node_counts: Optional[Sequence[int]] = None,
    ) -> EpochPerf:
        """Convert one epoch's traffic and overheads into time.

        Args:
            n_ddr / n_cxl: demand accesses served by each tier (the
                two-node fast path).
            overhead_us: the policy's identification CPU cost.
            migration_us: kernel CPU time of migration (the flat
                54 µs/page in instant mode; the remap share in async
                mode), charged via ``migration_overlap``.
            migration_bytes: asynchronous migration copy traffic in
                model bytes.  Each copied page reads from one tier and
                writes the other, so the bytes contend on both
                channels; 0 (instant mode) leaves the model untouched.
            node_counts: demand accesses per node for hierarchies
                deeper than two tiers (overrides ``n_ddr``/``n_cxl``;
                must match the ``node_params`` length).
        """
        if node_counts is None:
            node_counts = (n_ddr, n_cxl)
        n = 0
        for count in node_counts:
            n += int(count)
        scale = self.dilation / self.cores
        contention = self.contention
        self.contention = None
        memory_s = 0.0
        isolated_memory_s = 0.0
        for i, count in enumerate(node_counts):
            node_s = self._node_memory_s(
                int(count),
                self.node_stall_s[i],
                self.node_bw_gbps[i],
                extra_bytes=migration_bytes,
            )
            if contention is None:
                memory_s += node_s
                isolated_memory_s = memory_s
            else:
                isolated_memory_s += node_s
                memory_s += node_s * max(1.0, contention[i])
        perf = EpochPerf(
            compute_s=n * scale * self.compute_per_access_s,
            memory_s=memory_s,
            overhead_s=overhead_us * 1e-6,
            migration_s=migration_us
            * 1e-6
            * self.page_scale
            * self.config.migration_overlap,
        )
        self.epochs.append(perf)
        self._execution_s += perf.total_s
        self._app_s += perf.compute_s + perf.memory_s
        self._overhead_s += perf.overhead_s
        self._migration_s += perf.migration_s
        self._isolated_s += (
            perf.compute_s + isolated_memory_s + perf.overhead_s + perf.migration_s
        )
        return perf

    # ------------------------------------------------------------------
    # aggregate metrics

    @property
    def execution_time_s(self) -> float:
        return self._execution_s

    @property
    def app_time_s(self) -> float:
        """Time excluding policy/migration overhead."""
        return self._app_s

    @property
    def overhead_time_s(self) -> float:
        return self._overhead_s

    @property
    def migration_time_s(self) -> float:
        return self._migration_s

    @property
    def isolated_time_s(self) -> float:
        """Execution time with all contention factors forced to 1 —
        the tenant's wall-clock had it run the fleet alone."""
        return self._isolated_s

    def slowdown_vs_isolated(self) -> float:
        """Noisy-neighbor slowdown: contended / uncontended time."""
        if self._isolated_s <= 0.0:
            return 1.0
        return self._execution_s / self._isolated_s

    def overhead_utilisation(self) -> float:
        """Fraction of core time consumed by hot-page identification."""
        total = self.execution_time_s
        return self.overhead_time_s / total if total > 0 else 0.0

    def interference_utilisation(self) -> float:
        """Fraction of core time stolen from the application by policy
        work *and* migration bursts — what a latency-sensitive
        workload's tail actually sees."""
        total = self.execution_time_s
        if total <= 0:
            return 0.0
        return (self.overhead_time_s + self.migration_time_s) / total

    def p99_latency_us(self) -> float:
        """p99 request latency for latency-sensitive workloads.

        Base request time from compute + memory per request; inflated
        by the policy's utilisation share with tail amplification (a
        request arriving during a policy burst queues behind it).
        """
        if not self.epochs:
            return 0.0
        # Score steady state: YCSB-style runs measure after a load/
        # warmup phase, so the migration fill at the start of the run
        # must not anchor the percentile.
        steady = self.epochs[len(self.epochs) // 2 :]
        per_access = np.array(
            [
                (e.compute_s + e.memory_s)
                / max(1e-12, e.compute_s / self.compute_per_access_s)
                for e in steady
            ]
        )
        # Request base time per epoch; p99 epoch-level base captures
        # phases with more CXL traffic.
        base_us = np.quantile(per_access * ACCESSES_PER_REQUEST * 1e6, 0.99)
        # Tail inflation follows *persistent* interference: a one-off
        # fill phase touches too few requests to move the 99th
        # percentile, while steady scanning or migration churn delays
        # requests in (nearly) every window.  u_tail is the
        # interference utilisation that at least 5% of epochs sustain.
        per_epoch_u = np.array(
            [
                (e.overhead_s + e.migration_s) / e.total_s if e.total_s > 0 else 0.0
                for e in steady
            ]
        )
        u_tail = float(np.quantile(per_epoch_u, 0.95))
        return float(base_us * (1.0 + P99_GAIN * u_tail))

    def throughput_accesses_per_s(self) -> float:
        total_accesses = sum(
            e.compute_s / self.compute_per_access_s for e in self.epochs
        )
        t = self.execution_time_s
        return total_accesses / t if t > 0 else 0.0
