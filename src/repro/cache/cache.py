"""Set-associative cache model.

The trackers and profilers in the CXL controller see *cache-filtered*
traffic: only LLC misses reach DRAM.  The paper collects its traces
with Pin + Ramulator (§7.1) and scales LLC capacity with the core
count via Intel CAT way partitioning (§6).  This model provides the
same filtering: a set-associative, write-allocate LLC with true-LRU
replacement and a way mask standing in for CAT.
"""

from __future__ import annotations

import numpy as np

from repro.memory.address import WORD_SHIFT


class SetAssociativeCache:
    """Exact set-associative LRU cache over 64B lines.

    Args:
        capacity_bytes: total cache capacity.
        ways: associativity (LLC-class defaults).
        line_bytes: cache-line size (64B throughout the paper).
        allocated_ways: CAT way mask — how many of the ways this
            workload may fill (paper Table 3 gives 10 of 15 ways for
            GAP, 4 for SPECrate, 1 for Redis).
    """

    def __init__(
        self,
        capacity_bytes: int,
        ways: int = 15,
        line_bytes: int = 64,
        allocated_ways: int = None,
    ):
        if capacity_bytes <= 0 or ways <= 0:
            raise ValueError("capacity and ways must be positive")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        self.line_bytes = int(line_bytes)
        self.ways = int(ways)
        self.allocated_ways = int(allocated_ways) if allocated_ways else self.ways
        if not 1 <= self.allocated_ways <= self.ways:
            raise ValueError("allocated_ways must be in [1, ways]")
        num_lines = capacity_bytes // line_bytes
        self.num_sets = max(1, num_lines // self.ways)
        # Effective capacity under the way mask:
        self.effective_lines = self.num_sets * self.allocated_ways
        # tags[set][slot]; -1 empty.  lru[set][slot] = age rank
        self._tags = np.full((self.num_sets, self.allocated_ways), -1, dtype=np.int64)
        self._stamp = np.zeros((self.num_sets, self.allocated_ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    @property
    def capacity_bytes(self) -> int:
        return self.effective_lines * self.line_bytes

    def access_line(self, line: int) -> bool:
        """Access one 64B line; returns True on hit."""
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        row = self._tags[set_idx]
        self._clock += 1
        hit = np.nonzero(row == tag)[0]
        if hit.size:
            self._stamp[set_idx, hit[0]] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        empty = np.nonzero(row == -1)[0]
        slot = empty[0] if empty.size else int(np.argmin(self._stamp[set_idx]))
        self._tags[set_idx, slot] = tag
        self._stamp[set_idx, slot] = self._clock
        return False

    def filter(self, addresses: np.ndarray) -> np.ndarray:
        """Pass byte addresses through the cache; return the misses.

        The returned array preserves order — it is the DRAM request
        stream the CXL controller (and hence PAC/WAC/HPT/HWT) sees.
        """
        pa = np.asarray(addresses, dtype=np.uint64)
        lines = (pa >> np.uint64(WORD_SHIFT)).astype(np.int64)
        missed = np.fromiter(
            (not self.access_line(int(line)) for line in lines),
            dtype=bool,
            count=lines.size,
        )
        return pa[missed]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def flush(self) -> None:
        self._tags[:] = -1
        self._stamp[:] = 0
        self._clock = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class ProbabilisticLlcFilter:
    """Fast statistical stand-in for the exact LLC model.

    For large synthetic traces the exact model is needlessly slow; the
    filter admits each access to DRAM with a reuse-distance-based miss
    probability: lines belonging to a hot working set that fits in the
    cache mostly hit, everything else misses.  Calibrate with
    ``resident_lines`` = effective LLC lines.

    This preserves the property the experiments rely on — the DRAM
    stream is a thinned version of the access stream with hot lines
    thinned the most — without per-access state.
    """

    def __init__(self, resident_lines: int, seed: int = 99):
        if resident_lines <= 0:
            raise ValueError("resident_lines must be positive")
        self.resident_lines = int(resident_lines)
        self._rng = np.random.default_rng(seed)
        self.hits = 0
        self.misses = 0

    def filter(self, addresses: np.ndarray) -> np.ndarray:
        pa = np.asarray(addresses, dtype=np.uint64)
        if pa.size == 0:
            return pa
        lines = pa >> np.uint64(WORD_SHIFT)
        uniques, inverse, counts = np.unique(
            lines, return_inverse=True, return_counts=True
        )
        # Residency probability: the hottest `resident_lines` unique
        # lines are likely cached; colder lines miss.
        order = np.argsort(-counts, kind="stable")
        rank = np.empty_like(order)
        rank[order] = np.arange(order.size)
        p_resident = np.clip(1.0 - rank / self.resident_lines, 0.0, 0.95)
        p_miss_line = 1.0 - p_resident
        # First touch of a line in the window always misses: ensure
        # at least one miss per unique line by flooring p_miss.
        p_miss_line = np.maximum(p_miss_line, 1.0 / np.maximum(counts, 1))
        p_miss = p_miss_line[inverse]
        missed = self._rng.random(pa.size) < p_miss
        self.hits += int((~missed).sum())
        self.misses += int(missed.sum())
        return pa[missed]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
