"""LLC model used to cache-filter address traces before they reach
the (simulated) DRAM and the CXL controller's trackers."""

from repro.cache.cache import ProbabilisticLlcFilter, SetAssociativeCache

__all__ = ["ProbabilisticLlcFilter", "SetAssociativeCache"]
