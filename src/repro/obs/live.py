"""The live observability service: an in-process HTTP exporter.

:class:`ObsServer` serves a running simulation's metrics over HTTP —
a stdlib ``http.server`` on a daemon thread, no dependencies — so a
long-running ``repro run``/``fleet`` can be scraped, dashboarded, and
health-checked *while it executes* instead of only dumping a snapshot
at exit.  Endpoints:

* ``/metrics`` — the Prometheus text exposition of a fresh registry
  snapshot (:func:`~repro.obs.exporters.to_prometheus`);
* ``/snapshot.json`` — the same snapshot as JSON (byte-identical in
  content to ``repro run --metrics out.json``);
* ``/healthz`` — liveness JSON: status, uptime-free scrape counts per
  endpoint (the server keeps its *own* request counters out of the
  run's registry on purpose, so the final live scrape stays exactly
  equal to the end-of-run snapshot).

Thread-safety: the simulation mutates its registry on the engine
thread while the server snapshots it on the handler thread.  All
engine mutations are single ``float`` writes (torn reads are stale,
never corrupt) except *registering a new series*, which can make the
snapshot's dict iteration raise ``RuntimeError`` — the server retries
the snapshot a few times rather than taxing the engine's hot path
with a lock; counters are monotonic, so a scrape is always ≤ any
later scrape series-for-series.

Shutdown: :meth:`close` stops the listener, joins the thread, and
closes the socket; the context-manager protocol guarantees this even
when the surrounded run raises (the CLI enters the server *after*
the telemetry bus, so teardown order is server first, then sinks).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Callable, Dict, Optional, Union

from repro.obs.exporters import to_prometheus
from repro.obs.metrics import MetricsRegistry

SnapshotFn = Callable[[], Dict[str, object]]

#: Errors meaning "the scraper's socket died under us" — a client
#: disconnect is normal churn for a long-running service, never a
#: server failure.  The handler must not try to answer on such a
#: socket (the reply itself would raise out of the handler thread).
_DISCONNECT_ERRORS = (BrokenPipeError, ConnectionResetError,
                      ConnectionAbortedError)


class _ObsHandler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on ``server.obs_server``."""

    server_version = "ReproObs/1"

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr request log."""

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        obs_server: "ObsServer" = self.server.obs_server  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = to_prometheus(obs_server.snapshot()).encode()
                obs_server.count_scrape(path)
                self._respond(200, "text/plain; version=0.0.4", body)
            elif path == "/snapshot.json":
                body = json.dumps(obs_server.snapshot()).encode()
                obs_server.count_scrape(path)
                self._respond(200, "application/json", body)
            elif path == "/healthz":
                payload = {
                    "status": "ok",
                    "scrapes": obs_server.scrapes,
                    "disconnects": obs_server.disconnects,
                }
                obs_server.count_scrape(path)
                self._respond(200, "application/json",
                              json.dumps(payload).encode())
            else:
                self._respond(404, "text/plain",
                              f"unknown path {path!r}\n".encode())
        except _DISCONNECT_ERRORS:
            # The scraper hung up mid-response.  The socket is dead:
            # attempting the 500 reply below would just raise again
            # and leak a traceback out of the handler thread.  Count
            # it and move on; the server keeps serving.
            obs_server.count_disconnect()
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - surface to the scraper
            try:
                self._respond(500, "text/plain",
                              f"snapshot failed: {exc}\n".encode())
            except _DISCONNECT_ERRORS:
                obs_server.count_disconnect()
                self.close_connection = True


class ObsServer:
    """Serve a metrics source over HTTP from a daemon thread.

    Args:
        source: a :class:`MetricsRegistry` (snapshotted per request)
            or a zero-argument callable returning a snapshot dict (the
            fleet passes its merged-registry builder here).
        host: bind address; loopback by default — the service is an
            inspection port, not a public listener.
        port: TCP port; 0 (the default) binds an ephemeral port,
            published as :attr:`port` / :attr:`url` after
            :meth:`start`.
        snapshot_tries: retries when a snapshot races a series
            registration on the engine thread.
    """

    def __init__(
        self,
        source: Union[MetricsRegistry, SnapshotFn],
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_tries: int = 8,
    ) -> None:
        if isinstance(source, MetricsRegistry):
            self._snapshot_fn: SnapshotFn = source.snapshot
        else:
            self._snapshot_fn = source
        self.host = host
        self._requested_port = int(port)
        self.snapshot_tries = int(snapshot_tries)
        #: Served requests per endpoint path.
        self.scrapes: Dict[str, int] = {}
        #: Scrapers that hung up mid-response (normal churn for a
        #: long-running service; counted, never raised).
        self.disconnects = 0
        self._httpd: Optional[HTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A registry snapshot, retried across registration races."""
        last: Optional[RuntimeError] = None
        for _ in range(max(1, self.snapshot_tries)):
            try:
                return self._snapshot_fn()
            except RuntimeError as exc:
                # "dictionary changed size during iteration": the
                # engine registered a series mid-snapshot; retry.
                last = exc
        raise last  # pragma: no cover - needs snapshot_tries races

    def count_scrape(self, path: str) -> None:
        # lint: torn-safe -- single-writer dict bump: only the serial
        # HTTPServer handler thread writes; readers tolerate staleness
        self.scrapes[path] = self.scrapes.get(path, 0) + 1

    def count_disconnect(self) -> None:
        # lint: torn-safe -- monotone int counter; a torn read is a
        # stale count, never a corrupt one
        self.disconnects += 1

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ephemeral requests)."""
        if self._httpd is None:
            return self._requested_port
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------

    def start(self) -> "ObsServer":
        """Bind and serve from a daemon thread; returns self."""
        if self._httpd is not None:
            return self
        self._httpd = HTTPServer((self.host, self._requested_port),
                                 _ObsHandler)
        self._httpd.obs_server = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop serving, join the thread, release the socket.

        Idempotent; safe to call on a server that never started.
        """
        if self._httpd is None:
            return
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
        self._httpd.server_close()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
