"""Observability layer: metrics registry, stage tracing, exporters.

One :class:`Observability` object per run bundles the two concerns:

* ``obs.registry`` — a :class:`~repro.obs.metrics.MetricsRegistry`
  the engine, M5 manager, async migration engine, and CXL controller
  register counters/gauges/histograms into;
* ``obs.tracer`` — a :class:`~repro.obs.tracing.Tracer` timing every
  pipeline stage (and the migration tick as a nested span) in wall
  and simulated time.

The default is **off**: :data:`NULL_OBS` hands out no-op instruments
and spans, so an uninstrumented run pays nothing and stays
bit-identical to the seed pipeline.  Enable per concern::

    obs = Observability(metrics=True, tracing=True)
    sim = Simulation(workload, config, policy="m5-hpt", obs=obs)
    sim.run()
    print(obs.prometheus())          # text exposition snapshot
    table = obs.flame_table()        # where the wall-clock went

Exports (``repro run --metrics/--trace``) live in
:mod:`repro.obs.exporters`.  The *live* service — the streaming
``/metrics`` HTTP endpoint (:class:`~repro.obs.live.ObsServer`), the
per-epoch ring recorder
(:class:`~repro.obs.timeseries.TimeSeriesRecorder`), and the SLO
watchdog (:class:`~repro.obs.slo.SloWatchdog`) — rides on top of the
same registry and is wired by ``--serve`` / ``--record-series`` /
``--slo-rules``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.exporters import (
    chrome_trace,
    diff_snapshots,
    flatten_snapshot,
    load_metrics_file,
    merged_chrome_trace,
    parse_prometheus,
    series_key,
    to_prometheus,
    write_chrome_trace,
)
from repro.obs.live import ObsServer
from repro.obs.metrics import (
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NULL_METRIC,
    log2_buckets,
)
from repro.obs.slo import SloRule, SloWatchdog, default_rules, load_rules
from repro.obs.timeseries import (
    DEFAULT_RECORD_SERIES,
    TimeSeriesRecorder,
    parse_series_spec,
)
from repro.obs.tracing import NULL_SPAN, Span, SpanRecord, Tracer, wall_clock


class Observability:
    """Per-run bundle of a metrics registry and a tracer."""

    def __init__(self, metrics: bool = True, tracing: bool = True, bus=None):
        self.registry = MetricsRegistry(enabled=metrics)
        self.tracer = Tracer(enabled=tracing, bus=bus)

    @property
    def metrics_on(self) -> bool:
        return self.registry.enabled

    @property
    def tracing_on(self) -> bool:
        return self.tracer.enabled

    @property
    def enabled(self) -> bool:
        return self.metrics_on or self.tracing_on

    # convenience pass-throughs

    def snapshot(self) -> Dict[str, object]:
        return self.registry.snapshot()

    def prometheus(self) -> str:
        return to_prometheus(self.registry.snapshot())

    def flame_table(self) -> List[Dict[str, float]]:
        return self.tracer.flame_table()

    def chrome_trace(self) -> Dict[str, object]:
        return chrome_trace(self.tracer.spans)


#: Shared disabled instance: the engine's default when no ``obs`` is
#: passed.  Stores nothing (its registry hands out null families), so
#: sharing it across simulations is safe.
NULL_OBS = Observability(metrics=False, tracing=False)

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "log2_buckets",
    "DURATION_BUCKETS",
    "NULL_METRIC",
    "Tracer",
    "Span",
    "SpanRecord",
    "NULL_SPAN",
    "wall_clock",
    "to_prometheus",
    "parse_prometheus",
    "flatten_snapshot",
    "load_metrics_file",
    "diff_snapshots",
    "series_key",
    "chrome_trace",
    "merged_chrome_trace",
    "write_chrome_trace",
    "ObsServer",
    "TimeSeriesRecorder",
    "DEFAULT_RECORD_SERIES",
    "parse_series_spec",
    "SloRule",
    "SloWatchdog",
    "default_rules",
    "load_rules",
]
