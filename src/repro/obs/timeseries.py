"""Per-epoch metric time series in bounded memory.

The metrics registry answers "what are the totals *now*"; figures,
SLO rules, and live dashboards need "how did they move".  A
:class:`TimeSeriesRecorder` closes that gap: once per epoch (a
dedicated ``record`` pipeline stage appended by the engine when
``SimConfig.record_series`` is set) it samples the selected metric
families into per-column numpy ring buffers.

Memory is strictly bounded: each column is one preallocated
``float64`` array of ``capacity`` rows (``capacity * 8`` bytes per
column, :attr:`TimeSeriesRecorder.memory_bytes` reports the total),
and once the ring wraps the oldest rows are overwritten — overwrites
are counted in :attr:`TimeSeriesRecorder.dropped`, never silent.

Columns are keyed by the exposition-format series identity
(``sim_accesses_total{tier="ddr"}``; histograms contribute their
``_sum`` and ``_count``), plus three engine-provided base columns:
``epoch``, ``t_s`` (the simulated clock), and ``epoch_s`` (the
epoch's simulated duration).  Series that appear mid-run (a policy
registering its first labelled series at epoch 40) back-fill earlier
rows with NaN; every query works over the finite values.

Export: :meth:`to_jsonl` / :meth:`to_csv` (NaN becomes ``null`` /
empty).  Query: :meth:`window` (the last *n* rows), :meth:`rate`
(per-simulated-second first-difference over a window), and
:meth:`quantile` — the :class:`~repro.obs.slo.SloWatchdog` evaluates
its rules over exactly this API.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.exporters import series_key
from repro.obs.metrics import MetricsRegistry

#: The curated low-cost default column set (``record_series =
#: "default"``): small families on the engine's hot signals, so the
#: recorder stage stays inside the overhead gate's 5% budget.
DEFAULT_RECORD_SERIES: Tuple[str, ...] = (
    "sim_accesses_total",
    "sim_migrated_pages_total",
    "migration_pending",
    "migration_enqueued_total",
    "invariant_violations_total",
    "slo_breaches_total",
)

#: Engine-provided columns present in every sample.
BASE_COLUMNS: Tuple[str, ...] = ("epoch", "t_s", "epoch_s")


def parse_series_spec(spec: str) -> Tuple[str, ...]:
    """Parse a ``record_series`` spec into family names.

    ``"default"`` selects :data:`DEFAULT_RECORD_SERIES`, ``"all"`` (or
    ``"*"``) every registered family, and a comma-separated list picks
    explicit families (``"default"`` may appear as a list item and
    expands in place).
    """
    names: List[str] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token == "default":
            names.extend(
                n for n in DEFAULT_RECORD_SERIES if n not in names
            )
        elif token in ("all", "*"):
            return ("*",)
        elif token not in names:
            names.append(token)
    if not names:
        raise ValueError(
            f"record_series spec {spec!r} selects no metric families"
        )
    return tuple(names)


class TimeSeriesRecorder:
    """Ring-buffered per-epoch samples of selected metric families.

    Args:
        registry: the run's metrics registry (sampled in place; the
            recorder never mutates it).
        series: family names to sample, or ``("*",)`` for all.
        capacity: ring size in rows (epochs); memory per column is
            ``capacity * 8`` bytes, allocated on first appearance.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        series: Tuple[str, ...] = DEFAULT_RECORD_SERIES,
        capacity: int = 4096,
    ) -> None:
        if capacity < 1:
            raise ValueError("recorder capacity must be positive")
        self.registry = registry
        self.series = tuple(series)
        self.capacity = int(capacity)
        self._all = "*" in self.series
        self._columns: Dict[str, np.ndarray] = {}
        self._next = 0
        self._rows = 0
        #: Total samples taken (rows seen, including overwritten ones).
        self.samples_total = 0
        #: Rows overwritten because the ring was at capacity.
        self.dropped = 0

    # ------------------------------------------------------------------
    # sampling

    def _flat_values(self) -> Dict[str, float]:
        """The selected families flattened to ``{series_key: value}``."""
        if self._all:
            families = self.registry.families()
        else:
            families = [
                family
                for family in (self.registry.get(n) for n in self.series)
                if family is not None
            ]
        flat: Dict[str, float] = {}
        for family in families:
            for labels, metric in family.series():
                if family.kind == "histogram":
                    flat[series_key(f"{family.name}_sum", labels)] = float(
                        metric.sum
                    )
                    flat[series_key(f"{family.name}_count", labels)] = float(
                        metric.count
                    )
                else:
                    flat[series_key(family.name, labels)] = float(metric.value)
        return flat

    def sample(
        self,
        epoch: int,
        t_s: float,
        extra: Optional[Dict[str, float]] = None,
    ) -> None:
        """Record one row: base columns, ``extra``, and the selected
        metric series.  Columns absent from this row are NaN-filled."""
        row = self._flat_values()
        row["epoch"] = float(epoch)
        row["t_s"] = float(t_s)
        if extra:
            for key, value in extra.items():
                row[key] = float(value)
        i = self._next
        for key, value in row.items():
            column = self._columns.get(key)
            if column is None:
                column = self._columns[key] = np.full(
                    self.capacity, np.nan, dtype=np.float64
                )
            column[i] = value
        for key, column in self._columns.items():
            if key not in row:
                column[i] = np.nan
        self._next = (i + 1) % self.capacity
        if self._rows == self.capacity:
            self.dropped += 1
        else:
            self._rows += 1
        self.samples_total += 1

    # ------------------------------------------------------------------
    # queries

    @property
    def rows(self) -> int:
        """Valid rows currently held (≤ capacity)."""
        return self._rows

    @property
    def memory_bytes(self) -> int:
        """Total ring-buffer allocation across all columns."""
        return sum(column.nbytes for column in self._columns.values())

    def columns(self) -> List[str]:
        """Column names in first-appearance order."""
        return list(self._columns)

    def _order(self) -> np.ndarray:
        """Row indices oldest → newest."""
        if self._rows < self.capacity:
            return np.arange(self._rows)
        return np.concatenate(
            [np.arange(self._next, self.capacity), np.arange(self._next)]
        )

    def column(self, key: str, window: Optional[int] = None) -> np.ndarray:
        """One column's values oldest → newest (last ``window`` rows).

        Unknown columns raise ``KeyError`` — a misspelled family name
        should fail loudly, not read as an empty series.
        """
        values = self._columns[key][self._order()]
        if window is not None and window < values.size:
            values = values[values.size - window:]
        return values

    def window(self, n: Optional[int] = None) -> Dict[str, np.ndarray]:
        """The last ``n`` rows (default: all) of every column."""
        return {key: self.column(key, window=n) for key in self._columns}

    def rate(self, key: str, window: Optional[int] = None) -> float:
        """Mean per-simulated-second increase over the window.

        First-difference of the column's finite values against the
        matching ``t_s`` values; 0.0 when fewer than two finite points
        exist or no simulated time elapsed between them.
        """
        values = self.column(key, window=window)
        clock = self.column("t_s", window=window)
        finite = np.isfinite(values) & np.isfinite(clock)
        if int(finite.sum()) < 2:
            return 0.0
        values, clock = values[finite], clock[finite]
        elapsed_s = float(clock[-1] - clock[0])
        if elapsed_s <= 0.0:
            return 0.0
        return float(values[-1] - values[0]) / elapsed_s

    def quantile(
        self, key: str, q: float, window: Optional[int] = None
    ) -> float:
        """The q-quantile of the column's finite values (NaN if none)."""
        values = self.column(key, window=window)
        values = values[np.isfinite(values)]
        if values.size == 0:
            return float("nan")
        return float(np.quantile(values, q))

    def last(self, key: str) -> float:
        """The most recent finite value of a column (NaN if none)."""
        values = self.column(key)
        finite = values[np.isfinite(values)]
        return float(finite[-1]) if finite.size else float("nan")

    # ------------------------------------------------------------------
    # export

    def _export_rows(self) -> List[Dict[str, Optional[float]]]:
        keys = self.columns()
        table = self.window()
        out: List[Dict[str, Optional[float]]] = []
        for i in range(self._rows):
            row: Dict[str, Optional[float]] = {}
            for key in keys:
                value = float(table[key][i])
                row[key] = None if math.isnan(value) else value
            out.append(row)
        return out

    def to_jsonl(self, path: str) -> int:
        """One JSON object per row (NaN → null); returns rows written."""
        rows = self._export_rows()
        with open(path, "w") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")
        return len(rows)

    def to_csv(self, path: str) -> int:
        """Header + one line per row (NaN → empty); returns rows."""
        keys = self.columns()
        rows = self._export_rows()
        with open(path, "w") as fh:
            fh.write(",".join(f'"{k}"' for k in keys) + "\n")
            for row in rows:
                fh.write(
                    ",".join(
                        "" if row[k] is None else repr(row[k]) for k in keys
                    )
                    + "\n"
                )
        return len(rows)
