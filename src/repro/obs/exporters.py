"""Exporters: Prometheus text exposition, Chrome trace_event JSON,
and snapshot flatten/diff helpers for the ``repro metrics`` command.

Three output formats leave the observability layer:

* :func:`to_prometheus` — the text exposition format (``# HELP`` /
  ``# TYPE`` / one line per series; histograms as cumulative
  ``_bucket{le=...}`` plus ``_sum`` / ``_count``), scrapeable or
  diffable with standard tooling;
* registry ``snapshot()`` dicts — JSON-serialisable, attached to
  ``RunResult.metrics`` and written by ``repro run --metrics *.json``;
* :func:`chrome_trace` — a ``trace_event``-format object loadable in
  chrome://tracing or Perfetto, built from the tracer's spans.

:func:`flatten_snapshot`, :func:`parse_prometheus`, and
:func:`diff_snapshots` support the CLI's pretty-print/diff path over
either on-disk format.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.tracing import SpanRecord

# ----------------------------------------------------------------------
# Prometheus text exposition


def _fmt_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    f = float(v)
    return repr(int(f)) if f == int(f) else repr(f)


def _fmt_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in merged.items())
    return "{" + inner + "}"


def series_key(
    name: str, labels: Dict[str, str], extra: Optional[Dict[str, str]] = None
) -> str:
    """The flat-map key for one series: ``name{label="value",...}``.

    Exactly the exposition-format series identity, so keys built here
    line up with :func:`parse_prometheus` output and the recorder's
    column names.
    """
    return f"{name}{_fmt_labels(labels, extra)}"


def to_prometheus(snapshot: Dict) -> str:
    """Render a registry snapshot in the text exposition format."""
    lines: List[str] = []
    for metric in snapshot.get("metrics", []):
        name, kind = metric["name"], metric["kind"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for series in metric["series"]:
            labels = series.get("labels", {})
            if kind == "histogram":
                for le, n in series["buckets"]:
                    le_s = "+Inf" if le == "+Inf" else _fmt_value(float(le))
                    lines.append(
                        f"{name}_bucket{_fmt_labels(labels, {'le': le_s})} {n}"
                    )
                lines.append(
                    f"{name}_sum{_fmt_labels(labels)} {_fmt_value(series['sum'])}"
                )
                lines.append(f"{name}_count{_fmt_labels(labels)} {series['count']}")
            else:
                lines.append(
                    f"{name}{_fmt_labels(labels)} {_fmt_value(series['value'])}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse our own exposition output back into a flat series map.

    Handles the subset :func:`to_prometheus` emits — plain-value lines
    with optional ``{label="value",...}`` — which is all the diff path
    needs; it is not a general Prometheus parser.
    """
    flat: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        try:
            flat[key] = float(value)
        except ValueError:
            continue
    return flat


# ----------------------------------------------------------------------
# snapshot flatten / diff (the `repro metrics` command)


def flatten_snapshot(snapshot: Dict, buckets: bool = False) -> Dict[str, float]:
    """Flatten a registry snapshot to ``{series_key: value}``.

    Counter/gauge series flatten to one entry; histograms flatten to
    their ``_sum`` and ``_count`` (buckets are elided by default — the
    diff view cares about totals, the full shape lives in the snapshot
    file).  ``buckets=True`` also emits one ``_bucket{...,le=...}``
    entry per cumulative bucket, keyed exactly as
    :func:`to_prometheus` renders them, so a flattened snapshot and a
    parsed exposition scrape compare key-for-key.
    """
    flat: Dict[str, float] = {}
    for metric in snapshot.get("metrics", []):
        name, kind = metric["name"], metric["kind"]
        for series in metric["series"]:
            labels = series.get("labels", {})
            if kind == "histogram":
                if buckets:
                    for le, n in series["buckets"]:
                        le_s = "+Inf" if le == "+Inf" else _fmt_value(float(le))
                        key = series_key(f"{name}_bucket", labels, {"le": le_s})
                        flat[key] = float(n)
                flat[series_key(f"{name}_sum", labels)] = float(series["sum"])
                flat[series_key(f"{name}_count", labels)] = float(
                    series["count"]
                )
            else:
                flat[series_key(name, labels)] = float(series["value"])
    return flat


def load_metrics_file(path: str) -> Dict[str, float]:
    """Load a ``.json`` snapshot or ``.prom`` exposition into a flat map."""
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return flatten_snapshot(json.loads(stripped))
    return parse_prometheus(text)


def diff_snapshots(
    a: Dict[str, float], b: Dict[str, float]
) -> List[Dict[str, object]]:
    """Row-per-series diff of two flat maps (union of keys).

    Rows: ``{"series", "a", "b", "delta"}``, sorted by series key;
    series missing on one side read as 0.0.
    """
    rows: List[Dict[str, object]] = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key, 0.0), b.get(key, 0.0)
        rows.append({"series": key, "a": va, "b": vb, "delta": vb - va})
    return rows


# ----------------------------------------------------------------------
# Chrome trace_event


def chrome_trace(
    spans: Sequence[SpanRecord], pid: int = 1
) -> Dict[str, object]:
    """Spans as a Chrome ``trace_event`` JSON object.

    Complete (``"ph": "X"``) events with microsecond timestamps;
    loadable in chrome://tracing and Perfetto.  Each event carries the
    epoch and the simulated-time window in ``args``; ``pid`` groups
    the events into one process row (fleet traces use one pid per
    tenant).
    """
    events: List[Dict[str, object]] = []
    for span in sorted(spans, key=lambda s: s.start_wall_s):
        args: Dict[str, object] = {
            "epoch": span.epoch,
            "sim_start_s": span.start_sim_s,
            "sim_dur_s": span.dur_sim_s,
        }
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": "pipeline",
            "ph": "X",
            "ts": span.start_wall_s * 1e6,
            "dur": span.dur_wall_s * 1e6,
            "pid": pid,
            "tid": 1,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def merged_chrome_trace(
    groups: Sequence[Tuple[int, Sequence[SpanRecord]]],
) -> Dict[str, object]:
    """One trace object from several span groups, one pid per group.

    ``groups`` is ``[(pid, spans), ...]`` — e.g. one entry per fleet
    tenant — rendered as separate process rows in chrome://tracing.
    """
    events: List[Dict[str, object]] = []
    for pid, spans in groups:
        events.extend(chrome_trace(spans, pid=pid)["traceEvents"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Sequence[SpanRecord]) -> int:
    """Write the trace file; returns the number of events."""
    trace = chrome_trace(spans)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return len(trace["traceEvents"])
