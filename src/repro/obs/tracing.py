"""Stage tracing: nestable spans over the pipeline's hot paths.

A :class:`Tracer` times named regions of the run in both wall-clock
(``time.perf_counter``) and — when the engine wires its simulated
clock in — simulated time.  Spans nest: the engine opens one ``run``
root span, each pipeline stage (``stage.trace`` … ``stage.checkpoint``)
is a child, and the async migration tick appears as a grandchild
under ``stage.migrate``, so the per-run *flame table* attributes
every wall-clock second to the stage that burned it.

Completed spans can optionally be published to the run's
:class:`~repro.sim.telemetry.TelemetryBus` (``stage="span"`` events),
and the whole span list exports to a Chrome ``trace_event`` JSON via
:mod:`repro.obs.exporters` for chrome://tracing / Perfetto.

A disabled tracer hands out one shared no-op span, so the
instrumented loop costs nothing when observability is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


def wall_clock() -> float:
    """Monotonic wall-clock read (``time.perf_counter``).

    The observability layer owns real-time reads: simulation layers
    (``sim``/``cxl``/``core``/…) call this helper instead of
    :mod:`time` directly so lint rule DET002 can prove no hot path
    reads the host clock outside instrumentation.
    """
    return time.perf_counter()


@dataclass
class SpanRecord:
    """One completed span."""

    name: str
    #: Wall-clock start relative to the tracer's origin, seconds.
    start_wall_s: float
    dur_wall_s: float
    #: Simulated-clock window (0.0 when no sim clock was wired in).
    start_sim_s: float
    dur_sim_s: float
    depth: int
    epoch: int
    #: Wall-clock seconds spent in child spans (self = dur - child).
    child_wall_s: float = 0.0
    attrs: Dict[str, float] = field(default_factory=dict)

    @property
    def self_wall_s(self) -> float:
        return max(0.0, self.dur_wall_s - self.child_wall_s)


class _NullSpan:
    """Shared no-op context manager for disabled tracers."""

    __slots__ = ()
    dur_wall_s = 0.0

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """A live timed region; use via ``with tracer.span(name):``."""

    __slots__ = (
        "tracer", "name", "attrs", "depth", "epoch",
        "_t0", "_sim0", "_child_wall_s", "dur_wall_s",
    )

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, float]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.epoch = 0
        self._t0 = 0.0
        self._sim0 = 0.0
        self._child_wall_s = 0.0
        self.dur_wall_s = 0.0

    def set(self, **attrs) -> None:
        """Attach payload fields (exported into the Chrome trace)."""
        self.attrs.update(attrs)

    def __enter__(self) -> Span:
        tr = self.tracer
        self.depth = len(tr._stack)
        self.epoch = tr.current_epoch
        tr._stack.append(self)
        self._sim0 = tr._sim_now()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        t1 = time.perf_counter()
        tr = self.tracer
        self.dur_wall_s = t1 - self._t0
        tr._stack.pop()
        if tr._stack:
            tr._stack[-1]._child_wall_s += self.dur_wall_s
        record = SpanRecord(
            name=self.name,
            start_wall_s=self._t0 - tr.origin,
            dur_wall_s=self.dur_wall_s,
            start_sim_s=self._sim0,
            dur_sim_s=max(0.0, tr._sim_now() - self._sim0),
            depth=self.depth,
            epoch=self.epoch,
            child_wall_s=self._child_wall_s,
            attrs=self.attrs,
        )
        tr.spans.append(record)
        bus = tr.bus
        if bus is not None and bus.active and tr.publish_spans:
            bus.publish(
                "span",
                record.epoch,
                record.start_sim_s,
                name=record.name,
                wall_us=record.dur_wall_s * 1e6,
                depth=record.depth,
            )


class SimClock:
    """Picklable simulated-clock binding for :attr:`Tracer.sim_clock`.

    The engine points the tracer at its epoch state with an instance
    of this class rather than a ``lambda: st.now_s`` closure: the
    tracer rides inside checkpoint pickles, and a lambda on the
    attribute would fail the first ``pickle.dump`` it meets.
    """

    __slots__ = ("_state",)

    def __init__(self, state) -> None:
        self._state = state

    def __call__(self) -> float:
        return float(self._state.now_s)


class Tracer:
    """Collects :class:`SpanRecord` objects for one run.

    Args:
        enabled: a disabled tracer returns a shared no-op span.
        bus: optional telemetry bus; completed spans publish
            ``stage="span"`` events onto it (see ``publish_spans``).
    """

    def __init__(self, enabled: bool = True, bus=None):
        self.enabled = bool(enabled)
        self.bus = bus
        #: Publish completed spans onto ``bus`` (needs an active bus).
        self.publish_spans = True
        self.spans: List[SpanRecord] = []
        self.origin = time.perf_counter()
        #: Current epoch, stamped onto spans (the engine maintains it).
        self.current_epoch = 0
        #: Simulated clock; the engine wires a :class:`SimClock`.
        self.sim_clock: Optional[Callable[[], float]] = None
        self._stack: List[Span] = []

    def _sim_now(self) -> float:
        return self.sim_clock() if self.sim_clock is not None else 0.0

    def span(self, name: str, **attrs):
        """Open a nestable timed region as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self.origin = time.perf_counter()

    # ------------------------------------------------------------------
    # aggregation

    def flame_table(self) -> List[Dict[str, float]]:
        """Per-span-name aggregate: where the run's wall-clock went.

        One row per span name with ``count``, ``total_s`` (inclusive
        wall), ``self_s`` (exclusive wall), ``total_sim_s``, sorted by
        inclusive time descending.  ``total_s`` of the stage rows sums
        to (almost exactly) the root span's duration, which is the
        run's measured wall-clock.
        """
        rows: Dict[str, Dict[str, float]] = {}
        for r in self.spans:
            row = rows.setdefault(
                r.name,
                {"name": r.name, "count": 0.0, "total_s": 0.0,
                 "self_s": 0.0, "total_sim_s": 0.0},
            )
            row["count"] += 1
            row["total_s"] += r.dur_wall_s
            row["self_s"] += r.self_wall_s
            row["total_sim_s"] += r.dur_sim_s
        return sorted(rows.values(), key=lambda r: -r["total_s"])

    def total_wall_s(self, name: str) -> float:
        """Total inclusive wall-clock of every span named ``name``."""
        return sum(r.dur_wall_s for r in self.spans if r.name == name)

    def coverage(self, root: str = "run", depth: int = 1) -> float:
        """Fraction of the root span's wall-clock covered by spans at
        ``depth`` (the per-stage children).  The acceptance bar for
        the pipeline instrumentation is ≥0.95."""
        total = self.total_wall_s(root)
        if total <= 0:
            return 0.0
        covered = sum(r.dur_wall_s for r in self.spans if r.depth == depth)
        return covered / total
