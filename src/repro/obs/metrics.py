"""Metrics registry: counters, gauges, and log2-bucket histograms.

The pipeline's components (engine, M5 manager, the async migration
engine, the CXL controller) register their instruments into one
:class:`MetricsRegistry` per run.  Three metric kinds exist:

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge` — a value that can go up and down (queue depth,
  resident pages);
* :class:`Histogram` — fixed power-of-two buckets (``le`` semantics),
  plus ``sum`` and ``count``, so latency distributions export to
  Prometheus without any quantile estimation at runtime.

Metrics are registered as *families* — a name, a help string, and a
tuple of label names — and instantiated per label combination with
:meth:`MetricFamily.labels`.  A family with no labels acts as its own
single series (``family.inc()`` works directly), which keeps call
sites terse.

**Disabled registries are free.**  A registry constructed with
``enabled=False`` hands out shared null families whose ``inc`` /
``set`` / ``observe`` are empty methods and stores nothing, so
instrumented hot paths never need ``if metrics:`` guards and the
default (observability-off) pipeline stays bit-identical and fast.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def log2_buckets(min_exp: int, max_exp: int) -> Tuple[float, ...]:
    """Histogram bounds ``2**min_exp .. 2**max_exp`` (inclusive).

    Fixed powers of two: cheap to reason about, and two snapshots
    taken with the same exponent range always diff bucket-for-bucket.
    """
    if min_exp > max_exp:
        raise ValueError("min_exp must be <= max_exp")
    return tuple(2.0 ** e for e in range(min_exp, max_exp + 1))


#: Default bounds for wall-clock durations in seconds: ~1 µs to 16 s.
DURATION_BUCKETS = log2_buckets(-20, 4)


class Counter:
    """Monotonic total.  ``inc`` with a negative amount raises."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with ``le`` (at-or-below) semantics.

    ``counts[i]`` is the number of observations in bucket *i*
    (non-cumulative internally; snapshots export the Prometheus
    cumulative form).  Observations above the last bound land in the
    implicit ``+Inf`` bucket.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...] = DURATION_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``[(le_bound, cumulative_count), ...]`` ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile by linear interpolation in-bucket.

        The classic Prometheus ``histogram_quantile`` estimator: find
        the bucket holding the target rank and interpolate linearly
        between its bounds (the first bucket interpolates from 0, the
        +Inf bucket clamps to the last finite bound).  NaN when the
        histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        running = 0
        for i, n in enumerate(self.counts[:-1]):
            running += n
            if running >= target and n > 0:
                hi = self.bounds[i]
                lo = self.bounds[i - 1] if i > 0 else 0.0
                frac = (target - (running - n)) / n
                return lo + (hi - lo) * frac
        # Target rank lands in the +Inf bucket: clamp to the last
        # finite bound (there is no upper edge to interpolate toward).
        return self.bounds[-1]

    def p50(self) -> float:
        return self.quantile(0.50)

    def p95(self) -> float:
        return self.quantile(0.95)

    def p99(self) -> float:
        return self.quantile(0.99)


class _NullMetric:
    """Shared do-nothing instrument handed out by disabled registries."""

    kind = "null"
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, *values, **kv) -> _NullMetric:
        return self


NULL_METRIC = _NullMetric()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its per-label-combination series."""

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: Tuple[str, ...] = (),
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._series: Dict[Tuple[str, ...], object] = {}

    def _make(self):
        if self.kind == "histogram":
            return Histogram(self.buckets or DURATION_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, *values, **kv):
        """The series for one label combination (created on demand).

        Accepts positional values in ``label_names`` order or keyword
        values; a label-less family has exactly one series, fetched
        with no arguments.
        """
        if kv:
            if values:
                raise ValueError("pass labels positionally or by name, not both")
            try:
                values = tuple(str(kv.pop(n)) for n in self.label_names)
            except KeyError as exc:
                raise ValueError(f"missing label {exc.args[0]!r}") from exc
            if kv:
                raise ValueError(f"unknown labels {sorted(kv)}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {values}"
            )
        series = self._series.get(values)
        if series is None:
            series = self._series[values] = self._make()
        return series

    # Label-less convenience: the family proxies its single series.

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def series(self) -> List[Tuple[Dict[str, str], object]]:
        """``[(label_dict, metric), ...]`` in insertion order."""
        return [
            (dict(zip(self.label_names, values)), metric)
            for values, metric in self._series.items()
        ]


class MetricsRegistry:
    """Get-or-create registry of metric families.

    Re-registering an existing name returns the same family (so every
    component can declare its instruments idempotently); re-registering
    with a different kind or label set is an error.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._families: Dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        help: str,
        kind: str,
        labels: Iterable[str],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        if not self.enabled:
            return NULL_METRIC
        labels = tuple(labels)
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != labels:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}{family.label_names}"
                )
            return family
        family = MetricFamily(name, help, kind, labels, buckets=buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()):
        return self._register(name, help, "counter", labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()):
        return self._register(name, help, "gauge", labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        return self._register(name, help, "histogram", labels, buckets=buckets)

    def families(self) -> List[MetricFamily]:
        return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def _widen(
        self, family: MetricFamily, label_names: Tuple[str, ...]
    ) -> None:
        """Extend a family's label set in place (merge support only).

        New label names append in incoming order; every existing
        series is re-keyed with ``""`` for the added labels, so its
        identity (and insertion order) is preserved.
        """
        union = family.label_names + tuple(
            n for n in label_names if n not in family.label_names
        )
        if union == family.label_names:
            return
        pad = ("",) * (len(union) - len(family.label_names))
        family._series = {
            key + pad: metric for key, metric in family._series.items()
        }
        family.label_names = union

    def merge(
        self,
        snapshot: Dict[str, object],
        extra_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Fold a registry ``snapshot()`` into this registry.

        The fleet-aggregation primitive: worker processes (sweep
        cells, fleet tenant shards) ship their picklable snapshot
        dicts back to the parent, which merges them into one registry
        — optionally widened by ``extra_labels`` (e.g. ``{"tenant":
        "3"}``) so same-named series from different workers stay
        distinct.  Counters and histograms accumulate; gauges take the
        incoming value (last write wins).  No-op on a disabled
        registry.

        When the same family name arrives with a *different* label set
        (a fleet-scope ``slo_breaches_total{rule=}`` meeting tenant
        ``slo_breaches_total{rule=,tenant=}``), the family is widened
        to the union and series missing a label carry ``""`` for it —
        the Prometheus data model treats an empty label value as the
        label being absent, so identities are preserved.
        """
        if not self.enabled:
            return
        extra = {str(k): str(v) for k, v in (extra_labels or {}).items()}
        for metric in snapshot.get("metrics", []):
            series_list = metric.get("series", [])
            if not series_list:
                continue
            name, kind = metric["name"], metric["kind"]
            label_names = tuple(series_list[0].get("labels", {})) + tuple(extra)
            buckets = None
            if kind == "histogram":
                buckets = tuple(
                    float(le)
                    for le, _ in series_list[0]["buckets"]
                    if le != "+Inf"
                )
            existing = self._families.get(name)
            if (
                existing is not None
                and existing.kind == kind
                and existing.label_names != label_names
            ):
                self._widen(existing, label_names)
                label_names = existing.label_names
            family = self._register(
                name, metric.get("help", ""), kind, label_names,
                buckets=buckets,
            )
            for series in series_list:
                labels = {n: "" for n in family.label_names}
                labels.update(series.get("labels", {}))
                labels.update(extra)
                target = family.labels(**labels)
                if kind == "counter":
                    target.inc(float(series["value"]))
                elif kind == "gauge":
                    target.set(float(series["value"]))
                else:
                    cumulative = [int(n) for _, n in series["buckets"]]
                    previous = 0
                    for i, running in enumerate(cumulative):
                        target.counts[i] += running - previous
                        previous = running
                    target.sum += float(series["sum"])
                    target.count += int(series["count"])

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable dump of every family and series.

        Histograms export Prometheus-style cumulative buckets
        (``[le, cumulative_count]`` pairs, +Inf encoded as the string
        ``"+Inf"`` so the snapshot survives ``json.dumps``).
        """
        metrics: List[Dict[str, object]] = []
        for family in self._families.values():
            series: List[Dict[str, object]] = []
            for labels, metric in family.series():
                if family.kind == "histogram":
                    series.append({
                        "labels": labels,
                        "count": metric.count,
                        "sum": metric.sum,
                        "buckets": [
                            ["+Inf" if le == float("inf") else le, n]
                            for le, n in metric.cumulative()
                        ],
                    })
                else:
                    series.append({"labels": labels, "value": metric.value})
            metrics.append({
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "series": series,
            })
        return {"metrics": metrics}
