"""Declarative SLO rules evaluated over the per-epoch recorder.

A :class:`SloWatchdog` turns the :class:`~repro.obs.timeseries.
TimeSeriesRecorder` into an alerting surface: each epoch it evaluates
a list of :class:`SloRule` objects — *reduce a recorder column over a
window, compare against a threshold, sustain for N consecutive
epochs* — and on breach increments the ``slo_breaches_total{rule=}``
counter and publishes an ``alert.<rule>`` event onto the run's
telemetry bus (so alerts land in the same timeline as the signals
that caused them).

Rule fields:

* ``series`` — a recorder column key, with ``fnmatch`` wildcards for
  labelled families (``fleet_tenant_bandwidth_share*`` matches every
  tenant×tier series); when several columns match, the *worst* value
  with respect to ``op`` is judged (any starved tenant fires the
  starvation rule).
* ``reduce`` — ``last`` / ``mean`` / ``max`` / ``min`` / ``rate`` /
  ``p50`` / ``p95`` / ``p99`` / ``p99_over_p50`` (the self-normalising
  tail-latency shape, so epoch-duration rules need no absolute
  threshold), applied over the last ``window`` rows.
* ``op`` + ``threshold`` — ``>``, ``>=``, ``<``, ``<=``.
* ``for_epochs`` — consecutive breaching evaluations required before
  the rule fires (debounce); the streak resets on any non-breaching
  epoch or while the series has no finite value yet.

``SimConfig.slo_rules`` accepts ``"default"`` (the built-in catalogue
resolved against the run's config — see :func:`default_rules`) or a
path to a JSON file ``{"rules": [{...}, ...]}`` with the field names
above.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.obs.timeseries import TimeSeriesRecorder

if TYPE_CHECKING:
    # Import cycle: repro.sim imports the engine, which imports
    # repro.obs; the watchdog therefore only type-references sim
    # objects here and imports SimConfig lazily where needed.
    from repro.sim.config import SimConfig
    from repro.sim.telemetry import TelemetryBus

_REDUCERS = (
    "last", "mean", "max", "min", "rate", "p50", "p95", "p99",
    "p99_over_p50",
)
_OPS = (">", ">=", "<", "<=")


@dataclass
class SloRule:
    """One declarative SLO condition over a recorder column."""

    name: str
    series: str
    reduce: str = "last"
    op: str = ">"
    threshold: float = 0.0
    #: Rows of recorder history the reducer sees.
    window: int = 32
    #: Consecutive breaching evaluations before the rule fires.
    for_epochs: int = 1

    def __post_init__(self) -> None:
        if not self.name or not self.series:
            raise ValueError("SLO rules need a name and a series")
        if self.reduce not in _REDUCERS:
            raise ValueError(
                f"unknown reduce {self.reduce!r} (known: {_REDUCERS})"
            )
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r} (known: {_OPS})")
        if self.window < 1:
            raise ValueError("window must be positive")
        if self.for_epochs < 1:
            raise ValueError("for_epochs must be positive")

    def breaches(self, value: float) -> bool:
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        if self.op == "<":
            return value < self.threshold
        return value <= self.threshold


def default_rules(config: "SimConfig") -> List[SloRule]:
    """The built-in catalogue, resolved against one run's config.

    * ``queue_saturation`` — the async migration queue holds ≥80% of
      its capacity for 2 epochs (a starved copy engine, e.g. a tiny
      ``--mig-copy-gbps``, pins it there);
    * ``epoch_duration_p99`` — the p99/p50 ratio of epoch durations
      exceeds 10× (self-normalising: no absolute time threshold);
    * ``invariant_violations`` — any recorded invariant violation;
    * ``bandwidth_starvation`` — any tenant's granted share of any
      tier's channel stays under 5% for 3 epochs (fleet runs only;
      single runs never register the series, so the rule stays idle).
    """
    return [
        SloRule(
            name="queue_saturation",
            series="migration_pending",
            reduce="last",
            op=">=",
            threshold=0.8 * config.migration_queue_capacity,
            for_epochs=2,
        ),
        SloRule(
            name="epoch_duration_p99",
            series="epoch_s",
            reduce="p99_over_p50",
            op=">",
            threshold=10.0,
            window=64,
        ),
        SloRule(
            name="invariant_violations",
            series="invariant_violations_total*",
            reduce="last",
            op=">",
            threshold=0.0,
        ),
        SloRule(
            name="bandwidth_starvation",
            series="fleet_tenant_bandwidth_share*",
            reduce="last",
            op="<",
            threshold=0.05,
            for_epochs=3,
        ),
    ]


def load_rules(
    spec: str, config: Optional["SimConfig"] = None
) -> List[SloRule]:
    """Resolve a ``slo_rules`` spec: ``"default"`` or a JSON file path."""
    if spec == "default":
        if config is None:
            from repro.sim.config import SimConfig

            config = SimConfig()
        return default_rules(config)
    with open(spec) as fh:
        payload = json.load(fh)
    raw_rules = payload.get("rules")
    if not isinstance(raw_rules, list) or not raw_rules:
        raise ValueError(f"{spec}: expected a non-empty 'rules' list")
    allowed = (
        "name", "series", "reduce", "op", "threshold", "window", "for_epochs"
    )
    rules: List[SloRule] = []
    for raw in raw_rules:
        unknown = [k for k in raw if k not in allowed]
        if unknown:
            raise ValueError(
                f"{spec}: unknown rule fields {unknown} "
                f"(allowed: {list(allowed)})"
            )
        rules.append(SloRule(**raw))
    return rules


class SloWatchdog:
    """Evaluate SLO rules each epoch; count and publish breaches.

    Args:
        rules: the rule list (see :func:`load_rules`).
        recorder: the recorder whose columns the rules read.
        bus: telemetry bus for ``alert.<rule>`` events (optional).
    """

    def __init__(
        self,
        rules: List[SloRule],
        recorder: TimeSeriesRecorder,
        bus: Optional["TelemetryBus"] = None,
    ) -> None:
        self.rules = list(rules)
        self.recorder = recorder
        self.bus = bus
        self._m_breaches = recorder.registry.counter(
            "slo_breaches_total",
            "SLO rule breaches (after the rule's sustain window)",
            labels=("rule",),
        )
        self._mx_breaches = {
            rule.name: self._m_breaches.labels(rule=rule.name)
            for rule in self.rules
        }
        self._streaks: Dict[str, int] = {rule.name: 0 for rule in self.rules}
        #: Total breaching evaluations across all rules (post-sustain).
        self.breaches_total = 0
        #: Chronological record of every fired breach.
        self.alerts: List[Dict[str, object]] = []

    # ------------------------------------------------------------------

    def _matching_columns(self, pattern: str) -> List[str]:
        if any(ch in pattern for ch in "*?["):
            return [
                key
                for key in self.recorder.columns()
                if fnmatchcase(key, pattern)
            ]
        return [pattern] if pattern in self.recorder.columns() else []

    def _reduce_column(self, rule: SloRule, key: str) -> float:
        rec = self.recorder
        if rule.reduce == "last":
            return rec.last(key)
        if rule.reduce == "rate":
            return rec.rate(key, window=rule.window)
        if rule.reduce == "p99_over_p50":
            p50 = rec.quantile(key, 0.50, window=rule.window)
            p99 = rec.quantile(key, 0.99, window=rule.window)
            if not math.isfinite(p50) or p50 <= 0.0:
                return float("nan")
            return p99 / p50
        if rule.reduce in ("p50", "p95", "p99"):
            q = {"p50": 0.50, "p95": 0.95, "p99": 0.99}[rule.reduce]
            return rec.quantile(key, q, window=rule.window)
        values = rec.column(key, window=rule.window)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return float("nan")
        if rule.reduce == "mean":
            return float(finite.mean())
        if rule.reduce == "max":
            return float(finite.max())
        return float(finite.min())

    def evaluate_rule(self, rule: SloRule) -> Optional[float]:
        """The rule's judged value this epoch (None = series absent).

        Across several matching columns the *worst* reduced value
        w.r.t. the rule's direction is judged: the max for ``>``/
        ``>=`` rules, the min for ``<``/``<=``.
        """
        keys = self._matching_columns(rule.series)
        values = [self._reduce_column(rule, key) for key in keys]
        values = [v for v in values if math.isfinite(v)]
        if not values:
            return None
        return max(values) if rule.op in (">", ">=") else min(values)

    def evaluate(self, epoch: int, t_s: float) -> int:
        """Evaluate every rule once; returns breaches fired this call."""
        fired = 0
        for rule in self.rules:
            value = self.evaluate_rule(rule)
            if value is None or not rule.breaches(value):
                self._streaks[rule.name] = 0
                continue
            self._streaks[rule.name] += 1
            if self._streaks[rule.name] < rule.for_epochs:
                continue
            fired += 1
            self.breaches_total += 1
            self._mx_breaches[rule.name].inc()
            alert = {
                "epoch": float(epoch),
                "t_s": float(t_s),
                "value": float(value),
                "threshold": float(rule.threshold),
                "streak": float(self._streaks[rule.name]),
            }
            self.alerts.append(dict(alert, rule=rule.name))
            if self.bus is not None and self.bus.active:
                # Event names are built dynamically on purpose: the
                # catalogue of alert kinds is user-defined (JSON rule
                # files), not a fixed registry entry.
                self.bus.publish(
                    f"alert.{rule.name}",
                    epoch,
                    t_s,
                    value=float(value),
                    threshold=float(rule.threshold),
                    streak=int(self._streaks[rule.name]),
                )
        return fired

    def breaches_by_rule(self) -> Dict[str, float]:
        """Total fired breaches per rule name."""
        totals: Dict[str, float] = {rule.name: 0.0 for rule in self.rules}
        for alert in self.alerts:
            totals[str(alert["rule"])] += 1.0
        return totals
