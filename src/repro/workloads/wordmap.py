"""Word-level access structure: which 64B words of each page get used.

Figure 4 of the paper measures, per benchmark, the probability that a
4KB page has at most {4, 8, 16, 32, 48} unique 64B words accessed.
This module turns such a profile into a per-page *active word set*:

* each page draws an active-word **count** from a bucket distribution
  matching the target CDF;
* its active word **positions** are a deterministic pseudo-random
  stride sequence keyed by the page id (no per-page storage);
* accesses to the page pick among its active words (uniformly by
  default), so WAC observes exactly the intended sparsity.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.memory.address import WORD_SHIFT, WORDS_PER_PAGE

#: Figure 4's threshold grid.
SPARSITY_THRESHOLDS = (4, 8, 16, 32, 48)

# Odd strides generate full 64-cycles mod 64; key by page hash.
_STRIDES = np.array([1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31],
                    dtype=np.int64)
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


class WordDensityProfile:
    """Distribution of active-word counts per page.

    Args:
        cdf_targets: mapping threshold → P(active words ≤ threshold),
            on the Figure 4 grid.  The residual mass above 48 words is
            spread over counts 49..64.
    """

    def __init__(self, cdf_targets: Dict[int, float]):
        thresholds = list(SPARSITY_THRESHOLDS)
        cdf = [float(cdf_targets[t]) for t in thresholds]
        if any(not 0.0 <= v <= 1.0 for v in cdf):
            raise ValueError("CDF values must be in [0, 1]")
        if any(b < a - 1e-12 for a, b in zip(cdf, cdf[1:])):
            raise ValueError("CDF must be non-decreasing")
        self.cdf_targets = {t: v for t, v in zip(thresholds, cdf)}
        # Buckets: (1..4], (4..8], (8..16], (16..32], (32..48], (48..64]
        edges = [0] + thresholds + [WORDS_PER_PAGE]
        probs = np.diff([0.0] + cdf + [1.0])
        if probs.min() < -1e-12:
            raise ValueError("CDF produced a negative bucket mass")
        probs = np.clip(probs, 0.0, None)
        probs = probs / probs.sum()
        self._bucket_lo = np.array(edges[:-1]) + 1
        self._bucket_hi = np.array(edges[1:])
        self._bucket_probs = probs

    def sample_counts(self, num_pages: int, rng: np.random.Generator) -> np.ndarray:
        """Active-word count per page, in [1, 64]."""
        bucket = rng.choice(len(self._bucket_probs), size=num_pages,
                            p=self._bucket_probs)
        lo = self._bucket_lo[bucket]
        hi = self._bucket_hi[bucket]
        return (lo + (rng.random(num_pages) * (hi - lo + 1)).astype(np.int64)).clip(
            1, WORDS_PER_PAGE
        )

    @classmethod
    def dense(cls, residual: float = 0.05) -> WordDensityProfile:
        """Mostly-dense pages (SPEC-style, ≥75% of words accessed)."""
        r = float(residual)
        return cls({4: r * 0.1, 8: r * 0.2, 16: r * 0.4, 32: r * 0.7, 48: r})

    @classmethod
    def sparse_kv(cls, at_16: float = 0.86) -> WordDensityProfile:
        """Key-value-store style sparsity (Redis: 86% of pages have at
        most 16 of 64 words accessed)."""
        return cls(
            {
                4: at_16 * 0.55,
                8: at_16 * 0.80,
                16: at_16,
                32: min(1.0, at_16 + (1 - at_16) * 0.55),
                48: min(1.0, at_16 + (1 - at_16) * 0.80),
            }
        )


class WordSelector:
    """Maps (page, active_count) to concrete word indices, statelessly.

    Page ``p`` with ``k`` active words uses word indices
    ``(start(p) + i * stride(p)) mod 64`` for ``i in [0, k)`` — distinct
    because the stride is odd.
    """

    def __init__(self, seed: int = 0):
        self._seed = np.uint64(seed * 2 + 1)

    def _page_hash(self, pages: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            return (pages.astype(np.uint64) * _HASH_MULT + self._seed) >> np.uint64(13)

    def start_of(self, pages: np.ndarray) -> np.ndarray:
        return (self._page_hash(pages) & np.uint64(WORDS_PER_PAGE - 1)).astype(np.int64)

    def stride_of(self, pages: np.ndarray) -> np.ndarray:
        idx = ((self._page_hash(pages) >> np.uint64(8)) & np.uint64(15)).astype(np.int64)
        return _STRIDES[idx]

    def active_words(self, page: int, count: int) -> np.ndarray:
        """The page's active word-index set (for tests/inspection)."""
        pages = np.array([page], dtype=np.int64)
        start = self.start_of(pages)[0]
        stride = self.stride_of(pages)[0]
        i = np.arange(int(count), dtype=np.int64)
        return (start + i * stride) % WORDS_PER_PAGE

    def select(
        self,
        pages: np.ndarray,
        counts_per_page: np.ndarray,
        rng: np.random.Generator,
        skew: float = 0.0,
    ) -> np.ndarray:
        """Pick one word index for each access.

        Args:
            pages: page id per access.
            counts_per_page: active-word count array indexed by page id.
            skew: 0 = uniform across active words; values in (0, 1]
                concentrate accesses on the first active words (square
                transform), modelling very hot words inside sparse
                pages ("a sparse page can be identified as a hot page
                because of a few very hot words").
        """
        pages = np.asarray(pages, dtype=np.int64)
        k = counts_per_page[pages]
        u = rng.random(pages.size)
        if skew > 0.0:
            u = u ** (1.0 + skew * 3.0)
        i = (u * k).astype(np.int64)
        start = self.start_of(pages)
        stride = self.stride_of(pages)
        return (start + i * stride) % WORDS_PER_PAGE


def addresses_from(pages: np.ndarray, words: np.ndarray) -> np.ndarray:
    """Combine page ids and word indices into logical byte addresses."""
    pages = np.asarray(pages, dtype=np.uint64)
    words = np.asarray(words, dtype=np.uint64)
    return (pages << np.uint64(12)) | (words << np.uint64(WORD_SHIFT))
