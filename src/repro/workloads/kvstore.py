"""In-memory key-value store workloads: Redis, Memcached, CacheLib.

The paper runs Redis 6.0.16 under YCSB-A (50% reads, 50% updates over
a Zipfian-ish request stream whose *memory*-level effect the paper
describes as "uniform random memory accesses").  The defining
word-level property (Figure 4) is sparsity: small values scattered by
the allocator leave only 16 or fewer of a page's 64 words touched in
86% of Redis pages (76% Memcached, 74% CacheLib).

The generator models a slab/arena allocator: each key's value occupies
a few words of some page, so page popularity is the sum of its
resident keys' request rates — near-uniform across pages even under a
skewed key distribution, because every page holds many keys.
"""

from __future__ import annotations

from repro.workloads.base import SyntheticParams, SyntheticWorkload, WorkloadSpec
from repro.workloads.phases import Stationary
from repro.workloads.wordmap import WordDensityProfile
from repro.workloads.zipf import blend, shuffled, uniform_popularity, zipf_popularity

#: Figure 4 calibration: cumulative P(unique words <= N).
KV_DENSITY = {
    "redis": {4: 0.47, 8: 0.68, 16: 0.86, 32: 0.93, 48: 0.97},
    "memcached": {4: 0.40, 8: 0.58, 16: 0.76, 32: 0.88, 48: 0.94},
    "cachelib": {4: 0.38, 8: 0.56, 16: 0.74, 32: 0.86, 48: 0.93},
}

#: Page-popularity structure: YCSB-A's Zipfian request stream leaves a
#: clear page-level skew (values are ~1KB, so only a few keys share a
#: page), spread across the whole keyspace with no spatial locality —
#: the paper's "uniform random memory accesses".  (weight, exponent)
#: of the Zipf component blended with a uniform floor:
KV_PAGE_SKEW = {
    "redis": (0.55, 0.85),
    "memcached": (0.55, 0.80),
    "cachelib": (0.55, 0.75),
}


def make_kv_workload(store: str, spec: WorkloadSpec, seed: int = 0) -> SyntheticWorkload:
    """Build the YCSB-A-style generator for one KV store."""
    store = store.lower()
    if store not in KV_DENSITY:
        raise ValueError(f"unknown KV store {store!r}")
    weight, exponent = KV_PAGE_SKEW[store]
    n = spec.footprint_pages
    pop = blend(
        (1.0 - weight, uniform_popularity(n)),
        (weight, shuffled(zipf_popularity(n, exponent), seed=seed)),
    )
    params = SyntheticParams(
        popularity=pop,
        word_density=WordDensityProfile(KV_DENSITY[store]),
        phase_model=Stationary(pop),
        # Within a sparse page a couple of resident hot keys dominate:
        # "a sparse page can be identified as a hot page because of a
        # few very hot words".
        word_skew=0.6,
    )
    return SyntheticWorkload(spec, params, seed=seed)
