"""Benchmark registry: the paper's Table 3 plus the Figure 4 extras.

Footprints are scaled down proportionally from the paper's GB figures
(default: 1024 pages ≈ 4MB of model footprint per paper-GB) so whole
experiments run in seconds while preserving every ratio that matters:
footprint vs DDR capacity (the paper caps DDR at 3GB ≈ half the
footprint), K vs footprint (~1/16), and the relative footprints across
benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.base import SyntheticWorkload, WorkloadSpec
from repro.workloads.graph import make_gap_workload
from repro.workloads.kvstore import make_kv_workload
from repro.workloads.ml import make_liblinear_workload
from repro.workloads.spec_cpu import make_spec_workload

#: Model pages per paper-GB (scale-down factor).
PAGES_PER_GB = 1024

#: The paper's DDR cgroup cap (3GB) and CXL device size (8GB), scaled.
DDR_CAPACITY_GB = 3.0
CXL_CAPACITY_GB = 8.0


def ddr_capacity_pages(pages_per_gb: int = PAGES_PER_GB) -> int:
    return int(DDR_CAPACITY_GB * pages_per_gb)


def cxl_capacity_pages(pages_per_gb: int = PAGES_PER_GB) -> int:
    return int(CXL_CAPACITY_GB * pages_per_gb)


class _Entry:
    def __init__(
        self,
        name: str,
        gb: float,
        factory: Callable[[WorkloadSpec, int], SyntheticWorkload],
        description: str,
        cores: int,
        ways: int,
        latency_sensitive: bool = False,
        mpki: float = 20.0,
    ):
        self.name = name
        self.gb = gb
        self.factory = factory
        self.description = description
        self.cores = cores
        self.ways = ways
        self.latency_sensitive = latency_sensitive
        self.mpki = mpki

    def spec(self, pages_per_gb: int = PAGES_PER_GB) -> WorkloadSpec:
        return WorkloadSpec(
            name=self.name,
            footprint_pages=int(self.gb * pages_per_gb),
            description=self.description,
            cores=self.cores,
            llc_ways=self.ways,
            latency_sensitive=self.latency_sensitive,
            paper_footprint_gb=self.gb,
            mpki=self.mpki,
        )

    def build(self, seed: int = 0, pages_per_gb: int = PAGES_PER_GB) -> SyntheticWorkload:
        return self.factory(self.spec(pages_per_gb), seed)


def _gap(kernel):
    return lambda spec, seed: make_gap_workload(kernel, spec, seed)


def _spec_cpu(bench):
    return lambda spec, seed: make_spec_workload(bench, spec, seed)


def _kv(store):
    return lambda spec, seed: make_kv_workload(store, spec, seed)


_REGISTRY: Dict[str, _Entry] = {
    e.name: e
    for e in [
        _Entry("liblinear", 6.0, lambda s, seed: make_liblinear_workload(s, seed),
               "Linear classification (KDD 2012)", 20, 10, mpki=28.0),
        _Entry("bc", 6.9, _gap("bc"), "Betweenness Centrality", 20, 10, mpki=30.0),
        _Entry("bfs", 6.9, _gap("bfs"), "Breadth-First Search", 20, 10, mpki=32.0),
        _Entry("cc", 6.9, _gap("cc"), "Connected Components", 20, 10, mpki=30.0),
        _Entry("pr", 6.9, _gap("pr"), "PageRank", 20, 10, mpki=35.0),
        _Entry("sssp", 6.9, _gap("sssp"), "Single-Source Shortest Paths", 20, 10,
               mpki=30.0),
        _Entry("tc", 5.0, _gap("tc"), "Triangle Counting", 20, 10, mpki=22.0),
        _Entry("cactubssn", 6.3, _spec_cpu("cactubssn"),
               "Einstein's equations simulation", 8, 4, mpki=18.0),
        _Entry("fotonik3d", 6.8, _spec_cpu("fotonik3d"),
               "Photonic waveguide simulation", 8, 4, mpki=25.0),
        _Entry("mcf", 4.9, _spec_cpu("mcf"),
               "Single-depot vehicle scheduling", 8, 4, mpki=40.0),
        _Entry("roms", 6.7, _spec_cpu("roms"),
               "Free-surface ocean model simulation", 8, 4, mpki=22.0),
        _Entry("redis", 6.0, _kv("redis"), "In-memory KVS with YCSB-A", 1, 1,
               latency_sensitive=True, mpki=15.0),
        # Figure 4 extras (not in Table 3's performance runs):
        _Entry("memcached", 6.0, _kv("memcached"), "In-memory cache (mcd)", 1, 1,
               latency_sensitive=True, mpki=15.0),
        _Entry("cachelib", 6.0, _kv("cachelib"), "Hybrid cache engine (c.-lib)", 1, 1,
               latency_sensitive=True, mpki=15.0),
    ]
}

#: The twelve Table 3 benchmarks (Figures 3, 8, 9, 10).
MEMORY_INTENSIVE: List[str] = [
    "liblinear", "bc", "bfs", "cc", "pr", "sssp", "tc",
    "cactubssn", "fotonik3d", "mcf", "roms", "redis",
]

#: Figure 4's sparsity study adds Memcached and CacheLib.
SPARSITY_SET: List[str] = MEMORY_INTENSIVE + ["memcached", "cachelib"]

#: The six benchmarks traced for the §7.1 tracker design sweep (Fig 7).
TRACKER_SWEEP_SET: List[str] = [
    "cactubssn", "fotonik3d", "liblinear", "mcf", "pr", "roms",
]

#: Figure 11's scalability study benchmarks.
SCALABILITY_SET: List[str] = ["mcf", "roms", "fotonik3d", "cactubssn"]


def names() -> List[str]:
    return list(_REGISTRY)


def spec_of(name: str, pages_per_gb: int = PAGES_PER_GB) -> WorkloadSpec:
    return _entry(name).spec(pages_per_gb)


def build(name: str, seed: int = 0, pages_per_gb: int = PAGES_PER_GB) -> SyntheticWorkload:
    """Construct a calibrated generator for a registered benchmark."""
    return _entry(name).build(seed=seed, pages_per_gb=pages_per_gb)


def _entry(name: str) -> _Entry:
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None
