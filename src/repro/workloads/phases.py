"""Temporal phase models for the trace generators.

Page-migration quality is largely a question of *temporal* behaviour:
a scanner that aggregates over seconds looks good when the hot set is
stable (SPEC stencils) and poor when it drifts (graph frontiers).
Three models cover the behaviours the paper's benchmarks exhibit:

* :class:`Stationary` — fixed popularity (Redis uniform traffic,
  converged PageRank iterations);
* :class:`RotatingWorkingSet` — the hot group of pages rotates through
  the footprint (BFS/BC frontier expansion, liblinear's pass over
  shards);
* :class:`SweepMix` — a sequential sweep over the footprint blended
  with a stationary hot set (stencil codes: cactuBSSN, fotonik3d,
  roms; CSR edge-array scans in PR/CC).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.workloads.zipf import sample_pages


class PhaseModel(abc.ABC):
    """Produces page ids for consecutive trace chunks."""

    def __init__(self, popularity: np.ndarray):
        popularity = np.asarray(popularity, dtype=np.float64)
        if popularity.ndim != 1 or popularity.size == 0:
            raise ValueError("popularity must be a non-empty vector")
        total = popularity.sum()
        if total <= 0:
            raise ValueError("popularity must have positive mass")
        self.popularity = popularity / total
        self.num_pages = popularity.size
        self._accesses_emitted = 0

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        pages = self._sample(count, rng)
        self._accesses_emitted += int(count)
        return pages

    @abc.abstractmethod
    def _sample(self, count: int, rng: np.random.Generator) -> np.ndarray: ...

    def reset(self) -> None:
        self._accesses_emitted = 0


class Stationary(PhaseModel):
    """Time-invariant popularity."""

    def _sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return sample_pages(self.popularity, count, rng)


class RotatingWorkingSet(PhaseModel):
    """Popularity boosted inside a window that rotates over time.

    Args:
        popularity: baseline popularity (background accesses).
        window_fraction: fraction of the footprint forming the current
            working set.
        boost: multiplicative heat applied inside the window.
        accesses_per_phase: rotation cadence in accesses.
        stride_fraction: how far the window advances per phase, as a
            fraction of the window (1.0 = disjoint windows).
    """

    def __init__(
        self,
        popularity: np.ndarray,
        window_fraction: float = 0.1,
        boost: float = 20.0,
        accesses_per_phase: int = 100_000,
        stride_fraction: float = 1.0,
    ):
        super().__init__(popularity)
        if not 0 < window_fraction <= 1:
            raise ValueError("window_fraction must be in (0, 1]")
        if boost <= 0 or accesses_per_phase <= 0 or stride_fraction <= 0:
            raise ValueError("boost, cadence, and stride must be positive")
        self.window_pages = max(1, int(window_fraction * self.num_pages))
        self.boost = float(boost)
        self.accesses_per_phase = int(accesses_per_phase)
        self.stride = max(1, int(self.window_pages * stride_fraction))

    def current_window_start(self) -> int:
        phase = self._accesses_emitted // self.accesses_per_phase
        return (phase * self.stride) % self.num_pages

    def _sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        start = self.current_window_start()
        weights = self.popularity.copy()
        idx = (start + np.arange(self.window_pages)) % self.num_pages
        weights[idx] *= self.boost
        weights /= weights.sum()
        return sample_pages(weights, count, rng)


class SweepMix(PhaseModel):
    """Sequential sweep blended with stationary popularity.

    Args:
        popularity: the stationary (hot-set) component.
        sweep_fraction: fraction of accesses belonging to the sweep.
        hits_per_page: accesses the sweep spends on each page before
            moving on (a stencil touching most 64B words of a page
            lands in the tens); fixes the sweep's speed in pages per
            access, independent of how the trace is chunked.
    """

    def __init__(
        self,
        popularity: np.ndarray,
        sweep_fraction: float = 0.5,
        hits_per_page: int = 48,
        sweep_start: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(popularity)
        if not 0 <= sweep_fraction <= 1:
            raise ValueError("sweep_fraction must be in [0, 1]")
        if hits_per_page <= 0:
            raise ValueError("hits_per_page must be positive")
        self.sweep_fraction = float(sweep_fraction)
        self.hits_per_page = int(hits_per_page)
        if sweep_start is None and rng is not None:
            # Preferred: derive the sweep origin from the caller's
            # seed-derived generator.
            sweep_start = int(rng.integers(self.num_pages))
        elif sweep_start is None:
            # Legacy default: a *structural* hash of the footprint size
            # (not entropy) — it decorrelates the sweep from other
            # sequential walkers (e.g. ANB's scan cursor) and is pinned
            # by the roms/cactubssn differential goldens, so it must
            # not change.  New callers should pass `rng` instead.
            # lint: disable=DET004 -- golden-pinned structural hash of num_pages
            sweep_start = int(
                np.random.default_rng(self.num_pages).integers(self.num_pages)
            )
        self._sweep_start = int(sweep_start) % self.num_pages
        self._sweep_pos = self._sweep_start

    def _sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        n_sweep = int(round(count * self.sweep_fraction))
        n_hot = count - n_sweep
        parts = []
        if n_hot:
            parts.append(sample_pages(self.popularity, n_hot, rng))
        if n_sweep:
            # Consecutive page touches marching through the footprint;
            # each page in the current stretch is hit `hits_per_page`
            # times (stencil codes touch most words of a page).
            stretch_pages = max(1, n_sweep // self.hits_per_page)
            stretch = np.repeat(
                (self._sweep_pos + np.arange(stretch_pages)) % self.num_pages,
                self.hits_per_page,
            )[:n_sweep]
            if stretch.size < n_sweep:
                stretch = np.pad(stretch, (0, n_sweep - stretch.size), mode="edge")
            self._sweep_pos = (self._sweep_pos + stretch_pages) % self.num_pages
            parts.append(stretch.astype(np.int64))
        pages = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        # Interleave sweep and hot accesses rather than concatenating
        # phases, as both proceed concurrently in the real codes.
        rng.shuffle(pages)
        return pages

    def reset(self) -> None:
        super().reset()
        self._sweep_pos = self._sweep_start
