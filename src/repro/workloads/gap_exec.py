"""Executable GAP kernels: mechanistic traces from a real CSR graph.

The registry's GAP generators are statistical (popularity/phase models
derived from graph structure).  These implementations *run* the
kernels over the CSR substrate and record the actual memory-access
sequence — vertex-array reads, adjacency-list scans, frontier pushes —
so they serve as the ground-truth oracle for the calibrated
generators' shapes (hub pages hot, frontiers drifting).

Memory layout (matching :class:`~repro.workloads.graph.GraphLayout`):
64B of property state per vertex, 8B per CSR edge entry; vertex arrays
first, then the edge array.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.workloads.graph import (
    EDGES_PER_PAGE,
    VERTICES_PER_PAGE,
    CsrGraph,
)
from repro.memory.address import PAGE_SIZE, WORD_SIZE

#: Bytes of property state per vertex (one 64B word).
VERTEX_BYTES = PAGE_SIZE // VERTICES_PER_PAGE
#: Bytes per edge entry.
EDGE_BYTES = PAGE_SIZE // EDGES_PER_PAGE


class GraphAddressMap:
    """Maps vertex ids and edge indices to byte addresses."""

    def __init__(self, graph: CsrGraph):
        self.graph = graph
        self.vertex_pages = -(-graph.num_nodes // VERTICES_PER_PAGE)
        self.edge_base = self.vertex_pages * PAGE_SIZE

    def vertex_addr(self, vertices: np.ndarray) -> np.ndarray:
        return np.asarray(vertices, dtype=np.uint64) * np.uint64(VERTEX_BYTES)

    def edge_addr(self, edge_indices: np.ndarray) -> np.ndarray:
        # 8B entries: 8 edges share one 64B word; addresses are
        # word-aligned as the cache sees them.
        byte = np.asarray(edge_indices, dtype=np.uint64) * np.uint64(EDGE_BYTES)
        return (np.uint64(self.edge_base) + byte) & ~np.uint64(WORD_SIZE - 1)

    @property
    def footprint_pages(self) -> int:
        edge_pages = -(-self.graph.num_edges // EDGES_PER_PAGE)
        return self.vertex_pages + edge_pages


def bfs_trace(graph: CsrGraph, source: int = 0) -> np.ndarray:
    """Run BFS and record its access stream.

    Per level: read each frontier vertex's state, scan its adjacency
    list (edge array), and touch each neighbour's state (visited
    check + parent write).
    """
    amap = GraphAddressMap(graph)
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    parts: List[np.ndarray] = []
    while frontier.size:
        parts.append(amap.vertex_addr(frontier))
        next_frontier = []
        for v in frontier.tolist():
            lo, hi = int(graph.offsets[v]), int(graph.offsets[v + 1])
            if hi > lo:
                parts.append(amap.edge_addr(np.arange(lo, hi)))
                nbrs = graph.targets[lo:hi]
                parts.append(amap.vertex_addr(nbrs))
                fresh = nbrs[~visited[nbrs]]
                if fresh.size:
                    visited[fresh] = True
                    next_frontier.append(np.unique(fresh))
        frontier = (
            np.concatenate(next_frontier) if next_frontier
            else np.empty(0, dtype=np.int64)
        )
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.uint64)


def pagerank_trace(graph: CsrGraph, iterations: int = 2) -> np.ndarray:
    """Run pull-based PageRank iterations and record the stream.

    Per iteration, for every vertex: read its offsets/state, scan its
    adjacency span, and gather each neighbour's rank — the
    degree-proportional random-access component that heats hub pages.
    """
    amap = GraphAddressMap(graph)
    parts: List[np.ndarray] = []
    all_vertices = np.arange(graph.num_nodes, dtype=np.int64)
    for _ in range(int(iterations)):
        # Sequential pass over vertex state (read + write new rank).
        parts.append(amap.vertex_addr(all_vertices))
        # Edge array sequential scan.
        parts.append(amap.edge_addr(np.arange(graph.num_edges)))
        # Gather neighbours' ranks: one vertex-state read per edge.
        parts.append(amap.vertex_addr(graph.targets))
    return np.concatenate(parts)


def connected_components_trace(graph: CsrGraph, max_rounds: int = 8) -> np.ndarray:
    """Label-propagation connected components, recording the stream.

    Rounds shrink as labels converge — the naturally shrinking active
    set the statistical `cc` generator approximates with a rotating
    boost.
    """
    amap = GraphAddressMap(graph)
    labels = np.arange(graph.num_nodes, dtype=np.int64)
    active = np.ones(graph.num_nodes, dtype=bool)
    parts: List[np.ndarray] = []
    for _ in range(int(max_rounds)):
        vertices = np.nonzero(active)[0]
        if vertices.size == 0:
            break
        parts.append(amap.vertex_addr(vertices))
        next_active = np.zeros(graph.num_nodes, dtype=bool)
        for v in vertices.tolist():
            lo, hi = int(graph.offsets[v]), int(graph.offsets[v + 1])
            if hi <= lo:
                continue
            parts.append(amap.edge_addr(np.arange(lo, hi)))
            nbrs = graph.targets[lo:hi]
            parts.append(amap.vertex_addr(nbrs))
            smallest = min(int(labels[v]), int(labels[nbrs].min()))
            changed = labels[nbrs] > smallest
            if labels[v] > smallest:
                labels[v] = smallest
                next_active[v] = True
            if changed.any():
                labels[nbrs[changed]] = smallest
                next_active[nbrs[changed]] = True
        active = next_active
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.uint64)


def trace_chunks(trace: np.ndarray, chunk_size: int) -> Iterator[np.ndarray]:
    """Slice a mechanistic trace into engine-sized chunks."""
    for start in range(0, len(trace), int(chunk_size)):
        yield trace[start : start + int(chunk_size)]
