"""Graph-processing substrate and the GAP benchmark generators.

The paper evaluates six GAP kernels (BFS, SSSP, PR, CC, BC, TC) on
Twitter/Google graphs.  Without those datasets we build the substrate
ourselves: a CSR graph from a preferential-attachment generator (the
same heavy-tailed degree structure as social graphs), then derive each
kernel's address stream from the graph's actual layout in memory:

* **vertex pages** hold per-vertex property data; random neighbour
  reads make a vertex page's heat proportional to the degree mass of
  the vertices it holds — hubs make hot pages;
* **edge pages** hold the CSR adjacency arrays; kernels sweep them
  sequentially every iteration.

Kernel temporal structure: PR/CC sweep all edges per iteration
(SweepMix), BFS/BC visit a moving frontier (RotatingWorkingSet), SSSP
relaxes with a stable hub bias, and TC's intersections weight pages by
degree with a broad flat tail (the §7.2 observation that TC's
bottom-half pages are nearly equally warm).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import SyntheticParams, SyntheticWorkload, WorkloadSpec
from repro.workloads.phases import RotatingWorkingSet, Stationary
from repro.workloads.wordmap import WordDensityProfile
from repro.workloads.zipf import blend, spatially_clustered

#: Memory layout constants: 64B of property data per vertex across the
#: kernels' arrays (ranks, labels, parents, ...) and 8B per edge give
#: 64 vertices or 512 edges per 4KB page.
VERTICES_PER_PAGE = 64
EDGES_PER_PAGE = 512


@dataclass
class CsrGraph:
    """Compressed-sparse-row adjacency."""

    offsets: np.ndarray  # int64, len = num_nodes + 1
    targets: np.ndarray  # int64, len = num_edges

    @property
    def num_nodes(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    def degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    def neighbors(self, v: int) -> np.ndarray:
        return self.targets[self.offsets[v] : self.offsets[v + 1]]


def preferential_attachment(num_nodes: int, m: int = 8, seed: int = 0) -> CsrGraph:
    """Barabási–Albert style graph with heavy-tailed degrees.

    Each new node attaches to ``m`` targets drawn from the repeated-
    endpoints pool, yielding P(deg = d) ~ d^-3 — the hub structure that
    drives hot vertex pages in social-graph workloads.
    """
    if num_nodes <= m:
        raise ValueError("num_nodes must exceed m")
    rng = np.random.default_rng(seed)
    # Seed clique endpoints.
    repeated = list(range(m))
    src, dst = [], []
    for v in range(m, num_nodes):
        picks = rng.choice(len(repeated), size=m, replace=True)
        chosen = {repeated[i] for i in picks.tolist()}
        # Sorted: set order is hash-dependent, and the attachment
        # order feeds the endpoint pool (DET003).
        for t in sorted(chosen):
            src.append(v)
            dst.append(t)
            repeated.append(t)
        repeated.extend([v] * len(chosen))
    # Undirected: add both directions, then build CSR.
    s = np.concatenate([np.array(src), np.array(dst)])
    t = np.concatenate([np.array(dst), np.array(src)])
    order = np.argsort(s, kind="stable")
    s, t = s[order], t[order]
    offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(offsets, s + 1, 1)
    offsets = np.cumsum(offsets)
    return CsrGraph(offsets=offsets, targets=t.astype(np.int64))


def uniform_random_graph(num_nodes: int, avg_degree: int = 16, seed: int = 0) -> CsrGraph:
    """Erdős–Rényi-style graph (flat degree distribution)."""
    rng = np.random.default_rng(seed)
    num_edges = num_nodes * avg_degree // 2
    s = rng.integers(0, num_nodes, num_edges)
    t = rng.integers(0, num_nodes, num_edges)
    src = np.concatenate([s, t])
    dst = np.concatenate([t, s])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(offsets, src + 1, 1)
    offsets = np.cumsum(offsets)
    return CsrGraph(offsets=offsets, targets=dst.astype(np.int64))


class GraphLayout:
    """Maps a CSR graph onto a page-granular footprint.

    Pages ``[0, vertex_pages)`` hold vertex property data; pages
    ``[vertex_pages, vertex_pages + edge_pages)`` hold the adjacency
    arrays.  The footprint is padded (cold pages) up to the benchmark
    spec if the graph is smaller.
    """

    def __init__(self, graph: CsrGraph, footprint_pages: int):
        self.graph = graph
        self.vertex_pages = -(-graph.num_nodes // VERTICES_PER_PAGE)
        self.edge_pages = -(-graph.num_edges // EDGES_PER_PAGE)
        needed = self.vertex_pages + self.edge_pages
        if needed > footprint_pages:
            raise ValueError(
                f"graph needs {needed} pages but footprint is {footprint_pages}"
            )
        self.footprint_pages = int(footprint_pages)

    def vertex_page_heat(self) -> np.ndarray:
        """Per-vertex-page heat = degree mass of resident vertices."""
        deg = self.graph.degrees().astype(np.float64)
        pad = self.vertex_pages * VERTICES_PER_PAGE - deg.size
        padded = np.concatenate([deg, np.zeros(pad)]) if pad else deg
        return padded.reshape(self.vertex_pages, VERTICES_PER_PAGE).sum(axis=1)

    def edge_page_heat(self, per_edge: np.ndarray = None) -> np.ndarray:
        """Per-edge-page heat; default one touch per edge per sweep."""
        if per_edge is None:
            per_edge = np.ones(self.graph.num_edges)
        pad = self.edge_pages * EDGES_PER_PAGE - per_edge.size
        padded = np.concatenate([per_edge, np.zeros(pad)]) if pad else per_edge
        return padded.reshape(self.edge_pages, EDGES_PER_PAGE).sum(axis=1)

    def popularity(
        self,
        vertex_weight: float = 0.5,
        vertex_exponent: float = 1.0,
        seed: int = 0,
    ) -> np.ndarray:
        """Blend vertex and edge page heats into a footprint-wide vector.

        Args:
            vertex_weight: fraction of accesses hitting vertex data
                (the random-access component); the rest hits edge pages.
            vertex_exponent: sharpening applied to vertex-page heat
                (TC's pairwise intersections effectively square degree
                mass; BFS's one-visit semantics flatten it).
        """
        vheat = self.vertex_page_heat() ** vertex_exponent
        eheat = self.edge_page_heat()
        pop = np.zeros(self.footprint_pages)
        if vheat.sum() > 0:
            pop[: self.vertex_pages] = vertex_weight * vheat / vheat.sum()
        if eheat.sum() > 0:
            pop[self.vertex_pages : self.vertex_pages + self.edge_pages] = (
                (1.0 - vertex_weight) * eheat / eheat.sum()
            )
        # Touch padding pages rarely so the whole footprint is resident.
        pad = self.footprint_pages - self.vertex_pages - self.edge_pages
        if pad > 0:
            floor = pop[pop > 0].min() * 0.01 if (pop > 0).any() else 1.0
            pop[self.vertex_pages + self.edge_pages :] = floor
        # Cluster-shuffle so DAMON-style region detectors see realistic
        # interleaving rather than one hot extent.
        pop = spatially_clustered(pop, cluster_pages=16, seed=seed)
        return pop / pop.sum()


# ----------------------------------------------------------------------
# kernel-specific generators

#: Word-density calibration (Figure 4): cumulative P(unique words <= N)
#: at N in {4, 8, 16, 32, 48}.
GAP_DENSITY = {
    "bc": {4: 0.01, 8: 0.02, 16: 0.04, 32: 0.10, 48: 0.25},
    "bfs": {4: 0.05, 8: 0.10, 16: 0.17, 32: 0.30, 48: 0.45},
    "cc": {4: 0.06, 8: 0.12, 16: 0.20, 32: 0.33, 48: 0.48},
    "pr": {4: 0.002, 8: 0.004, 16: 0.008, 32: 0.012, 48: 0.02},
    "sssp": {4: 0.01, 8: 0.02, 16: 0.05, 32: 0.08, 48: 0.11},
    "tc": {4: 0.03, 8: 0.06, 16: 0.12, 32: 0.25, 48: 0.40},
}


def _graph_for(spec: WorkloadSpec, seed: int) -> GraphLayout:
    # Size the graph to fill ~90% of the footprint with a 30/70
    # vertex/edge page split (edge-array dominated, like CSR Twitter).
    vertex_pages = int(spec.footprint_pages * 0.27)
    num_nodes = vertex_pages * VERTICES_PER_PAGE
    # m chosen so edges fill the remaining budget: edges ~= n*m*2 dirs.
    edge_budget_pages = int(spec.footprint_pages * 0.63)
    m = max(2, (edge_budget_pages * EDGES_PER_PAGE) // (2 * num_nodes))
    graph = preferential_attachment(num_nodes, m=m, seed=seed)
    return GraphLayout(graph, spec.footprint_pages)


def make_gap_workload(kernel: str, spec: WorkloadSpec, seed: int = 0) -> SyntheticWorkload:
    """Build the generator for one GAP kernel."""
    kernel = kernel.lower()
    if kernel not in GAP_DENSITY:
        raise ValueError(f"unknown GAP kernel {kernel!r}")
    layout = _graph_for(spec, seed)
    density = WordDensityProfile(GAP_DENSITY[kernel])

    if kernel == "pr":
        # Pull-based PageRank: full edge sweep each iteration plus
        # degree-proportional random reads of neighbour ranks — hub
        # vertex pages get very hot.
        # The per-iteration edge scan is orders of magnitude faster
        # than migration timescales, so its time-averaged heat (folded
        # into the popularity vector) is the right model — an explicit
        # slow sweep would look like working-set drift that PageRank
        # does not have.
        pop = layout.popularity(vertex_weight=0.65, vertex_exponent=1.3, seed=seed)
        phase = Stationary(pop)
    elif kernel == "cc":
        # Label propagation: edge sweeps with a shrinking active set,
        # approximated by a rotating boost over a skewed baseline.
        pop = layout.popularity(vertex_weight=0.55, vertex_exponent=1.1, seed=seed)
        phase = RotatingWorkingSet(
            pop, window_fraction=0.25, boost=6.0, accesses_per_phase=120_000
        )
    elif kernel == "bfs":
        # Frontier expansion: the hot window marches across the graph.
        pop = layout.popularity(vertex_weight=0.55, vertex_exponent=1.0, seed=seed)
        phase = RotatingWorkingSet(
            pop, window_fraction=0.12, boost=15.0, accesses_per_phase=60_000
        )
    elif kernel == "bc":
        # Repeated BFS traversals from many sources.
        pop = layout.popularity(vertex_weight=0.55, vertex_exponent=1.0, seed=seed)
        phase = RotatingWorkingSet(
            pop, window_fraction=0.15, boost=12.0, accesses_per_phase=80_000
        )
    elif kernel == "sssp":
        # Delta-stepping: hubs relax repeatedly across moving buckets.
        pop = layout.popularity(vertex_weight=0.65, vertex_exponent=1.2, seed=seed)
        phase = RotatingWorkingSet(
            pop, window_fraction=0.20, boost=5.0, accesses_per_phase=150_000
        )
    else:  # tc
        # Triangle counting: adjacency intersections; degree-ordered
        # processing gives a skewed top but a broad flat tail (§7.2:
        # the bottom-half pages are nearly equally warm).
        pop = layout.popularity(vertex_weight=0.45, vertex_exponent=1.3, seed=seed)
        flat = np.full(layout.footprint_pages, 1.0 / layout.footprint_pages)
        pop = blend((0.6, pop), (0.4, flat))
        phase = Stationary(pop)

    params = SyntheticParams(popularity=pop, word_density=density, phase_model=phase)
    return SyntheticWorkload(spec, params, seed=seed)
