"""Popularity distributions for synthetic address streams.

The trace generators are calibrated to the *measured* page-hotness
structure the paper publishes (Figure 10's per-page access-count CDFs
and the §7.2 commentary), so the building blocks here are the shapes
those CDFs exhibit: Zipf-like power laws, uniform floors, and explicit
hot/warm/cold mixtures with given population fractions and relative
heats.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def zipf_popularity(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf(s) popularity over ``n`` items (rank order)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def uniform_popularity(n: int) -> np.ndarray:
    """Flat popularity (the paper's description of Redis/YCSB-A)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return np.full(n, 1.0 / n)


def mixture_popularity(
    n: int, tiers: Sequence[Tuple[float, float]]
) -> np.ndarray:
    """Piecewise-constant popularity from (fraction, relative_heat) tiers.

    Example — roms_r's Figure 10 shape ("p90, p95, and p99 pages are
    2x, 8x, 17x more frequently accessed than the p50 page")::

        mixture_popularity(n, [(0.01, 17), (0.04, 8), (0.05, 2), (0.90, 1)])

    Tiers are ordered hottest-first; fractions must sum to ~1.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    fracs = np.array([f for f, _ in tiers], dtype=np.float64)
    heats = np.array([h for _, h in tiers], dtype=np.float64)
    if fracs.min() <= 0 or heats.min() <= 0:
        raise ValueError("fractions and heats must be positive")
    if not np.isclose(fracs.sum(), 1.0, atol=1e-6):
        raise ValueError(f"tier fractions sum to {fracs.sum()}, expected 1")
    counts = np.round(fracs * n).astype(int)
    counts[-1] = n - counts[:-1].sum()
    if counts.min() < 0:
        raise ValueError("tier fractions incompatible with n")
    weights = np.repeat(heats, counts)
    return weights / weights.sum()


def blend(*components: Tuple[float, np.ndarray]) -> np.ndarray:
    """Convex combination of popularity vectors.

    Args:
        components: (weight, popularity_vector) pairs; weights are
            re-normalised.
    """
    if not components:
        raise ValueError("need at least one component")
    total = sum(w for w, _ in components)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    size = len(components[0][1])
    out = np.zeros(size, dtype=np.float64)
    for weight, vec in components:
        if len(vec) != size:
            raise ValueError("all components must have the same length")
        out += (weight / total) * np.asarray(vec, dtype=np.float64)
    return out / out.sum()


def shuffled(popularity: np.ndarray, seed: int = 0) -> np.ndarray:
    """Permute a rank-ordered popularity vector over the page space.

    Real address spaces do not lay hot pages out contiguously; the
    permutation decorrelates hotness from the PFN so region-based
    detectors (DAMON) see realistic spatial mixing.
    """
    rng = np.random.default_rng(seed)
    out = np.asarray(popularity, dtype=np.float64).copy()
    rng.shuffle(out)
    return out


def spatially_clustered(
    popularity: np.ndarray, cluster_pages: int, seed: int = 0
) -> np.ndarray:
    """Permute hotness in clusters of ``cluster_pages`` adjacent pages.

    Array-sweeping codes (SPEC stencils, CSR edge arrays) keep similar
    heat across large contiguous extents; cluster-level shuffling
    models that while still mixing regions.
    """
    pop = np.asarray(popularity, dtype=np.float64)
    n = len(pop)
    if cluster_pages <= 0:
        raise ValueError("cluster_pages must be positive")
    num_clusters = -(-n // cluster_pages)
    pad = num_clusters * cluster_pages - n
    padded = np.concatenate([pop, np.zeros(pad)]) if pad else pop.copy()
    blocks = padded.reshape(num_clusters, cluster_pages)
    rng = np.random.default_rng(seed)
    rng.shuffle(blocks)
    out = blocks.reshape(-1)[:n]
    total = out.sum()
    if total <= 0:
        raise ValueError("popularity sums to zero")
    return out / total


def with_cold_tail(
    popularity: np.ndarray,
    active_fraction: float,
    cold_heat: float = 0.005,
    seed: int = 0,
) -> np.ndarray:
    """Demote a random subset of pages to a cold tail.

    Real footprints are not uniformly warm: index structures, freed
    arenas, and out-of-phase data sit nearly idle.  This keeps
    ``active_fraction`` of the pages at their popularity and scales
    the rest down to ``cold_heat`` of their weight — the structure
    that lets a DDR tier smaller than the footprint absorb most of
    the traffic once hot pages migrate.
    """
    if not 0 < active_fraction <= 1:
        raise ValueError("active_fraction must be in (0, 1]")
    if cold_heat <= 0:
        raise ValueError("cold_heat must be positive")
    pop = np.asarray(popularity, dtype=np.float64).copy()
    n = pop.size
    num_cold = int(round(n * (1.0 - active_fraction)))
    if num_cold == 0:
        return pop / pop.sum()
    rng = np.random.default_rng(seed)
    # Cool the least-popular pages (deterministic given popularity),
    # breaking ties randomly so flat distributions cool a random set.
    order = np.lexsort((rng.random(n), pop))
    pop[order[:num_cold]] *= cold_heat
    return pop / pop.sum()


def sample_pages(
    popularity: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` page ids i.i.d. from a popularity vector."""
    cdf = np.cumsum(popularity)
    cdf[-1] = 1.0
    return np.searchsorted(cdf, rng.random(count), side="right").astype(np.int64)
