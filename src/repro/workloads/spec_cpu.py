"""SPECrate CPU 2017 memory-intensive workloads.

The paper uses the four highest-MPKI SPECrate benchmarks (Table 3):
``mcf_r`` (vehicle scheduling / network simplex), ``cactuBSSN_r``
(Einstein-equation stencil), ``fotonik3d_r`` (photonic FDTD stencil),
and ``roms_r`` (ocean model).  Their published fingerprints:

* all four are word-**dense** — the probability that a page has at
  least 75% of its words accessed is 87–92% (Figure 4) — with roms_r
  the partial exception (Guideline 3 calls roms a dense/sparse mix);
* cactuBSSN, fotonik3d, and mcf have relatively even page heat (their
  ANB/DAMON access-count ratios in Figure 3 are the *good* cases, and
  their Figure 10 CDFs rise steeply);
* roms_r has the strong hot tail of Figure 10: its p90/p95/p99 pages
  are 2x/8x/17x hotter than the p50 page — which is exactly why M5's
  precision pays off most there (+96% over ANB, §7.2).
"""

from __future__ import annotations

from repro.workloads.base import SyntheticParams, SyntheticWorkload, WorkloadSpec
from repro.workloads.phases import Stationary, SweepMix
from repro.workloads.wordmap import WordDensityProfile
from repro.workloads.zipf import (
    blend,
    mixture_popularity,
    shuffled,
    spatially_clustered,
    uniform_popularity,
    with_cold_tail,
    zipf_popularity,
)

#: Figure 4 calibration: cumulative P(unique words <= N).
SPEC_DENSITY = {
    "mcf": {4: 0.005, 8: 0.01, 16: 0.02, 32: 0.05, 48: 0.08},
    "cactubssn": {4: 0.005, 8: 0.01, 16: 0.02, 32: 0.06, 48: 0.10},
    "fotonik3d": {4: 0.005, 8: 0.01, 16: 0.03, 32: 0.07, 48: 0.13},
    "roms": {4: 0.05, 8: 0.12, 16: 0.25, 32: 0.42, 48: 0.58},
}

#: roms_r's Figure 10 hot tail: (fraction, relative heat) tiers chosen
#: so the *measured* per-page counts (after the background sweep and
#: sampling dilute the tiers) come out near the paper's reading —
#: p90 = 2x, p95 = 8x, p99 = 17x the p50 page.
ROMS_TIERS = [(0.01, 30.0), (0.04, 13.0), (0.05, 3.0), (0.90, 1.0)]


def make_spec_workload(bench: str, spec: WorkloadSpec, seed: int = 0) -> SyntheticWorkload:
    """Build the generator for one SPECrate benchmark."""
    bench = bench.lower().replace("_r", "")
    if bench not in SPEC_DENSITY:
        raise ValueError(f"unknown SPEC benchmark {bench!r}")
    n = spec.footprint_pages
    density = WordDensityProfile(SPEC_DENSITY[bench])

    if bench == "mcf":
        # Network-simplex pointer chasing: nearly even, stable heat
        # over the *active* arc/node arrays — the Figure 3 "good case"
        # where even warm-page selection scores well — with a large
        # rarely-touched remainder (spill structures, inactive arcs).
        pop = with_cold_tail(
            shuffled(zipf_popularity(n, 0.18), seed=seed),
            active_fraction=0.40, seed=seed + 1,
        )
        phase = Stationary(pop)
        word_skew = 0.0
    elif bench in ("cactubssn", "fotonik3d"):
        # 3D stencil sweeps: most accesses march through the grid; a
        # modest set of boundary/metadata pages stays warm.
        # 3D stencil sweeps: one grid pass takes well under a second on
        # the testbed — far below migration timescales — so the sweep's
        # time-averaged heat folds into the stationary popularity, plus
        # a light explicit sweep for the PTE/TLB dynamics detectors see.
        hot = shuffled(zipf_popularity(n, 0.3), seed=seed)
        active = 0.85 if bench == "cactubssn" else 0.80
        pop = with_cold_tail(
            blend((0.7, uniform_popularity(n)), (0.3, hot)),
            active_fraction=active, seed=seed + 1,
        )
        phase = SweepMix(pop, sweep_fraction=0.10, hits_per_page=48)
        word_skew = 0.0
    else:  # roms
        # Free-surface ocean model: strong hot tail per Figure 10,
        # spatially clustered field arrays, plus a background sweep.
        pop = spatially_clustered(
            with_cold_tail(
                mixture_popularity(n, ROMS_TIERS),
                active_fraction=0.55, seed=seed + 1,
            ),
            cluster_pages=8, seed=seed,
        )
        phase = SweepMix(pop, sweep_fraction=0.06, hits_per_page=32)
        word_skew = 0.2

    params = SyntheticParams(
        popularity=pop, word_density=density, phase_model=phase, word_skew=word_skew
    )
    return SyntheticWorkload(spec, params, seed=seed)
