"""Liblinear (linear classification on KDD 2012) workload.

Table 3's machine-learning entry: Liblinear 2.47 training on the KDD
2012 sparse dataset (6.0GB footprint, 20 cores).  Its memory
fingerprint, per the paper:

* the *model* (weight/gradient vectors) is small and extremely hot —
  Figure 10 shows Liblinear with one of the most skewed access-count
  CDFs, which is why M5's precise hot-page selection gains +24%/+14%
  over ANB/DAMON there (§7.2);
* the *dataset* is scanned in epochs — shards of feature rows become
  warm while being traversed, then cool down (DAMON's region model
  tracks this poorly, and its scanning overhead costs Liblinear up to
  8.6% execution time, §4.2);
* sparse feature rows leave pages partially touched: ~15% of pages
  have at most 16 of 64 words accessed (Figure 4), a dense/sparse mix
  (Guideline 3 pairs liblinear with roms as HPT-driven targets).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import SyntheticParams, SyntheticWorkload, WorkloadSpec
from repro.workloads.phases import RotatingWorkingSet
from repro.workloads.wordmap import WordDensityProfile
from repro.workloads.zipf import shuffled, with_cold_tail, zipf_popularity

#: Figure 4 calibration.
LIBLINEAR_DENSITY = {4: 0.04, 8: 0.08, 16: 0.15, 32: 0.30, 48: 0.50}

#: Fraction of the footprint holding the model state.
MODEL_FRACTION = 0.03
#: Heat multiplier of model pages relative to the average data page.
MODEL_HEAT = 200.0


def make_liblinear_workload(spec: WorkloadSpec, seed: int = 0) -> SyntheticWorkload:
    n = spec.footprint_pages
    model_pages = max(1, int(n * MODEL_FRACTION))
    pop = np.ones(n, dtype=np.float64)
    # Dataset rows have a mild long-tail reuse (frequent features) and
    # a large cold remainder: most KDD rows are read only during their
    # shard's pass.
    pop[model_pages:] = with_cold_tail(
        shuffled(zipf_popularity(n - model_pages, 0.35), seed=seed),
        active_fraction=0.35, seed=seed + 3,
    ) * (n - model_pages)
    pop[:model_pages] = MODEL_HEAT
    pop /= pop.sum()
    # The allocator scatters model state among data pages — hot pages
    # are not one contiguous extent.
    rng = np.random.default_rng(seed + 17)
    placement = rng.permutation(n)
    pop = pop[placement]
    # Epoch passes over the dataset: a rotating warm shard, while the
    # model pages stay hot throughout (they are part of the baseline
    # popularity, so the boost window only modulates the data region).
    phase = RotatingWorkingSet(
        pop,
        window_fraction=0.10,
        boost=8.0,
        accesses_per_phase=100_000,
        stride_fraction=1.0,
    )
    params = SyntheticParams(
        popularity=pop,
        word_density=WordDensityProfile(LIBLINEAR_DENSITY),
        phase_model=phase,
        word_skew=0.3,
    )
    return SyntheticWorkload(spec, params, seed=seed)
