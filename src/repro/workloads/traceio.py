"""Trace capture, storage, and replay.

The paper's §7.1 methodology collects "traces of cache-filtered and
time-stamped addresses to DRAM" with Intel Pin + Ramulator, then feeds
them to the tracker simulator.  This module is that pipeline's
equivalent: capture a generator's stream (optionally LLC-filtered),
persist it, and replay it later as a
:class:`~repro.workloads.base.TraceGenerator` — so expensive workload
construction (e.g. preferential-attachment graphs) happens once.

Two on-disk formats coexist:

* **v1** — one compressed ``.npz`` holding the whole address array
  (:func:`save_trace`); simple, but the file only exists once the
  trace is complete, so it cannot back a live stream.
* **v2** — a chunked, append-only binary stream
  (:class:`TraceWriter` / :class:`TraceReader`): a magic + JSON
  header, then length-prefixed zlib-compressed chunks each carrying a
  CRC32, then an optional footer index written at close.  A v2 file
  is *readable while it is being written*: a reader walks the chunk
  blocks and simply stops at the incomplete tail; once the footer
  lands the file is complete and the index gives O(1) metadata.  The
  ``repro serve`` daemon tails v2 traces as live ingest streams.

:func:`load_trace` auto-detects either format.  Capture goes through
:func:`capture` (materialise in memory) or :func:`record` (stream
straight to a v2 file, the record half of record/replay).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import asdict
from pathlib import Path
from typing import IO, Iterator, Optional, Tuple, Union

import numpy as np

from repro.cache.cache import SetAssociativeCache
from repro.workloads.base import DEFAULT_CHUNK, TraceGenerator, WorkloadSpec

#: Format version stamped into every v1 (.npz) trace file.
TRACE_FORMAT_VERSION = 1
#: Format version stamped into every v2 (chunked stream) trace file.
TRACE_FORMAT_VERSION_V2 = 2

#: Leading magic of a v2 stream file.
V2_MAGIC = b"RTRACE02"
#: Trailing magic sealing a *complete* v2 file (footer present).
V2_TAIL = b"RTRCEND2"

_BLOCK_CHUNK = 0x01
_BLOCK_FOOTER = 0x02

#: Per-block header: kind (u8), compressed length (u32), CRC32 of the
#: compressed payload (u32), address count / chunk count (u64).
_BLOCK_HEADER = struct.Struct("<BIIQ")
#: File tail: byte offset of the footer block (u64) + tail magic.
_TAIL = struct.Struct("<Q8s")


class TraceFormatError(ValueError):
    """The file is not a recognisable trace of either format."""


class TraceCorruptError(TraceFormatError):
    """A v2 block failed its CRC / structural check."""


class TraceExhausted(EOFError):
    """A strict replay ran past the end of its stored trace."""


def capture(
    generator: TraceGenerator,
    total_accesses: int,
    llc: Optional[SetAssociativeCache] = None,
    chunk_size: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Materialise a (optionally cache-filtered) trace.

    Args:
        generator: source workload.
        total_accesses: accesses to draw *before* filtering; the
            returned trace is shorter when an LLC filter absorbs hits.
        llc: optional cache model; only its misses reach the trace,
            mirroring the DRAM-side view the CXL controller sees.
    """
    parts = []
    for chunk in generator.chunks(total_accesses, chunk_size):
        if llc is not None:
            chunk = llc.filter(chunk)
        if chunk.size:
            parts.append(chunk.astype(np.uint64))
    if not parts:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(parts)


def save_trace(
    path: Union[str, Path],
    trace: np.ndarray,
    spec: WorkloadSpec,
    metadata: Optional[dict] = None,
) -> Path:
    """Persist a trace with its workload spec as compressed .npz (v1)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "version": TRACE_FORMAT_VERSION,
        "spec": asdict(spec),
        "metadata": metadata or {},
    }
    np.savez_compressed(
        path,
        addresses=np.asarray(trace, dtype=np.uint64),
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def _load_trace_v1(path: Path) -> Tuple[np.ndarray, WorkloadSpec, dict]:
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("version") != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {header.get('version')}"
            )
        spec = WorkloadSpec(**header["spec"])
        return data["addresses"].copy(), spec, header["metadata"]


def load_trace(path: Union[str, Path]) -> Tuple[np.ndarray, WorkloadSpec, dict]:
    """Load a stored trace of either format.

    Returns ``(addresses, spec, metadata)``.  The format is detected
    from the file's leading magic, not its extension; a v2 file that
    is still being written loads its complete prefix.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        magic = fh.read(len(V2_MAGIC))
    if magic == V2_MAGIC:
        with TraceReader(path) as reader:
            return reader.read_all(), reader.spec, dict(reader.metadata)
    try:
        return _load_trace_v1(path)
    except (OSError, ValueError, KeyError) as exc:
        if isinstance(exc, TraceFormatError):
            raise
        raise TraceFormatError(
            f"{path} is neither a v2 stream (bad magic) nor a v1 .npz "
            f"trace ({exc})"
        ) from exc


# ----------------------------------------------------------------------
# v2: chunked append-only stream


class TraceWriter:
    """Append-only chunked v2 trace writer.

    Layout::

        RTRACE02
        u32 header_len | header JSON {version, spec, metadata}
        repeat:  0x01 | u32 comp_len | u32 crc32 | u64 count | zlib(addresses)
        close:   0x02 | u32 comp_len | u32 crc32 | u64 nchunks | zlib(index JSON)
                 u64 footer_offset | RTRCEND2

    Every chunk block is flushed as soon as it is appended, so a
    concurrent :class:`TraceReader` (or a reader inspecting the file
    after a crash) sees each complete chunk immediately; only the
    footer marks the stream finished.  The index JSON maps chunk
    ordinals to byte offsets and counts for O(1) metadata on reopen.
    """

    def __init__(
        self,
        path: Union[str, Path],
        spec: WorkloadSpec,
        metadata: Optional[dict] = None,
        compresslevel: int = 6,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.spec = spec
        self.metadata = dict(metadata or {})
        self.compresslevel = int(compresslevel)
        self.chunks_written = 0
        self.addresses_written = 0
        self._index: list = []
        self._fh: Optional[IO[bytes]] = open(self.path, "wb")
        header = json.dumps({
            "version": TRACE_FORMAT_VERSION_V2,
            "spec": asdict(spec),
            "metadata": self.metadata,
        }).encode()
        self._fh.write(V2_MAGIC)
        self._fh.write(struct.pack("<I", len(header)))
        self._fh.write(header)
        self._fh.flush()

    @property
    def closed(self) -> bool:
        return self._fh is None

    def append(self, chunk: np.ndarray) -> None:
        """Write one chunk block (empty chunks are skipped)."""
        if self._fh is None:
            raise ValueError("trace writer is closed")
        data = np.ascontiguousarray(chunk, dtype="<u8")
        if data.size == 0:
            return
        payload = zlib.compress(data.tobytes(), self.compresslevel)
        self._index.append(
            {"offset": self._fh.tell(), "count": int(data.size)}
        )
        self._fh.write(_BLOCK_HEADER.pack(
            _BLOCK_CHUNK, len(payload), zlib.crc32(payload), data.size
        ))
        self._fh.write(payload)
        # One flush per chunk: a tailing reader (or a post-crash scan)
        # must always see whole blocks, never a buffered half-block.
        self._fh.flush()
        self.chunks_written += 1
        self.addresses_written += int(data.size)

    def close(self) -> None:
        """Seal the stream with the footer index.  Idempotent."""
        if self._fh is None:
            return
        footer_offset = self._fh.tell()
        payload = zlib.compress(json.dumps({
            "chunks": self._index,
            "total_addresses": self.addresses_written,
        }).encode(), self.compresslevel)
        self._fh.write(_BLOCK_HEADER.pack(
            _BLOCK_FOOTER, len(payload), zlib.crc32(payload),
            self.chunks_written,
        ))
        self._fh.write(payload)
        self._fh.write(_TAIL.pack(footer_offset, V2_TAIL))
        self._fh.flush()
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


class TraceReader:
    """Reader for v2 streams, including ones still being written.

    The reader is *incremental*: :meth:`read_next` returns the next
    complete chunk on disk, or ``None`` when the writer has not
    appended one yet (call again later — the ``repro serve`` daemon
    polls exactly this way).  :attr:`complete` flips to True once the
    footer block is reached; after that ``read_next`` stays ``None``
    forever and :attr:`total_addresses` comes from the index.

    A partial block at the end of a footer-less file is treated as an
    in-flight append (or the torn tail of a crashed writer), never an
    error; a CRC mismatch on a *complete* block raises
    :class:`TraceCorruptError` — corruption must not silently replay
    as a plausible workload.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[bytes]] = open(self.path, "rb")
        # Header parsing can raise (truncated file, bad magic, alien
        # spec); close the handle on every such path or it leaks.
        try:
            magic = self._fh.read(len(V2_MAGIC))
            if magic != V2_MAGIC:
                raise TraceFormatError(
                    f"{self.path} is not a v2 trace (magic {magic!r})"
                )
            (header_len,) = struct.unpack("<I", self._read_exact(4))
            header = json.loads(self._read_exact(header_len).decode())
            if header.get("version") != TRACE_FORMAT_VERSION_V2:
                raise TraceFormatError(
                    f"unsupported v2 version {header.get('version')}"
                )
            self.spec = WorkloadSpec(**header["spec"])
            self.metadata: dict = header.get("metadata", {})
            self._data_start = self._fh.tell()
        except Exception:
            self._fh.close()
            self._fh = None
            raise
        #: Chunks consumed through :meth:`read_next` / :meth:`skip`.
        self.chunks_read = 0
        self._complete = False
        self._footer: Optional[dict] = None

    # -- low-level ------------------------------------------------------

    def _read_exact(self, n: int) -> bytes:
        data = self._fh.read(n)
        if len(data) != n:
            raise TraceCorruptError(
                f"{self.path}: truncated read ({len(data)}/{n} bytes)"
            )
        return data

    def _next_block(self, decode: bool) -> Optional[np.ndarray]:
        """Parse the block at the current offset.

        Returns the chunk (or a size-0 placeholder when skipping),
        ``None`` when no complete block is on disk yet or the footer
        was reached.
        """
        if self._fh is None:
            raise ValueError("trace reader is closed")
        if self._complete:
            return None
        start = self._fh.tell()
        head = self._fh.read(_BLOCK_HEADER.size)
        if len(head) < _BLOCK_HEADER.size:
            self._fh.seek(start)
            return None  # in-flight append; try again later
        kind, comp_len, crc, count = _BLOCK_HEADER.unpack(head)
        payload = self._fh.read(comp_len)
        if len(payload) < comp_len:
            self._fh.seek(start)
            return None  # body not fully on disk yet
        if kind == _BLOCK_FOOTER:
            if zlib.crc32(payload) != crc:
                raise TraceCorruptError(f"{self.path}: footer CRC mismatch")
            self._footer = json.loads(zlib.decompress(payload).decode())
            if count != len(self._footer.get("chunks", ())):
                raise TraceCorruptError(
                    f"{self.path}: footer chunk count mismatch"
                )
            self._complete = True
            return None
        if kind != _BLOCK_CHUNK:
            raise TraceCorruptError(
                f"{self.path}: unknown block kind 0x{kind:02x}"
            )
        if zlib.crc32(payload) != crc:
            raise TraceCorruptError(
                f"{self.path}: chunk {self.chunks_read} CRC mismatch"
            )
        self.chunks_read += 1
        if not decode:
            return np.empty(0, dtype=np.uint64)
        data = np.frombuffer(zlib.decompress(payload), dtype="<u8")
        if data.size != count:
            raise TraceCorruptError(
                f"{self.path}: chunk {self.chunks_read - 1} declares "
                f"{count} addresses but holds {data.size}"
            )
        return data.astype(np.uint64)

    # -- public ---------------------------------------------------------

    @property
    def complete(self) -> bool:
        """True once the footer was reached (the writer closed)."""
        return self._complete

    @property
    def total_addresses(self) -> Optional[int]:
        """Indexed total; None until the footer has been read."""
        if self._footer is None:
            return None
        return int(self._footer["total_addresses"])

    def read_next(self) -> Optional[np.ndarray]:
        """The next complete chunk, or None (not yet written / done)."""
        return self._next_block(decode=True)

    def skip(self, n_chunks: int) -> int:
        """Skip complete chunks without decompressing; returns skipped.

        Resume uses this to reposition a stream source at the chunk
        ordinal recorded in a checkpoint manifest.
        """
        skipped = 0
        for _ in range(int(n_chunks)):
            if self._next_block(decode=False) is None:
                break
            skipped += 1
        return skipped

    def chunks(self) -> Iterator[np.ndarray]:
        """Iterate the complete chunks currently on disk."""
        while True:
            chunk = self.read_next()
            if chunk is None:
                return
            yield chunk

    def read_all(self) -> np.ndarray:
        """All remaining complete addresses as one array."""
        parts = list(self.chunks())
        if not parts:
            return np.empty(0, dtype=np.uint64)
        return np.concatenate(parts)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


def record(
    generator: TraceGenerator,
    total_accesses: int,
    path: Union[str, Path],
    llc: Optional[SetAssociativeCache] = None,
    chunk_size: int = DEFAULT_CHUNK,
    metadata: Optional[dict] = None,
) -> Path:
    """Stream a capture straight to a v2 file (the record path).

    Unlike :func:`capture` + :func:`save_trace`, nothing is held in
    memory beyond one chunk, and the file is tail-readable while the
    capture runs.
    """
    with TraceWriter(path, generator.spec, metadata=metadata) as writer:
        for chunk in generator.chunks(total_accesses, chunk_size):
            if llc is not None:
                chunk = llc.filter(chunk)
            writer.append(chunk)
    return Path(path)


class ReplayWorkload(TraceGenerator):
    """A TraceGenerator that replays a stored address stream.

    By default, requests beyond the stored length wrap around (the
    trace is treated as one steady-state period) — but every wrap is
    *counted* in :attr:`wraps`, and the engine surfaces the total as
    ``RunResult.extra["replay_wraps"]`` plus a ``replay.wrap``
    telemetry event, so a truncated capture can never silently replay
    as a plausible periodic workload.  ``strict=True`` forbids
    wrapping entirely: running past the end raises
    :class:`TraceExhausted`.
    """

    def __init__(
        self, trace: np.ndarray, spec: WorkloadSpec, strict: bool = False
    ):
        super().__init__(spec, seed=0)
        trace = np.asarray(trace, dtype=np.uint64)
        if trace.size == 0:
            raise ValueError("cannot replay an empty trace")
        self._trace = trace
        self._pos = 0
        self._consumed = 0  # lifetime addresses served (restart resets)
        #: Times the replay re-served the start of the trace.
        self.wraps = 0
        #: True forbids wrapping: exhaustion raises TraceExhausted.
        self.strict = bool(strict)

    @classmethod
    def from_file(
        cls, path: Union[str, Path], strict: bool = False
    ) -> ReplayWorkload:
        addresses, spec, _ = load_trace(path)
        return cls(addresses, spec, strict=strict)

    @property
    def remaining(self) -> int:
        """Addresses left before the next wrap (or exhaustion)."""
        if self.strict:
            return self._trace.size - self._consumed
        return self._trace.size - self._pos

    def restart(self) -> None:
        self._pos = 0
        self._consumed = 0
        self.wraps = 0

    def chunk(self, chunk_size: int = DEFAULT_CHUNK) -> np.ndarray:
        n = self._trace.size
        take = int(chunk_size)
        if self.strict and self._consumed + take > n:
            raise TraceExhausted(
                f"strict replay of {self.spec.name!r} exhausted: "
                f"{take} addresses requested with {n - self._consumed} "
                f"of {n} remaining"
            )
        if take > 0:
            self._consumed += take
            # The wrap count is the pass index of the last address
            # served, derived from the *lifetime* total rather than
            # the modular position: an exact-multiple read lands the
            # position back on 0, and a position-based count would
            # miss every subsequent full pass.  Reading exactly up to
            # the last element is not (yet) a wrap; re-serving the
            # first element is.
            self.wraps = (self._consumed - 1) // n
        idx = (self._pos + np.arange(take)) % n
        self._pos = (self._pos + take) % n
        return self._trace[idx]
