"""Trace capture, storage, and replay.

The paper's §7.1 methodology collects "traces of cache-filtered and
time-stamped addresses to DRAM" with Intel Pin + Ramulator, then feeds
them to the tracker simulator.  This module is that pipeline's
equivalent: capture a generator's stream (optionally LLC-filtered),
persist it as compressed ``.npz``, and replay it later as a
:class:`~repro.workloads.base.TraceGenerator` — so expensive workload
construction (e.g. preferential-attachment graphs) happens once.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.cache.cache import SetAssociativeCache
from repro.workloads.base import DEFAULT_CHUNK, TraceGenerator, WorkloadSpec

#: Format version stamped into every trace file.
TRACE_FORMAT_VERSION = 1


def capture(
    generator: TraceGenerator,
    total_accesses: int,
    llc: Optional[SetAssociativeCache] = None,
    chunk_size: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Materialise a (optionally cache-filtered) trace.

    Args:
        generator: source workload.
        total_accesses: accesses to draw *before* filtering; the
            returned trace is shorter when an LLC filter absorbs hits.
        llc: optional cache model; only its misses reach the trace,
            mirroring the DRAM-side view the CXL controller sees.
    """
    parts = []
    for chunk in generator.chunks(total_accesses, chunk_size):
        if llc is not None:
            chunk = llc.filter(chunk)
        if chunk.size:
            parts.append(chunk.astype(np.uint64))
    if not parts:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(parts)


def save_trace(
    path: Union[str, Path],
    trace: np.ndarray,
    spec: WorkloadSpec,
    metadata: Optional[dict] = None,
) -> Path:
    """Persist a trace with its workload spec as compressed .npz."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "version": TRACE_FORMAT_VERSION,
        "spec": asdict(spec),
        "metadata": metadata or {},
    }
    np.savez_compressed(
        path,
        addresses=np.asarray(trace, dtype=np.uint64),
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace(path: Union[str, Path]):
    """Load a stored trace; returns (addresses, spec, metadata)."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("version") != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {header.get('version')}"
            )
        spec = WorkloadSpec(**header["spec"])
        return data["addresses"].copy(), spec, header["metadata"]


class ReplayWorkload(TraceGenerator):
    """A TraceGenerator that replays a stored address stream.

    Requests beyond the stored length wrap around (the trace is
    treated as one steady-state period), so replay runs can be longer
    than the capture.
    """

    def __init__(self, trace: np.ndarray, spec: WorkloadSpec):
        super().__init__(spec, seed=0)
        trace = np.asarray(trace, dtype=np.uint64)
        if trace.size == 0:
            raise ValueError("cannot replay an empty trace")
        self._trace = trace
        self._pos = 0

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> ReplayWorkload:
        addresses, spec, _ = load_trace(path)
        return cls(addresses, spec)

    def restart(self) -> None:
        self._pos = 0

    def chunk(self, chunk_size: int = DEFAULT_CHUNK) -> np.ndarray:
        n = self._trace.size
        take = int(chunk_size)
        idx = (self._pos + np.arange(take)) % n
        self._pos = (self._pos + take) % n
        return self._trace[idx]

