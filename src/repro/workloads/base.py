"""Workload base classes: specs and the synthetic trace generator.

A :class:`TraceGenerator` yields chunks of *logical* byte addresses
(64B-aligned).  The simulation engine translates them through the
tiered-memory page map into physical addresses, which is what the CXL
controller (and therefore PAC/WAC/HPT/HWT) observes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.memory.address import PAGE_SIZE
from repro.workloads.phases import PhaseModel, Stationary
from repro.workloads.wordmap import WordDensityProfile, WordSelector, addresses_from
from repro.workloads.zipf import uniform_popularity

#: Default chunk granularity for generated traces.
DEFAULT_CHUNK = 1 << 16


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of a benchmark (the Table 3 row).

    Attributes:
        name: canonical benchmark name.
        footprint_pages: memory footprint in 4KB pages (scaled-down
            proportionally from the paper's GB figures).
        description: Table 3 description.
        cores: CPU cores / benchmark instances used in the paper.
        llc_ways: CAT ways allocated in the paper's setup.
        latency_sensitive: True for Redis (p99-scored) workloads.
        paper_footprint_gb: the unscaled footprint, for reference.
        mpki: approximate LLC misses per kilo-instruction, used by the
            performance model to weigh memory stalls against compute.
    """

    name: str
    footprint_pages: int
    description: str = ""
    cores: int = 8
    llc_ways: int = 4
    latency_sensitive: bool = False
    paper_footprint_gb: float = 0.0
    mpki: float = 20.0

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_pages * PAGE_SIZE


class TraceGenerator(abc.ABC):
    """Produces the logical address stream of one benchmark run.

    Subclasses implement :meth:`chunk`, the primitive the simulation
    engine drives; :meth:`chunks` and :meth:`trace` are derived.
    """

    def __init__(self, spec: WorkloadSpec, seed: int = 0):
        self.spec = spec
        self.seed = int(seed)

    @abc.abstractmethod
    def chunk(self, chunk_size: int = DEFAULT_CHUNK) -> np.ndarray:
        """Generate the next ``chunk_size`` uint64 byte addresses."""

    def chunks(
        self, total_accesses: int, chunk_size: int = DEFAULT_CHUNK
    ) -> Iterator[np.ndarray]:
        """Yield uint64 logical byte addresses in chunks."""
        remaining = int(total_accesses)
        while remaining > 0:
            take = min(remaining, int(chunk_size))
            yield self.chunk(take)
            remaining -= take

    def trace(self, total_accesses: int) -> np.ndarray:
        """Materialise a full trace (small experiments/tests only)."""
        parts = list(self.chunks(total_accesses))
        if not parts:
            return np.empty(0, dtype=np.uint64)
        return np.concatenate(parts)


@dataclass
class SyntheticParams:
    """Knobs of the generic synthetic generator."""

    popularity: np.ndarray
    word_density: WordDensityProfile
    phase_model: Optional[PhaseModel] = None
    word_skew: float = 0.0
    extra: dict = field(default_factory=dict)


class SyntheticWorkload(TraceGenerator):
    """Generic calibrated generator: popularity × phases × word map.

    Every concrete benchmark generator reduces to a parameterisation
    of this class; domain-specific modules (graph, kvstore, ...)
    construct the parameters from domain structure.
    """

    def __init__(self, spec: WorkloadSpec, params: SyntheticParams, seed: int = 0):
        super().__init__(spec, seed)
        if len(params.popularity) != spec.footprint_pages:
            raise ValueError(
                f"popularity length {len(params.popularity)} != footprint "
                f"{spec.footprint_pages}"
            )
        self.params = params
        self._rng = np.random.default_rng(seed)
        self._phase = (
            params.phase_model
            if params.phase_model is not None
            else Stationary(params.popularity)
        )
        self._selector = WordSelector(seed=seed)
        self._active_counts = params.word_density.sample_counts(
            spec.footprint_pages, np.random.default_rng(seed + 1)
        )

    @property
    def active_word_counts(self) -> np.ndarray:
        """Per-page active-word counts (ground truth for Fig. 4 tests)."""
        return self._active_counts

    def restart(self) -> None:
        """Reset generator state for a fresh, identical run."""
        self._rng = np.random.default_rng(self.seed)
        self._phase.reset()

    def chunk(self, chunk_size: int = DEFAULT_CHUNK) -> np.ndarray:
        """Generate one chunk of logical byte addresses."""
        pages = self._phase.sample(int(chunk_size), self._rng)
        words = self._selector.select(
            pages, self._active_counts, self._rng, skew=self.params.word_skew
        )
        return addresses_from(pages, words)


def uniform_workload(
    name: str = "uniform", footprint_pages: int = 4096, seed: int = 0
) -> SyntheticWorkload:
    """A minimal fully-uniform workload (testing convenience)."""
    spec = WorkloadSpec(name=name, footprint_pages=footprint_pages)
    params = SyntheticParams(
        popularity=uniform_popularity(footprint_pages),
        word_density=WordDensityProfile.dense(),
    )
    return SyntheticWorkload(spec, params, seed=seed)
