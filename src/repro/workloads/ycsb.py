"""A mechanistic key-value store + YCSB workload engine.

The registry's Redis/Memcached/CacheLib generators are *statistical*
(popularity and word-density calibrated to the paper's measurements).
This module builds the same traffic *mechanistically*: a slab
allocator lays keys out in memory, a YCSB-style request stream picks
keys, and each request touches the bucket word of a hash table plus
the value's words.  The Figure 4 sparsity then *emerges* from the
layout — small values scattered across slab pages leave most of each
page's 64 words untouched — instead of being configured, which makes
this engine the cross-validation oracle for the calibrated generators
(see ``tests/workloads/test_ycsb.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.memory.address import PAGE_SIZE, WORD_SIZE
from repro.workloads.base import DEFAULT_CHUNK, TraceGenerator, WorkloadSpec

#: Slab size classes in bytes (jemalloc/memcached-style).
DEFAULT_SIZE_CLASSES = (64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class YcsbMix:
    """Operation mix.  YCSB-A is 50% reads / 50% updates; both touch
    the same resident value words (updates add no new allocation in
    this model)."""

    read_fraction: float = 0.5

    def __post_init__(self):
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")


class SlabAllocator:
    """Lays out fixed-size objects in page-aligned slabs.

    Objects of one size class fill consecutive slots of dedicated
    pages; pages of different classes interleave in allocation order —
    the layout that makes KV heaps word-sparse.
    """

    def __init__(self, size_classes=DEFAULT_SIZE_CLASSES):
        if not size_classes:
            raise ValueError("need at least one size class")
        if any(s % WORD_SIZE or s <= 0 for s in size_classes):
            raise ValueError("size classes must be positive multiples of 64")
        self.size_classes = tuple(int(s) for s in size_classes)
        self._next_page = 0
        # Per class: (current page, next free slot index).
        self._open = {s: None for s in self.size_classes}

    def _class_for(self, size: int) -> int:
        for cls in self.size_classes:
            if size <= cls:
                return cls
        raise ValueError(f"object of {size}B exceeds largest size class")

    def allocate(self, size: int):
        """Allocate one object; returns (byte address, class bytes)."""
        cls = self._class_for(size)
        slots_per_page = PAGE_SIZE // cls
        state = self._open[cls]
        if state is None or state[1] >= slots_per_page:
            state = (self._next_page, 0)
            self._next_page += 1
        page, slot = state
        self._open[cls] = (page, slot + 1)
        return page * PAGE_SIZE + slot * cls, cls

    @property
    def pages_used(self) -> int:
        return self._next_page


class YcsbWorkload(TraceGenerator):
    """YCSB-over-slab KV store trace generator.

    Args:
        num_keys: keyspace size.
        value_size_sampler: callable(rng, n) → value sizes in bytes;
            default samples the small-object mix typical of cache
            deployments (most values ≤ a few hundred bytes).
        zipf_theta: request-popularity skew over *keys* (YCSB's default
            scrambled-zipfian is ~0.99; page-level skew comes out lower
            because slabs mix keys).
        hashtable_buckets: one 64B bucket word is touched per request.
    """

    def __init__(
        self,
        num_keys: int = 50_000,
        value_size_sampler=None,
        zipf_theta: float = 0.99,
        mix: Optional[YcsbMix] = None,
        hashtable_buckets: int = 1 << 14,
        seed: int = 0,
        name: str = "ycsb-kv",
    ):
        if num_keys <= 0 or hashtable_buckets <= 0:
            raise ValueError("num_keys and buckets must be positive")
        if zipf_theta < 0:
            raise ValueError("zipf_theta must be non-negative")
        self.mix = mix if mix is not None else YcsbMix()
        rng = np.random.default_rng(seed)
        sampler = value_size_sampler or self._default_sizes
        sizes = sampler(rng, num_keys)

        # Load phase: hash table region first, then slab heap.
        self._bucket_pages = -(-hashtable_buckets * WORD_SIZE // PAGE_SIZE)
        allocator = SlabAllocator()
        addresses = np.empty(num_keys, dtype=np.int64)
        lengths = np.empty(num_keys, dtype=np.int64)
        for key in range(num_keys):
            addr, cls = allocator.allocate(int(sizes[key]))
            addresses[key] = addr
            lengths[key] = max(1, int(sizes[key]) // WORD_SIZE)
        heap_base = self._bucket_pages * PAGE_SIZE
        self._value_addr = addresses + heap_base
        self._value_words = lengths
        self._buckets = hashtable_buckets
        footprint = self._bucket_pages + allocator.pages_used
        spec = WorkloadSpec(
            name=name,
            footprint_pages=footprint,
            description="mechanistic YCSB over a slab-allocated KV heap",
            cores=1,
            latency_sensitive=True,
            mpki=15.0,
        )
        super().__init__(spec, seed)
        self._rng = np.random.default_rng(seed + 1)
        self._carry = np.empty(0, dtype=np.uint64)
        # Scrambled-zipfian over keys.
        ranks = np.arange(1, num_keys + 1, dtype=np.float64) ** -zipf_theta
        p = ranks / ranks.sum()
        self._key_cdf = np.cumsum(p[rng.permutation(num_keys)])
        self._key_cdf[-1] = 1.0

    @staticmethod
    def _default_sizes(rng, n):
        """Cache-style small-object mix: 60% ≤128B, 30% ≤512B, 10% ~1KB."""
        choice = rng.random(n)
        sizes = np.where(
            choice < 0.6,
            rng.integers(16, 129, n),
            np.where(choice < 0.9, rng.integers(129, 513, n),
                     rng.integers(513, 1025, n)),
        )
        return sizes

    @property
    def num_keys(self) -> int:
        return self._value_addr.size

    def _requests_to_addresses(self, keys: np.ndarray) -> np.ndarray:
        """Expand key requests into the byte-address stream: one hash
        bucket probe plus the value's words."""
        words = self._value_words[keys]
        total = int(words.sum()) + keys.size
        out = np.empty(total, dtype=np.uint64)
        pos = 0
        bucket = (keys % self._buckets) * WORD_SIZE
        for i, key in enumerate(keys.tolist()):
            out[pos] = bucket[i]
            pos += 1
            w = int(words[i])
            base = int(self._value_addr[key])
            out[pos : pos + w] = base + np.arange(w, dtype=np.uint64) * WORD_SIZE
            pos += w
        return out

    def chunk_requests(self, num_requests: int) -> np.ndarray:
        """Generate the address stream of ``num_requests`` operations."""
        u = self._rng.random(int(num_requests))
        keys = np.searchsorted(self._key_cdf, u, side="right")
        keys = np.minimum(keys, self.num_keys - 1)
        return self._requests_to_addresses(keys)

    def chunk(self, chunk_size: int = DEFAULT_CHUNK) -> np.ndarray:
        """Exactly ``chunk_size`` accesses (requests are generated on
        demand; the tail of the last request carries into the next
        chunk) — the interface the simulation engine drives."""
        size = int(chunk_size)
        while self._carry.size < size:
            mean_words = 1.0 + float(self._value_words.mean())
            need = size - self._carry.size
            requests = max(1, int(need / mean_words) + 1)
            self._carry = np.concatenate(
                [self._carry, self.chunk_requests(requests)]
            )
        out, self._carry = self._carry[:size], self._carry[size:]
        return out

    def restart(self) -> None:
        self._rng = np.random.default_rng(self.seed + 1)
        self._carry = np.empty(0, dtype=np.uint64)
