"""Calibrated synthetic workloads standing in for the paper's
benchmarks (Table 3 + the Figure 4 extras)."""

from repro.workloads.base import (
    DEFAULT_CHUNK,
    SyntheticParams,
    SyntheticWorkload,
    TraceGenerator,
    WorkloadSpec,
    uniform_workload,
)
from repro.workloads.phases import (
    PhaseModel,
    RotatingWorkingSet,
    Stationary,
    SweepMix,
)
from repro.workloads.wordmap import (
    SPARSITY_THRESHOLDS,
    WordDensityProfile,
    WordSelector,
    addresses_from,
)
from repro.workloads.zipf import (
    blend,
    mixture_popularity,
    sample_pages,
    shuffled,
    spatially_clustered,
    uniform_popularity,
    zipf_popularity,
)
from repro.workloads.traceio import (
    ReplayWorkload,
    TraceCorruptError,
    TraceExhausted,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    capture,
    load_trace,
    record,
    save_trace,
)
from repro.workloads.ycsb import SlabAllocator, YcsbMix, YcsbWorkload
from repro.workloads import gap_exec
from repro.workloads import registry
from repro.workloads.registry import (
    MEMORY_INTENSIVE,
    SCALABILITY_SET,
    SPARSITY_SET,
    TRACKER_SWEEP_SET,
    build,
    cxl_capacity_pages,
    ddr_capacity_pages,
    spec_of,
)

__all__ = [
    "DEFAULT_CHUNK",
    "SyntheticParams",
    "SyntheticWorkload",
    "TraceGenerator",
    "WorkloadSpec",
    "uniform_workload",
    "PhaseModel",
    "RotatingWorkingSet",
    "Stationary",
    "SweepMix",
    "SPARSITY_THRESHOLDS",
    "WordDensityProfile",
    "WordSelector",
    "addresses_from",
    "blend",
    "mixture_popularity",
    "sample_pages",
    "shuffled",
    "spatially_clustered",
    "uniform_popularity",
    "zipf_popularity",
    "ReplayWorkload",
    "TraceCorruptError",
    "TraceExhausted",
    "TraceFormatError",
    "TraceReader",
    "TraceWriter",
    "SlabAllocator",
    "YcsbMix",
    "YcsbWorkload",
    "gap_exec",
    "capture",
    "load_trace",
    "record",
    "save_trace",
    "registry",
    "MEMORY_INTENSIVE",
    "SCALABILITY_SET",
    "SPARSITY_SET",
    "TRACKER_SWEEP_SET",
    "build",
    "cxl_capacity_pages",
    "ddr_capacity_pages",
    "spec_of",
]
