"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the benchmark registry (Table 3 + Figure 4 extras);
* ``run`` — one benchmark under one policy, with a summary (pass
  ``--timeline FILE`` for an epoch-resolution JSONL trace,
  ``--metrics FILE`` for a Prometheus/JSON metrics snapshot,
  ``--trace FILE`` for a chrome://tracing span file + flame table);
* ``compare`` — several policies on one benchmark, normalised to the
  no-migration baseline;
* ``sweep`` — a benchmark × policy matrix, parallelised across
  worker processes with ``--jobs`` (``--metrics FILE`` collects every
  cell's metrics snapshot);
* ``fleet`` — N tenants co-located on a shared 2- or 3-tier hierarchy
  with QoS bandwidth arbitration and DRAM→CXL→pooled demotion chains,
  tenants sharded across worker processes with ``--jobs``;
* ``metrics`` — pretty-print one metrics snapshot, or diff two;
* ``profile`` — PAC/WAC offline profile (page heat + word sparsity);
* ``verify`` — the differential oracle pairs (exact vs batched sketch,
  PAC cache vs direct mode, instant vs async-unlimited migration) with
  per-field drift tolerances; non-zero exit on any drift;
* ``hwcost`` — the Table 4 tracker cost model.
"""

from __future__ import annotations

import argparse
import contextlib
import functools
import json
import time
from typing import List, Optional

from repro.analysis import (
    AccessCdf,
    from_wac,
    migration_outcome_totals,
    print_table,
)
from repro.core import hwcost
from repro.obs import (
    MetricsRegistry,
    ObsServer,
    Observability,
    diff_snapshots,
    load_metrics_file,
    merged_chrome_trace,
    write_chrome_trace,
)
from repro.sim import (
    ALL_POLICIES,
    CheckpointError,
    JsonlSink,
    SimConfig,
    Simulation,
    TelemetryBus,
    collect_fleet,
    collect_matrix,
    matrix_means,
    normalized,
    run_matrix,
)
from repro.workloads import registry


def _config_from(args) -> SimConfig:
    return SimConfig(
        total_accesses=args.accesses,
        chunk_size=args.chunk,
        trace_subsample=args.subsample,
        migrate=not getattr(args, "no_migrate", False),
        checkpoints=getattr(args, "checkpoints", 1) or 1,
        migration_mode=getattr(args, "migration_mode", "instant"),
        migration_inflight_budget=getattr(args, "mig_budget", 128),
        migration_queue_capacity=getattr(args, "mig_queue_cap", 4096),
        migration_abort_rate=getattr(args, "mig_abort_rate", 0.0),
        migration_max_retries=getattr(args, "mig_max_retries", 3),
        migration_copy_gbps=getattr(args, "mig_copy_gbps", 0.0),
        migration_enomem_policy=getattr(args, "mig_enomem", "demote-first"),
        check_invariants=getattr(args, "check_invariants", False),
        engine=getattr(args, "engine", "batched"),
        serve=getattr(args, "serve", False),
        serve_port=getattr(args, "serve_port", 0),
        record_series=getattr(args, "record_series", None) or "",
        record_epochs=getattr(args, "record_epochs", 4096),
        slo_rules=getattr(args, "slo_rules", None) or "",
        checkpoint_every=getattr(args, "checkpoint_every", 0),
        checkpoint_path=getattr(args, "checkpoint", None) or "",
    )


def cmd_list(args) -> int:
    rows = []
    for name in registry.names():
        spec = registry.spec_of(name)
        rows.append(
            [name, spec.paper_footprint_gb, spec.footprint_pages, spec.cores,
             "p99" if spec.latency_sensitive else "time", spec.description]
        )
    print_table(
        "Registered benchmarks",
        ["name", "GB", "pages", "cores", "metric", "description"],
        rows,
        precision=1,
        col_width=12,
    )
    return 0


def _write_metrics_snapshot(path: str, obs: Observability) -> None:
    """Write the registry snapshot: JSON for ``*.json``, else the
    Prometheus text exposition format."""
    if path.endswith(".json"):
        with open(path, "w") as fh:
            json.dump(obs.snapshot(), fh, indent=2)
    else:
        with open(path, "w") as fh:
            fh.write(obs.prometheus())


def _print_flame_table(obs: Observability) -> None:
    rows = [
        [r["name"], int(r["count"]), r["total_s"], r["self_s"],
         r["total_sim_s"]]
        for r in obs.flame_table()
    ]
    if not rows:
        return
    print_table(
        "flame table: wall-clock (and simulated time) per span",
        ["span", "count", "total_s", "self_s", "sim_s"],
        rows,
        precision=4,
        col_width=14,
    )
    coverage = obs.tracer.coverage()
    print(f"stage coverage: {coverage * 100.0:.1f}% of the run span's "
          "wall-clock is inside per-stage spans")


def _print_slo_summary(watchdog) -> None:
    if watchdog is None:
        return
    if watchdog.breaches_total == 0:
        print(f"slo           : all {len(watchdog.rules)} rules green")
        return
    per_rule = ", ".join(
        f"{name}={total:.0f}"
        for name, total in watchdog.breaches_by_rule().items()
        if total > 0
    )
    print(f"slo           : {watchdog.breaches_total} breaches ({per_rule})")


def _export_recorder(path: str, recorder) -> None:
    """Write the per-epoch series (CSV for ``*.csv``, else JSONL)."""
    if path.endswith(".csv"):
        rows = recorder.to_csv(path)
    else:
        rows = recorder.to_jsonl(path)
    print(f"per-epoch series written to {path} "
          f"({rows} rows x {len(recorder.columns())} columns)")


def cmd_run(args) -> int:
    resume = getattr(args, "resume", None)
    if resume:
        # The checkpoint carries the whole run: workload, config,
        # policy, telemetry bus (a path-backed JsonlSink reopens in
        # append mode), metrics registry.  Run-shape flags are
        # ignored; --serve still works against the restored registry.
        try:
            sim = Simulation.load_state(resume)
        except (OSError, CheckpointError) as exc:
            print(f"cannot resume from {resume}: {exc}")
            return 2
        print(f"resuming from {resume} "
              f"(benchmark {sim.workload.spec.name!r}, "
              f"policy {sim.policy_name!r}, after epoch {sim.resumed_epoch})")
        telemetry = None
        obs = sim.obs if sim.obs.enabled else None
    else:
        if not args.bench:
            print("error: --bench is required (unless resuming with "
                  "--resume)")
            return 2
        workload = registry.build(args.bench, seed=args.seed)
        telemetry = None
        if getattr(args, "timeline", None):
            try:
                with open(args.timeline, "w"):  # fail fast on a bad path
                    pass
            except OSError as exc:
                print(f"cannot write timeline file: {exc}")
                return 2
            telemetry = TelemetryBus([JsonlSink(args.timeline)])
        live = bool(args.serve or args.record_series or args.slo_rules)
        obs = None
        if args.metrics or args.trace or live:
            obs = Observability(metrics=bool(args.metrics) or live,
                                tracing=bool(args.trace))
        sim = Simulation(
            workload, _config_from(args), policy=args.policy,
            telemetry=telemetry, obs=obs,
        )
    # LIFO shutdown: the server (entered last) closes before the bus,
    # so a late scrape never races a half-flushed telemetry file —
    # and both close even if the run raises mid-flight.
    with contextlib.ExitStack() as stack:
        if telemetry is not None:
            stack.enter_context(telemetry)
        if args.serve and obs is not None:
            server = stack.enter_context(
                ObsServer(obs.registry, port=args.serve_port)
            )
            print(f"live metrics  : {server.url}/metrics  "
                  "(also /healthz, /snapshot.json)", flush=True)
        result = sim.run()
        if resume and sim.telemetry.active:
            sim.telemetry.close()  # flush the reopened JSONL sink
        if args.serve and obs is not None and args.serve_linger > 0:
            print(f"run finished; serving final snapshot for "
                  f"{args.serve_linger:g}s", flush=True)
            time.sleep(args.serve_linger)
    if telemetry is not None:
        print(f"epoch timeline written to {args.timeline} "
              f"({len(result.timeline)} events)")
    if result.timeline_dropped:
        print(f"timeline ring : overflowed; {result.timeline_dropped} "
              "oldest events dropped (timeline is the tail of the run)")
    if args.metrics:
        if obs is not None and obs.metrics_on:
            _write_metrics_snapshot(args.metrics, obs)
            print(f"metrics snapshot written to {args.metrics}")
        else:
            print("--metrics ignored: the resumed checkpoint was taken "
                  "without a metrics registry")
    if sim.recorder is not None:
        rec = sim.recorder
        print(f"recorded      : {rec.rows} epochs x "
              f"{len(rec.columns())} series "
              f"({rec.memory_bytes / 1024.0:.0f} KiB ring"
              + (f", {rec.dropped} oldest rows overwritten"
                 if rec.dropped else "")
              + ")")
        if args.record_out:
            _export_recorder(args.record_out, rec)
    _print_slo_summary(sim.watchdog)
    if args.trace:
        n_events = write_chrome_trace(args.trace, obs.tracer.spans)
        print(f"chrome trace written to {args.trace} "
              f"({n_events} span events; load in chrome://tracing)")
        _print_flame_table(obs)
    print(f"benchmark     : {result.benchmark}")
    print(f"policy        : {result.policy}")
    print(f"execution time: {result.execution_time_s:.2f} s "
          f"(app {result.app_time_s:.2f}, overhead "
          f"{result.overhead_time_s:.3f}, migration "
          f"{result.migration_time_s:.3f})")
    if result.p99_latency_us is not None:
        print(f"p99 latency   : {result.p99_latency_us:.2f} us")
    print(f"promoted      : {result.promoted}  demoted: {result.demoted}")
    print(f"DDR/CXL pages : {result.nr_pages_ddr} / {result.nr_pages_cxl}")
    if sim.config.checkpoint_every > 0:
        print(f"checkpoints   : {sim.checkpoints_written} written "
              f"(every {sim.config.checkpoint_every} epochs -> "
              f"{sim.config.checkpoint_path})")
    if result.access_count_ratio is not None:
        print(f"access-count ratio: {result.access_count_ratio:.3f}")
    if getattr(args, "check_invariants", False):
        checks = result.extra.get("invariant_checks", 0.0)
        violations = result.extra.get("invariant_violations", 0.0)
        print(f"invariants    : {checks:.0f} checks, "
              f"{violations:.0f} violations")
    if args.migration_mode == "async":
        ex = result.extra
        print(f"async queue   : enqueued {ex.get('mig_enqueued', 0):.0f}, "
              f"committed {ex.get('mig_committed', 0):.0f}, "
              f"aborted {ex.get('mig_aborted', 0):.0f} "
              f"(dirty {ex.get('mig_aborted_dirty', 0):.0f} / "
              f"injected {ex.get('mig_aborted_injected', 0):.0f} / "
              f"enomem {ex.get('mig_aborted_enomem', 0):.0f}), "
              f"retried {ex.get('mig_retries', 0):.0f}, "
              f"dropped {ex.get('mig_dropped_retries', 0):.0f}, "
              f"pending {ex.get('mig_pending', 0):.0f}")
        totals = migration_outcome_totals(result.timeline)
        if totals["epochs_active"]:
            print(f"queue timeline: active in {totals['epochs_active']:.0f} "
                  f"epochs, peak pending {totals['peak_pending']:.0f}, "
                  f"commit/abort ratio "
                  f"{totals['committed']:.0f}/{totals['aborted']:.0f}")
    return 0


def _parse_stream_spec(text: str):
    """``NAME=TRACE[,policy=P][,budget=N]`` → :class:`StreamSpec`."""
    from repro.service import StreamSpec

    if "=" not in text:
        raise ValueError(
            f"stream spec {text!r} must look like NAME=TRACE"
            "[,policy=P][,budget=N]"
        )
    name, rest = text.split("=", 1)
    parts = rest.split(",")
    kwargs = {}
    for part in parts[1:]:
        if "=" not in part:
            raise ValueError(f"bad stream option {part!r} in {text!r}")
        key, value = part.split("=", 1)
        if key == "policy":
            if value not in ALL_POLICIES:
                raise ValueError(f"unknown policy {value!r} in {text!r}")
            kwargs["policy"] = value
        elif key == "budget":
            kwargs["budget"] = int(value)
        else:
            raise ValueError(
                f"unknown stream option {key!r} in {text!r} "
                "(known: policy, budget)"
            )
    return StreamSpec(name.strip(), parts[0], **kwargs)


def cmd_serve(args) -> int:
    from repro.service import Service, ServiceConfig

    if args.resume:
        overrides = {}
        if args.max_rounds is not None:
            overrides["max_rounds"] = args.max_rounds
        if args.poll_interval is not None:
            overrides["poll_interval_s"] = args.poll_interval
        try:
            service = Service.resume(args.resume, **overrides)
        except (OSError, CheckpointError) as exc:
            print(f"cannot resume service from {args.resume}: {exc}")
            return 2
        print(f"resumed service from {args.resume} "
              f"(round {service.round}, "
              f"{len(service.active_streams)} live / "
              f"{len(service.results)} finished streams)")
    else:
        if not args.stream:
            print("error: at least one --stream NAME=TRACE is required "
                  "(unless resuming with --resume)")
            return 2
        try:
            specs = [_parse_stream_spec(s) for s in args.stream]
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        sim_config = SimConfig(
            chunk_size=args.chunk,
            seed=args.seed,
            engine=args.engine,
        )
        svc_config = ServiceConfig(
            buffer_capacity=args.buffer_cap,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir or "",
            poll_interval_s=(args.poll_interval
                             if args.poll_interval is not None else 0.05),
            max_rounds=args.max_rounds or 0,
        )
        try:
            service = Service(specs, sim_config, svc_config)
        except (OSError, ValueError) as exc:
            print(f"cannot start service: {exc}")
            return 2
        for stream in service.streams:
            print(f"stream {stream.name:<12} {stream.spec.trace} "
                  f"(policy {stream.spec.policy}, "
                  f"budget {stream.spec.budget}/round)")
    service.install_signal_handlers()
    with contextlib.ExitStack() as stack:
        stack.enter_context(service)
        if not args.no_http:
            server = stack.enter_context(
                ObsServer(service.snapshot, port=args.port)
            )
            print(f"live metrics  : {server.url}/metrics  "
                  "(also /healthz, /snapshot.json)", flush=True)
        results = service.run()
    if service._stop_requested:
        where = (f"; state checkpointed to {service.config.checkpoint_dir}"
                 if service.config.checkpoint_every else
                 " (no checkpointing configured - progress lost)")
        print(f"stopped by signal at round {service.round}{where}")
    print(f"rounds        : {service.round}"
          + (f"  checkpoints: {service.checkpoints_written}"
             if service.config.checkpoint_every else ""))
    for name in sorted(results):
        r = results[name]
        print(f"{name:<14}: {r.benchmark}/{r.policy}  "
              f"time {r.execution_time_s:.2f}s  "
              f"promoted {r.promoted}  demoted {r.demoted}")
    unfinished = [s.name for s in service.active_streams]
    if unfinished:
        print(f"unfinished    : {', '.join(sorted(unfinished))}")
    if args.out:
        payload = {
            "rounds": service.round,
            "checkpoints_written": service.checkpoints_written,
            "unfinished": sorted(unfinished),
            "streams": {
                name: {
                    "benchmark": r.benchmark,
                    "policy": r.policy,
                    "execution_time_s": r.execution_time_s,
                    "app_time_s": r.app_time_s,
                    "overhead_time_s": r.overhead_time_s,
                    "migration_time_s": r.migration_time_s,
                    "promoted": r.promoted,
                    "demoted": r.demoted,
                    "nr_pages_ddr": r.nr_pages_ddr,
                    "nr_pages_cxl": r.nr_pages_cxl,
                    "extra": r.extra,
                }
                for name, r in results.items()
            },
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"service summary written to {args.out}")
    return 0


def cmd_compare(args) -> int:
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    unknown = [p for p in policies if p not in ALL_POLICIES]
    if unknown:
        print(f"unknown policies: {', '.join(unknown)}")
        return 2
    base = Simulation(
        registry.build(args.bench, seed=args.seed), _config_from(args),
        policy="none",
    ).run()
    rows = []
    for policy in policies:
        result = Simulation(
            registry.build(args.bench, seed=args.seed), _config_from(args),
            policy=policy,
        ).run()
        if base.p99_latency_us and result.p99_latency_us:
            norm = base.p99_latency_us / result.p99_latency_us
        else:
            norm = base.execution_time_s / result.execution_time_s
        rows.append([policy, result.execution_time_s, norm,
                     result.promoted, result.demoted])
    print_table(
        f"{args.bench}: performance normalised to no migration",
        ["policy", "exec_s", "norm", "promoted", "demoted"],
        rows,
    )
    return 0


def cmd_sweep(args) -> int:
    benches = [b.strip() for b in args.benches.split(",") if b.strip()]
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    unknown = [p for p in policies if p not in ALL_POLICIES]
    if unknown:
        print(f"unknown policies: {', '.join(unknown)}")
        return 2
    unknown_benches = [b for b in benches if b not in registry.names()]
    if unknown_benches:
        print(f"unknown benchmarks: {', '.join(unknown_benches)}")
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1 (got {args.jobs})")
        return 2
    # ``functools.partial`` over SimConfig keeps the factory picklable
    # for the worker processes (a closure over ``args`` would not be).
    factory = functools.partial(
        SimConfig,
        total_accesses=args.accesses,
        chunk_size=args.chunk,
        trace_subsample=args.subsample,
        migrate=not getattr(args, "no_migrate", False),
        checkpoints=getattr(args, "checkpoints", 1) or 1,
        migration_mode=getattr(args, "migration_mode", "instant"),
        migration_inflight_budget=getattr(args, "mig_budget", 128),
        migration_queue_capacity=getattr(args, "mig_queue_cap", 4096),
        migration_abort_rate=getattr(args, "mig_abort_rate", 0.0),
        migration_max_retries=getattr(args, "mig_max_retries", 3),
        migration_copy_gbps=getattr(args, "mig_copy_gbps", 0.0),
        migration_enomem_policy=getattr(args, "mig_enomem", "demote-first"),
    )
    serve = bool(getattr(args, "serve", False))
    if getattr(args, "metrics", None) or serve:
        with contextlib.ExitStack() as stack:
            on_result = None
            if serve:
                # One live endpoint over the whole matrix: each cell's
                # snapshot lands in the aggregate registry (labelled by
                # bench/policy) the moment the worker returns it.
                aggregate = MetricsRegistry(enabled=True)

                def on_result(bench: str, policy: str, result) -> None:
                    if result.metrics:
                        aggregate.merge(
                            result.metrics,
                            extra_labels={"bench": bench, "policy": policy},
                        )

                server = stack.enter_context(
                    ObsServer(aggregate, port=args.serve_port)
                )
                print(f"live metrics  : {server.url}/metrics  "
                      "(cells appear as they finish)", flush=True)
            results = collect_matrix(
                benches, policies, factory, seed=args.seed, jobs=args.jobs,
                with_metrics=True, on_result=on_result,
            )
            if serve and args.serve_linger > 0:
                print(f"sweep finished; serving final aggregate for "
                      f"{args.serve_linger:g}s", flush=True)
                time.sleep(args.serve_linger)
        matrix = {
            bench: {
                p: normalized(results[bench]["none"], results[bench][p])
                for p in policies
            }
            for bench in benches
        }
        if getattr(args, "metrics", None):
            cell_metrics = {
                bench: {
                    policy: result.metrics
                    for policy, result in results[bench].items()
                }
                for bench in benches
            }
            with open(args.metrics, "w") as fh:
                json.dump(cell_metrics, fh, indent=2)
            n_cells = sum(len(row) for row in cell_metrics.values())
            print(f"per-cell metrics written to {args.metrics} "
                  f"({n_cells} cells)")
    else:
        matrix = run_matrix(
            benches, policies, factory, seed=args.seed, jobs=args.jobs
        )
    rows = [[bench] + [matrix[bench][p] for p in policies] for bench in benches]
    means = matrix_means(matrix)
    rows.append(["mean"] + [means[p] for p in policies])
    print_table(
        f"sweep ({len(benches)}x{len(policies)} cells, jobs={args.jobs}): "
        "performance normalised to no migration",
        ["bench"] + policies,
        rows,
    )
    return 0


def cmd_fleet(args) -> int:
    from repro.fleet import MAX_TENANTS, FleetConfig

    benches = [b.strip() for b in args.bench.split(",") if b.strip()]
    unknown_benches = [b for b in benches if b not in registry.names()]
    if unknown_benches:
        print(f"unknown benchmarks: {', '.join(unknown_benches)}")
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1 (got {args.jobs})")
        return 2
    if args.tenants > MAX_TENANTS:
        print(f"--tenants is capped at {MAX_TENANTS} by the per-tenant "
              "physical-address windows")
        return 2
    try:
        fleet = FleetConfig(
            tenants=args.tenants,
            tiers=args.tiers,
            bench=args.bench,
            policy=args.policy,
            weights=args.weights,
            qos=not args.no_qos,
            pooled_capacity_gb=args.pooled_gb,
            chain_headroom_frac=args.chain_headroom,
            chain_pull_budget=args.chain_pull_budget,
        )
    except ValueError as exc:
        print(f"bad fleet configuration: {exc}")
        return 2
    config = _config_from(args)
    config.seed = args.seed
    with_metrics = bool(args.out) or bool(args.metrics) or bool(args.serve)
    watchdog = None
    if args.serve or args.trace:
        # The live/trace path needs the in-process lockstep fleet: the
        # server scrapes its merged per-tenant snapshot mid-run and
        # the tracer collects per-tenant spans.
        from repro.fleet import FleetSimulation

        fsim = FleetSimulation(
            fleet,
            config,
            obs=Observability(metrics=with_metrics, tracing=False),
            tenant_metrics=with_metrics,
            tenant_tracing=bool(args.trace),
        )
        watchdog = fsim.watchdog
        with contextlib.ExitStack() as stack:
            if args.serve:
                server = stack.enter_context(
                    ObsServer(fsim.merged_snapshot, port=args.serve_port)
                )
                print(f"live metrics  : {server.url}/metrics  "
                      "(per-tenant labelled series)", flush=True)
            result = fsim.run()
            if args.serve and args.serve_linger > 0:
                print(f"fleet finished; serving final snapshot for "
                      f"{args.serve_linger:g}s", flush=True)
                time.sleep(args.serve_linger)
        if args.trace:
            trace = merged_chrome_trace(fsim.tenant_spans())
            with open(args.trace, "w") as fh:
                json.dump(trace, fh)
            print(f"fleet chrome trace written to {args.trace} "
                  f"({len(trace['traceEvents'])} span events, one process "
                  "row per tenant; load in chrome://tracing)")
    else:
        result = collect_fleet(
            fleet, config, jobs=args.jobs, with_metrics=with_metrics,
        )
    tier_names = list(result.results[0].bandwidth_share)
    rows = []
    for t in result.results:
        rows.append(
            [t.tenant, t.bench, t.result.execution_time_s,
             t.slowdown_vs_isolated, t.result.promoted, t.result.demoted,
             t.chain.get("demoted_to_pooled", 0.0),
             t.chain.get("pulled_from_pooled", 0.0)]
            + [t.bandwidth_share[name] for name in tier_names]
        )
    print_table(
        f"fleet: {result.tenants} tenants x {result.tiers} tiers, "
        f"policy {result.policy}, qos={'on' if result.qos else 'off'}, "
        f"{result.epochs} epochs",
        ["tenant", "bench", "exec_s", "slowdn", "prom", "dem",
         "dem_pool", "pull_up"] + [f"bw_{n}" for n in tier_names],
        rows,
        precision=3,
    )
    if getattr(args, "check_invariants", False):
        checks = sum(
            t.result.extra.get("invariant_checks", 0.0)
            for t in result.results
        )
        violations = sum(
            t.result.extra.get("invariant_violations", 0.0)
            for t in result.results
        )
        print(f"invariants    : {checks:.0f} checks, "
              f"{violations:.0f} violations")
    _print_slo_summary(watchdog)
    if args.out:
        payload = result.as_dict()
        payload["metrics"] = result.metrics
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"fleet summary + per-tenant metrics written to {args.out}")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            json.dump(result.metrics, fh, indent=2)
        print(f"fleet metrics snapshot written to {args.metrics}")
    return 0


def cmd_metrics(args) -> int:
    if len(args.files) > 2:
        print("metrics takes one file (show) or two (diff)")
        return 2
    try:
        flats = [load_metrics_file(path) for path in args.files]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"cannot load metrics file: {exc}")
        return 2
    if len(flats) == 1:
        flat = flats[0]
        if not flat:
            print(f"no series in {args.files[0]}")
            return 0
        rows = [[key, value] for key, value in sorted(flat.items())]
        print_table(
            f"metrics snapshot: {args.files[0]} ({len(rows)} series)",
            ["series", "value"],
            rows,
            precision=3,
            col_width=44,
        )
        return 0
    diff = diff_snapshots(flats[0], flats[1])
    changed = [row for row in diff if row["delta"] != 0.0]
    rows = [[row["series"], row["a"], row["b"], row["delta"]]
            for row in (diff if args.all else changed)]
    if not rows:
        print(f"no differing series across {len(diff)} "
              "(pass --all to list unchanged series)")
        return 0
    print_table(
        f"metrics diff: {args.files[0]} -> {args.files[1]} "
        f"({len(changed)} of {len(diff)} series changed)",
        ["series", "a", "b", "delta"],
        rows,
        precision=3,
        col_width=44,
    )
    return 0


def cmd_profile(args) -> int:
    workload = registry.build(args.bench, seed=args.seed)
    config = _config_from(args)
    config.migrate = False
    sim = Simulation(workload, config, policy="none", enable_wac=True)
    sim.run()
    cdf = AccessCdf.from_counts(args.bench, sim.pac.counts())
    skew = cdf.skew_summary()
    profile = from_wac(args.bench, sim.wac, min_accesses=128)
    print(f"pages touched  : {cdf.counts.size}")
    print(f"p90/p95/p99 over p50: {skew['p90_over_p50']:.2f} / "
          f"{skew['p95_over_p50']:.2f} / {skew['p99_over_p50']:.2f}")
    print(f"gini           : {cdf.gini():.3f}")
    for n in (4, 8, 16, 32, 48):
        print(f"P(<= {n:2d} words) : {profile.at(n):.2f}")
    kind = "sparse" if profile.mostly_sparse else (
        "dense" if profile.mostly_dense else "mixed")
    print(f"page character : {kind}")
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import profile_benchmark, render_markdown

    profile = profile_benchmark(
        args.bench, total_accesses=args.accesses, seed=args.seed
    )
    text = render_markdown(profile)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def cmd_verify(args) -> int:
    from repro.verify import ORACLES, run_all

    names = [n.strip() for n in args.oracles.split(",") if n.strip()]
    unknown = [n for n in names if n not in ORACLES]
    if unknown:
        print(f"unknown oracles: {', '.join(unknown)} "
              f"(known: {', '.join(ORACLES)})")
        return 2
    overrides = {
        "migration": {
            "bench": args.bench,
            "policy": args.policy,
            "seed": args.seed,
            "accesses": args.accesses,
            "chunk": args.chunk,
        },
        "sketch": {"seed": args.seed},
        "pac": {"seed": args.seed},
        "engine": {
            "bench": args.bench,
            "policy": args.policy,
            "seed": args.seed,
        },
        "kernels": {"seed": args.seed},
        "fleet": {
            "bench": args.bench,
            "policy": args.policy,
            "seed": args.seed,
        },
        "resume": {
            "bench": args.bench,
            "policy": args.policy,
            "seed": args.seed,
        },
    }
    reports = run_all(names, **{n: overrides.get(n, {}) for n in names})
    failed = 0
    for report in reports:
        print(report.format())
        if not report.ok:
            failed += 1
            for row in report.failures():
                print(f"  -> drift in {row.field}: "
                      f"{row.a:g} vs {row.b:g} "
                      f"(drift {row.drift:.2%} > tol {row.tolerance:.2%})")
        print()
    if failed:
        print(f"VERIFY FAILED: {failed} of {len(reports)} oracle pairs drifted")
        return 1
    print(f"verify ok: {len(reports)} oracle pairs agree")
    return 0


def cmd_lint(args) -> int:
    from repro.lintkit import run_from_args

    return run_from_args(args)


def cmd_hwcost(args) -> int:
    rows = []
    for row in hwcost.table4():
        rows.append(
            [row["entries"], row["space_saving_area_um2"],
             row["cm_sketch_area_um2"], row["space_saving_power_mw"],
             row["cm_sketch_power_mw"]]
        )
    print_table(
        "Tracker cost model (Table 4): area um^2 / power mW",
        ["entries", "SS_area", "CMS_area", "SS_power", "CMS_power"],
        rows,
        precision=1,
    )
    rel = hwcost.relative_cost(2048)
    print(f"at N=2K: Space-Saving costs {rel['area_ratio']:.1f}x area and "
          f"{rel['power_ratio']:.1f}x power of CM-Sketch")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="M5 (ASPLOS 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered benchmarks")

    def add_run_args(p, with_policy=True, bench_required=True):
        p.add_argument("--bench", required=bench_required,
                       help="benchmark name (see `list`)")
        if with_policy:
            p.add_argument("--policy", default="m5-hpt", choices=ALL_POLICIES)
        p.add_argument("--accesses", type=int, default=1_000_000)
        p.add_argument("--chunk", type=int, default=16_384)
        p.add_argument("--subsample", type=float, default=64.0)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--engine", default="batched",
                       choices=("reference", "batched"),
                       help="epoch hot-path implementation: vectorized "
                            "array kernels (batched) or the per-access "
                            "reference loops; results are bit-identical")

    def add_migration_args(p):
        p.add_argument("--migration-mode", default="instant",
                       choices=("instant", "async"),
                       help="instant: atomic flat-cost migration; async: "
                            "transactional queue with budgets and aborts")
        p.add_argument("--mig-budget", type=int, default=128,
                       help="async: max page copies in flight per epoch")
        p.add_argument("--mig-queue-cap", type=int, default=4096,
                       help="async: bounded migration-queue capacity")
        p.add_argument("--mig-abort-rate", type=float, default=0.0,
                       help="async: injected mid-copy abort probability")
        p.add_argument("--mig-max-retries", type=int, default=3,
                       help="async: retries before a request is dropped")
        p.add_argument("--mig-copy-gbps", type=float, default=0.0,
                       help="async: copy-engine bandwidth throttle (GB/s, "
                            "0 = budget-only)")
        p.add_argument("--mig-enomem", default="demote-first",
                       choices=("demote-first", "abort"),
                       help="async: full fast tier demotes a victim first "
                            "or aborts the promotion")

    def add_serve_args(p, what="the run"):
        p.add_argument("--serve", action="store_true",
                       help=f"serve /metrics, /healthz and /snapshot.json "
                            f"over HTTP while {what} is in flight")
        p.add_argument("--serve-port", type=int, default=0, metavar="PORT",
                       help="live-endpoint port (0 = ephemeral; the bound "
                            "URL is printed at startup)")
        p.add_argument("--serve-linger", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep serving the final snapshot this long "
                            "after the work finishes")

    def add_record_args(p):
        p.add_argument("--record-series", default=None, metavar="SPEC",
                       help="per-epoch time-series recorder: 'default', "
                            "'all', or comma-separated metric families")
        p.add_argument("--record-epochs", type=int, default=4096,
                       metavar="N",
                       help="recorder ring capacity in epochs (oldest "
                            "rows are overwritten beyond it)")
        p.add_argument("--slo-rules", default=None, metavar="SPEC",
                       help="SLO watchdog: 'default' or a JSON rule file; "
                            "breaches raise alert.* telemetry and the "
                            "slo_breaches_total counter")

    run = sub.add_parser("run", help="run one benchmark under one policy")
    add_run_args(run, bench_required=False)
    add_migration_args(run)
    add_serve_args(run)
    add_record_args(run)
    run.add_argument("--record-out", default=None, metavar="FILE",
                     help="export the recorded per-epoch series (CSV if "
                          "FILE ends .csv, else JSONL)")
    run.add_argument("--no-migrate", action="store_true",
                     help="identification-only mode (§4.1 S1)")
    run.add_argument("--check-invariants", action="store_true",
                     help="run the per-epoch invariant catalogue (counter/"
                          "tier conservation, tracker/queue bounds); a "
                          "violation aborts the run")
    run.add_argument("--checkpoints", type=int, default=10)
    run.add_argument("--timeline", default=None, metavar="FILE",
                     help="write the per-epoch telemetry timeline as JSONL")
    run.add_argument("--metrics", default=None, metavar="FILE",
                     help="write a metrics snapshot (JSON if FILE ends "
                          ".json, else Prometheus text exposition)")
    run.add_argument("--trace", default=None, metavar="FILE",
                     help="write pipeline-stage spans as chrome://tracing "
                          "JSON and print the flame table")
    run.add_argument("--checkpoint", default=None, metavar="FILE",
                     help="persist the full run state to FILE (atomically "
                          "replaced) every --checkpoint-every epochs")
    run.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                     help="checkpoint cadence in epochs (0 disables; "
                          "requires --checkpoint)")
    run.add_argument("--resume", default=None, metavar="CKPT",
                     help="resume a checkpointed run to completion; the "
                          "result is bit-identical to the uninterrupted "
                          "run (run-shape flags are ignored)")

    serve = sub.add_parser(
        "serve",
        help="streaming service daemon: multiplex N trace streams onto "
             "the epoch engine with per-stream budgets, live metrics, "
             "and checkpoint/resume",
    )
    serve.add_argument("--stream", action="append", default=[],
                       metavar="NAME=TRACE[,policy=P][,budget=N]",
                       help="add one stream fed from TRACE (v2 stream or "
                            "v1 .npz); repeatable")
    serve.add_argument("--chunk", type=int, default=16_384,
                       help="engine epoch size in accesses")
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--engine", default="batched",
                       choices=("reference", "batched"),
                       help="epoch hot-path implementation")
    serve.add_argument("--buffer-cap", type=int, default=1 << 20,
                       metavar="N",
                       help="per-stream ingest buffer bound in addresses "
                            "(a full buffer back-pressures ingestion)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for periodic service checkpoints")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="R",
                       help="checkpoint cadence in scheduler rounds "
                            "(0 disables; requires --checkpoint-dir)")
    serve.add_argument("--resume", default=None, metavar="DIR",
                       help="resume a checkpointed service; with sealed "
                            "sources the results are bit-identical to an "
                            "uninterrupted run")
    serve.add_argument("--max-rounds", type=int, default=None, metavar="N",
                       help="stop after N scheduler rounds (default: run "
                            "until every stream finishes)")
    serve.add_argument("--poll-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="idle sleep when every in-flight source has "
                            "nothing new on disk")
    serve.add_argument("--port", type=int, default=0, metavar="PORT",
                       help="HTTP port for /metrics, /healthz, "
                            "/snapshot.json (0 = ephemeral)")
    serve.add_argument("--no-http", action="store_true",
                       help="run without the live metrics endpoint")
    serve.add_argument("--out", default=None, metavar="FILE",
                       help="write the per-stream summary as JSON")

    compare = sub.add_parser("compare", help="compare policies")
    add_run_args(compare, with_policy=False)
    add_migration_args(compare)
    compare.add_argument("--policies", default="anb,damon,m5-hpt")

    sweep = sub.add_parser(
        "sweep", help="benchmark x policy matrix (parallel with --jobs)"
    )
    sweep.add_argument("--benches", default="mcf,roms",
                       help="comma-separated benchmark names")
    sweep.add_argument("--policies", default="anb,damon,m5-hpt")
    sweep.add_argument("--accesses", type=int, default=1_000_000)
    sweep.add_argument("--chunk", type=int, default=16_384)
    sweep.add_argument("--subsample", type=float, default=64.0)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--engine", default="batched",
                       choices=("reference", "batched"),
                       help="epoch hot-path implementation (bit-identical "
                            "results; reference is the per-access baseline)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the matrix cells")
    sweep.add_argument("--no-migrate", action="store_true",
                       help="identification-only mode (§4.1 S1)")
    sweep.add_argument("--metrics", default=None, metavar="FILE",
                       help="collect every cell's metrics snapshot into "
                            "one JSON file keyed bench -> policy")
    add_migration_args(sweep)
    add_serve_args(sweep, what="the sweep")

    fleet = sub.add_parser(
        "fleet",
        help="multi-tenant fleet on a shared 2- or 3-tier hierarchy "
             "(QoS bandwidth arbitration + DRAM->CXL->pooled demotion "
             "chains)",
    )
    fleet.add_argument("--tenants", type=int, default=3,
                       help="co-located workloads sharing the hierarchy")
    fleet.add_argument("--tiers", type=int, default=3, choices=(2, 3),
                       help="tier depth: 2 (DDR+CXL) or 3 (+pooled CXL)")
    fleet.add_argument("--bench", default="mcf",
                       help="comma-separated benchmarks, assigned "
                            "round-robin over tenants")
    fleet.add_argument("--policy", default="m5-hpt", choices=ALL_POLICIES,
                       help="page-migration policy every tenant runs")
    fleet.add_argument("--weights", default="",
                       help="comma-separated per-tenant QoS weights "
                            "(empty = equal; cycled like --bench)")
    fleet.add_argument("--no-qos", action="store_true",
                       help="proportional bandwidth sharing instead of "
                            "weighted max-min fairness")
    fleet.add_argument("--pooled-gb", type=float, default=16.0,
                       help="pooled-tier capacity in GB (3-tier fleets)")
    fleet.add_argument("--chain-headroom", type=float, default=0.02,
                       help="fraction of each tenant's CXL share the "
                            "demotion chain keeps free")
    fleet.add_argument("--chain-pull-budget", type=int, default=64,
                       help="max pooled pages pulled back to CXL per "
                            "tenant-epoch (0 disables pull-ups)")
    fleet.add_argument("--accesses", type=int, default=1_000_000)
    fleet.add_argument("--chunk", type=int, default=16_384)
    fleet.add_argument("--subsample", type=float, default=64.0)
    fleet.add_argument("--seed", type=int, default=1)
    fleet.add_argument("--engine", default="batched",
                       choices=("reference", "batched"),
                       help="epoch hot-path implementation every tenant "
                            "uses (bit-identical results)")
    fleet.add_argument("--jobs", type=int, default=1,
                       help="worker processes to shard tenants across "
                            "(bandwidth-coupled fleets run in lockstep "
                            "regardless)")
    fleet.add_argument("--check-invariants", action="store_true",
                       help="run the per-epoch invariant catalogue in "
                            "every tenant's pipeline")
    fleet.add_argument("--out", default=None, metavar="FILE",
                       help="write the fleet summary + per-tenant metric "
                            "rows as JSON (the CI snapshot artifact)")
    fleet.add_argument("--metrics", default=None, metavar="FILE",
                       help="write the fleet metrics-registry snapshot "
                            "as JSON")
    fleet.add_argument("--trace", default=None, metavar="FILE",
                       help="write per-tenant pipeline spans as one "
                            "chrome://tracing JSON (one process row per "
                            "tenant; forces the lockstep path)")
    add_serve_args(fleet, what="the fleet")
    add_record_args(fleet)

    metrics = sub.add_parser(
        "metrics", help="pretty-print one metrics snapshot, or diff two"
    )
    metrics.add_argument("files", nargs="+", metavar="FILE",
                         help="snapshot files (.json or .prom); one file "
                              "shows it, two files diff them")
    metrics.add_argument("--all", action="store_true",
                         help="diff: also list unchanged series")

    profile = sub.add_parser("profile", help="PAC/WAC offline profile")
    add_run_args(profile, with_policy=False)

    report = sub.add_parser("report", help="full Markdown profile report")
    add_run_args(report, with_policy=False)
    report.add_argument("--output", default=None,
                        help="write the report to a file instead of stdout")

    verify = sub.add_parser(
        "verify",
        help="run the differential oracle pairs (exact vs batched sketch, "
             "PAC cache vs direct, instant vs async-unlimited migration)",
    )
    verify.add_argument("--oracles",
                        default="sketch,pac,migration,engine,kernels,fleet,"
                                "resume",
                        help="comma-separated oracle names to run")
    verify.add_argument("--bench", default="mcf",
                        help="benchmark for the migration oracle")
    verify.add_argument("--policy", default="m5-hpt", choices=ALL_POLICIES,
                        help="policy for the migration oracle")
    verify.add_argument("--accesses", type=int, default=400_000)
    verify.add_argument("--chunk", type=int, default=16_384)
    verify.add_argument("--seed", type=int, default=1)

    sub.add_parser("hwcost", help="Table 4 tracker cost model")

    lint = sub.add_parser(
        "lint",
        help="project-aware static analysis (determinism, units, numpy "
             "dtype safety, registry drift)",
    )
    from repro.lintkit import add_arguments as _add_lint_arguments

    _add_lint_arguments(lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "serve": cmd_serve,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "fleet": cmd_fleet,
        "metrics": cmd_metrics,
        "profile": cmd_profile,
        "report": cmd_report,
        "verify": cmd_verify,
        "hwcost": cmd_hwcost,
        "lint": cmd_lint,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
