"""Per-page access-count distribution analysis (Figure 10).

Figure 10 plots the CDF of log10(access count) over all pages of each
benchmark, and §7.2 reads skew off it: roms_r's p90/p95/p99 pages are
2x/8x/17x hotter than its p50 page, Liblinear is the most skewed,
while TC's bottom half is nearly flat (bottom-p50 minus bottom-p10 ≈
288 accesses) — which decides whether precise migration pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class AccessCdf:
    """Distribution of per-page access counts for one benchmark."""

    benchmark: str
    counts: np.ndarray  # per-page access counts, touched pages only

    @classmethod
    def from_counts(cls, benchmark: str, counts: np.ndarray) -> AccessCdf:
        arr = np.asarray(counts, dtype=np.float64)
        return cls(benchmark=benchmark, counts=np.sort(arr[arr > 0]))

    def percentile(self, p: float) -> float:
        """Access count of the p-th percentile page (hotness order)."""
        if self.counts.size == 0:
            return 0.0
        return float(np.quantile(self.counts, p / 100.0))

    def hotness_ratio(self, p: float, base: float = 50.0) -> float:
        """How much hotter the p-th percentile page is than the base
        percentile page (the §7.2 roms reading: p99/p50 ≈ 17)."""
        denom = self.percentile(base)
        if denom <= 0:
            return float("inf")
        return self.percentile(p) / denom

    def skew_summary(self) -> Dict[str, float]:
        return {
            "p90_over_p50": self.hotness_ratio(90),
            "p95_over_p50": self.hotness_ratio(95),
            "p99_over_p50": self.hotness_ratio(99),
        }

    def bottom_gap(self, hi: float = 50.0, lo: float = 10.0) -> float:
        """Bottom-half flatness: count(p_hi) − count(p_lo) (§7.2 TC:
        ≈ 288 accesses)."""
        return self.percentile(hi) - self.percentile(lo)

    def cdf_points(
        self, log10_grid: Sequence[float] = tuple(np.arange(0.0, 8.25, 0.25))
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) on a log10 access-count grid — the Figure 10 curve."""
        x = np.asarray(log10_grid, dtype=np.float64)
        if self.counts.size == 0:
            return x, np.zeros_like(x)
        logc = np.log10(self.counts)
        f = np.searchsorted(np.sort(logc), x, side="right") / logc.size
        return x, f

    def gini(self) -> float:
        """Gini coefficient of page heat — a scalar skew index."""
        c = self.counts
        if c.size == 0 or c.sum() == 0:
            return 0.0
        sorted_c = np.sort(c)
        n = c.size
        cum = np.cumsum(sorted_c)
        return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def breakeven_migration_accesses(
    migration_cost_us: float = 54.0,
    cxl_latency_ns: float = 270.0,
    ddr_latency_ns: float = 100.0,
) -> float:
    """§7.2 arithmetic: accesses to amortise one migration (≈318)."""
    return migration_cost_us * 1000.0 / (cxl_latency_ns - ddr_latency_ns)


def migration_worthwhile(cdf: AccessCdf, percentile: float = 50.0,
                         breakeven: float = 318.0) -> bool:
    """Would migrating the page at ``percentile`` (by hotness, among
    not-yet-migrated pages) repay its cost?  TC-style flat tails fail
    this test — the paper's argument for conservative migration."""
    return cdf.bottom_gap(percentile, 10.0) > breakeven
