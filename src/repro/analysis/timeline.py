"""Epoch-resolution timeline analysis.

The engine's telemetry bus records one ``"epoch"`` event per epoch
(tier occupancy, traffic split, promotions/demotions, overhead and
migration time) plus ``"ratio"`` checkpoint events; these land in
``RunResult.timeline``.  This module turns that event list into the
column-oriented series the figures and harnesses plot — without
re-running the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Event = Dict[str, Union[str, int, float]]


def timeline_series(
    timeline: Sequence[Event], field: str, stage: str = "epoch"
) -> List[float]:
    """One field of the timeline as an epoch-ordered series.

    Events missing the field are skipped, so sparse stages (e.g.
    ``"ratio"`` checkpoints) come out dense.
    """
    return [
        float(e[field])
        for e in timeline
        if e.get("stage") == stage and field in e
    ]


def timeline_frame(
    timeline: Sequence[Event], stage: str = "epoch"
) -> Dict[str, List[float]]:
    """Pivot one stage's events into ``{field: series}`` columns.

    Only fields present in every event of the stage are kept, so all
    returned columns have equal length (indexable by epoch position).
    """
    events = [e for e in timeline if e.get("stage") == stage]
    if not events:
        return {}
    fields = set(events[0])
    for e in events[1:]:
        fields &= set(e)
    fields.discard("stage")
    return {
        f: [float(e[f]) for e in events] for f in sorted(fields)
    }


def occupancy_series(timeline: Sequence[Event]) -> Dict[str, List[float]]:
    """DDR/CXL resident-page counts per epoch (the tiering trajectory)."""
    frame = timeline_frame(timeline)
    return {
        "epoch": frame.get("epoch", []),
        "t_s": frame.get("t_s", []),
        "nr_pages_ddr": frame.get("nr_pages_ddr", []),
        "nr_pages_cxl": frame.get("nr_pages_cxl", []),
    }


def migration_totals(timeline: Sequence[Event]) -> Dict[str, float]:
    """Aggregate promotions/demotions and migration time over the run."""
    frame = timeline_frame(timeline)
    return {
        "promoted": sum(frame.get("promoted", [])),
        "demoted": sum(frame.get("demoted", [])),
        "migration_us": sum(frame.get("migration_us", [])),
        "overhead_us": sum(frame.get("overhead_us", [])),
    }


def ratio_trajectory(timeline: Sequence[Event]) -> List[float]:
    """The access-count-ratio checkpoints, in measurement order."""
    return timeline_series(timeline, "ratio", stage="ratio")
