"""Epoch-resolution timeline analysis.

The engine's telemetry bus records one ``"epoch"`` event per epoch
(tier occupancy, traffic split, promotions/demotions, overhead and
migration time) plus ``"ratio"`` checkpoint events; these land in
``RunResult.timeline``.  This module turns that event list into the
column-oriented series the figures and harnesses plot — without
re-running the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Event = Dict[str, Union[str, int, float]]


def timeline_series(
    timeline: Sequence[Event], field: str, stage: str = "epoch"
) -> List[float]:
    """One field of the timeline as an epoch-ordered series.

    Events missing the field are skipped, so sparse stages (e.g.
    ``"ratio"`` checkpoints) come out dense.
    """
    return [
        float(e[field])
        for e in timeline
        if e.get("stage") == stage and field in e
    ]


def timeline_frame(
    timeline: Sequence[Event], stage: str = "epoch"
) -> Dict[str, List[float]]:
    """Pivot one stage's events into ``{field: series}`` columns.

    Only fields present in every event of the stage are kept, so all
    returned columns have equal length (indexable by epoch position).
    """
    events = [e for e in timeline if e.get("stage") == stage]
    if not events:
        return {}
    fields = set(events[0])
    for e in events[1:]:
        fields &= set(e)
    fields.discard("stage")
    return {
        f: [float(e[f]) for e in events] for f in sorted(fields)
    }


def occupancy_series(timeline: Sequence[Event]) -> Dict[str, List[float]]:
    """DDR/CXL resident-page counts per epoch (the tiering trajectory)."""
    frame = timeline_frame(timeline)
    return {
        "epoch": frame.get("epoch", []),
        "t_s": frame.get("t_s", []),
        "nr_pages_ddr": frame.get("nr_pages_ddr", []),
        "nr_pages_cxl": frame.get("nr_pages_cxl", []),
    }


def migration_totals(timeline: Sequence[Event]) -> Dict[str, float]:
    """Aggregate promotions/demotions and migration time over the run."""
    frame = timeline_frame(timeline)
    return {
        "promoted": sum(frame.get("promoted", [])),
        "demoted": sum(frame.get("demoted", [])),
        "migration_us": sum(frame.get("migration_us", [])),
        "overhead_us": sum(frame.get("overhead_us", [])),
    }


def ratio_trajectory(timeline: Sequence[Event]) -> List[float]:
    """The access-count-ratio checkpoints, in measurement order."""
    return timeline_series(timeline, "ratio", stage="ratio")


#: Per-epoch columns of :func:`migration_outcomes`, and the payload
#: field each one sums from the ``migration.*`` event carrying it.
_MIGRATION_COLUMNS = (
    ("enqueued", "migration.enqueue", "enqueued"),
    ("dropped_full", "migration.enqueue", "dropped_full"),
    ("committed", "migration.commit", "committed"),
    ("promoted", "migration.commit", "promoted"),
    ("demoted", "migration.commit", "demoted"),
    ("aborted", "migration.abort", "aborted"),
    ("aborted_dirty", "migration.abort", "dirty"),
    ("aborted_injected", "migration.abort", "injected"),
    ("aborted_enomem", "migration.abort", "enomem"),
    ("retried", "migration.retry", "retried"),
    ("dropped_retries", "migration.retry", "dropped"),
)


def migration_outcomes(timeline: Sequence[Event]) -> Dict[str, List[float]]:
    """Pivot the async subsystem's ``migration.*`` events per epoch.

    Returns ``{"epoch": [...], "committed": [...], "aborted": [...],
    ...}`` columns of equal length — one row per epoch that published
    at least one migration event — so commits-vs-aborts trajectories
    plot directly.  Empty dict when the run produced no migration
    events (instant mode).
    """
    epochs: Dict[int, Dict[str, float]] = {}
    pending: Dict[int, float] = {}
    for e in timeline:
        stage = str(e.get("stage", ""))
        if not stage.startswith("migration."):
            continue
        epoch = int(e["epoch"])
        row = epochs.setdefault(
            epoch, {name: 0.0 for name, _, _ in _MIGRATION_COLUMNS}
        )
        for name, at_stage, field in _MIGRATION_COLUMNS:
            if stage == at_stage and field in e:
                row[name] += float(e[field])
        if stage == "migration.enqueue" and "pending" in e:
            pending[epoch] = float(e["pending"])
    if not epochs:
        return {}
    ordered = sorted(epochs)
    out: Dict[str, List[float]] = {"epoch": [float(ep) for ep in ordered]}
    for name, _, _ in _MIGRATION_COLUMNS:
        out[name] = [epochs[ep][name] for ep in ordered]
    out["pending"] = [pending.get(ep, 0.0) for ep in ordered]
    return out


def migration_outcome_totals(timeline: Sequence[Event]) -> Dict[str, float]:
    """Whole-run totals of the async subsystem's migration events."""
    frame = migration_outcomes(timeline)
    totals = {
        name: sum(frame.get(name, [])) for name, _, _ in _MIGRATION_COLUMNS
    }
    totals["epochs_active"] = float(len(frame.get("epoch", [])))
    totals["peak_pending"] = max(frame.get("pending", []), default=0.0)
    return totals
