"""Epoch-resolution timeline analysis.

The engine's telemetry bus records one ``"epoch"`` event per epoch
(tier occupancy, traffic split, promotions/demotions, overhead and
migration time) plus ``"ratio"`` checkpoint events; these land in
``RunResult.timeline``.  This module turns that event list into the
column-oriented series the figures and harnesses plot — without
re-running the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Event = Dict[str, Union[str, int, float]]


def timeline_series(
    timeline: Sequence[Event], field: str, stage: str = "epoch"
) -> List[float]:
    """One field of the timeline as an epoch-ordered series.

    Events missing the field are skipped, so sparse stages (e.g.
    ``"ratio"`` checkpoints) come out dense.
    """
    return [
        float(e[field])
        for e in timeline
        if e.get("stage") == stage and field in e
    ]


def timeline_frame(
    timeline: Sequence[Event], stage: str = "epoch"
) -> Dict[str, List[float]]:
    """Pivot one stage's events into ``{field: series}`` columns.

    Only fields present in every event of the stage are kept, so all
    returned columns have equal length (indexable by epoch position).
    """
    events = [e for e in timeline if e.get("stage") == stage]
    if not events:
        return {}
    fields = set(events[0])
    for e in events[1:]:
        fields &= set(e)
    fields.discard("stage")
    return {
        f: [float(e[f]) for e in events] for f in sorted(fields)
    }


def occupancy_series(timeline: Sequence[Event]) -> Dict[str, List[float]]:
    """DDR/CXL resident-page counts per epoch (the tiering trajectory)."""
    frame = timeline_frame(timeline)
    return {
        "epoch": frame.get("epoch", []),
        "t_s": frame.get("t_s", []),
        "nr_pages_ddr": frame.get("nr_pages_ddr", []),
        "nr_pages_cxl": frame.get("nr_pages_cxl", []),
    }


#: One pivot column: ``(column_name, stage, payload_field)`` with an
#: optional fourth element choosing the aggregation — ``"sum"`` (the
#: default) or ``"last"`` (keep the epoch's final value; right for
#: level-style fields like queue depth).
ColumnSpec = Sequence[str]


def pivot(
    timeline: Sequence[Event], columns: Sequence[ColumnSpec]
) -> Dict[str, List[float]]:
    """Pivot per-event payloads into per-epoch columns.

    Groups every event whose ``stage`` appears in ``columns`` by
    epoch, aggregates each column's field across the epoch's matching
    events, and returns ``{"epoch": [...], col: [...]}`` — equal-length
    columns, one row per epoch with at least one matching event,
    epochs sorted ascending, absent fields reading 0.0.  An empty
    match returns ``{}``.

    This is the one aggregation loop behind
    :func:`migration_outcomes` and :func:`migration_totals`; new event
    families get a table by declaring a column spec instead of
    re-writing the group-by.
    """
    specs = [
        (c[0], c[1], c[2], c[3] if len(c) > 3 else "sum") for c in columns
    ]
    for name, _, _, agg in specs:
        if agg not in ("sum", "last"):
            raise ValueError(f"column {name!r}: unknown aggregation {agg!r}")
    stages = {stage for _, stage, _, _ in specs}
    rows: Dict[int, Dict[str, float]] = {}
    for e in timeline:
        stage = e.get("stage")
        if stage not in stages:
            continue
        epoch = int(e["epoch"])
        row = rows.setdefault(epoch, {name: 0.0 for name, _, _, _ in specs})
        for name, at_stage, fieldname, agg in specs:
            if stage == at_stage and fieldname in e:
                if agg == "last":
                    row[name] = float(e[fieldname])
                else:
                    row[name] += float(e[fieldname])
    if not rows:
        return {}
    ordered = sorted(rows)
    out: Dict[str, List[float]] = {"epoch": [float(ep) for ep in ordered]}
    for name, _, _, _ in specs:
        out[name] = [rows[ep][name] for ep in ordered]
    return out


def migration_totals(timeline: Sequence[Event]) -> Dict[str, float]:
    """Aggregate promotions/demotions and migration time over the run."""
    frame = pivot(
        timeline,
        (
            ("promoted", "epoch", "promoted"),
            ("demoted", "epoch", "demoted"),
            ("migration_us", "epoch", "migration_us"),
            ("overhead_us", "epoch", "overhead_us"),
        ),
    )
    return {
        "promoted": sum(frame.get("promoted", [])),
        "demoted": sum(frame.get("demoted", [])),
        "migration_us": sum(frame.get("migration_us", [])),
        "overhead_us": sum(frame.get("overhead_us", [])),
    }


def ratio_trajectory(timeline: Sequence[Event]) -> List[float]:
    """The access-count-ratio checkpoints, in measurement order."""
    return timeline_series(timeline, "ratio", stage="ratio")


#: Per-epoch columns of :func:`migration_outcomes` — a :func:`pivot`
#: column spec over the async subsystem's ``migration.*`` events.
#: ``pending`` is a level (queue depth after the epoch's enqueues), so
#: it keeps the epoch's last value instead of summing.
_MIGRATION_COLUMNS = (
    ("enqueued", "migration.enqueue", "enqueued"),
    ("dropped_full", "migration.enqueue", "dropped_full"),
    ("committed", "migration.commit", "committed"),
    ("promoted", "migration.commit", "promoted"),
    ("demoted", "migration.commit", "demoted"),
    ("aborted", "migration.abort", "aborted"),
    ("aborted_dirty", "migration.abort", "dirty"),
    ("aborted_injected", "migration.abort", "injected"),
    ("aborted_enomem", "migration.abort", "enomem"),
    ("retried", "migration.retry", "retried"),
    ("dropped_retries", "migration.retry", "dropped"),
    ("pending", "migration.enqueue", "pending", "last"),
)


def migration_outcomes(timeline: Sequence[Event]) -> Dict[str, List[float]]:
    """Pivot the async subsystem's ``migration.*`` events per epoch.

    Returns ``{"epoch": [...], "committed": [...], "aborted": [...],
    ...}`` columns of equal length — one row per epoch that published
    at least one migration event — so commits-vs-aborts trajectories
    plot directly.  Empty dict when the run produced no migration
    events (instant mode).
    """
    return pivot(timeline, _MIGRATION_COLUMNS)


def migration_outcome_totals(timeline: Sequence[Event]) -> Dict[str, float]:
    """Whole-run totals of the async subsystem's migration events."""
    frame = migration_outcomes(timeline)
    totals = {
        name: sum(frame.get(name, [])) for name, *_ in _MIGRATION_COLUMNS
        if name != "pending"
    }
    totals["epochs_active"] = float(len(frame.get("epoch", [])))
    totals["peak_pending"] = max(frame.get("pending", []), default=0.0)
    return totals
