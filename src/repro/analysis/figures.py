"""Machine-readable figure exports.

Every regenerated table/figure can be exported as CSV so downstream
plotting (outside this offline environment) can redraw the paper's
figures.  The writers are deliberately dependency-free.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Sequence, Union

import numpy as np

from repro.analysis.cdf import AccessCdf
from repro.analysis.sparsity import SparsityProfile
from repro.workloads.wordmap import SPARSITY_THRESHOLDS


def write_csv(
    path: Union[str, Path], headers: Sequence[str], rows: Sequence[Sequence]
) -> Path:
    """Write one CSV file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return path


def export_ratio_bars(
    path: Union[str, Path], ratios: Dict[str, Dict[str, float]]
) -> Path:
    """Figure 3/8-style bars: benchmark × policy → ratio."""
    policies = sorted({p for row in ratios.values() for p in row})
    rows = [
        [bench] + [row.get(p, "") for p in policies]
        for bench, row in ratios.items()
    ]
    return write_csv(path, ["bench"] + policies, rows)


def export_sparsity(
    path: Union[str, Path], profiles: Dict[str, SparsityProfile]
) -> Path:
    """Figure 4: stacked probabilities per threshold."""
    rows = [
        [bench] + [prof.at(n) for n in SPARSITY_THRESHOLDS]
        for bench, prof in profiles.items()
    ]
    headers = ["bench"] + [f"p_le_{n}" for n in SPARSITY_THRESHOLDS]
    return write_csv(path, headers, rows)


def export_cdf_curves(
    path: Union[str, Path],
    cdfs: Dict[str, AccessCdf],
    log10_grid: Sequence[float] = tuple(np.arange(0.0, 8.25, 0.25)),
) -> Path:
    """Figure 10: one (x, F) series per benchmark on a shared grid."""
    headers = ["log10_count"] + list(cdfs)
    columns = []
    for cdf in cdfs.values():
        _, f = cdf.cdf_points(log10_grid)
        columns.append(f)
    rows = [
        [x] + [float(col[i]) for col in columns]
        for i, x in enumerate(log10_grid)
    ]
    return write_csv(path, headers, rows)


def export_series(
    path: Union[str, Path],
    series: Dict[str, Dict],
    x_label: str = "x",
) -> Path:
    """Generic multi-series export (Figures 7/11, sensitivity sweeps):
    ``series[name][x] = y``."""
    xs = sorted({x for row in series.values() for x in row})
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name].get(x, "") for name in series]
        for x in xs
    ]
    return write_csv(path, headers, rows)
