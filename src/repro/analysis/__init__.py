"""Analysis metrics: access-count ratio (§4.1), word sparsity (Fig 4),
per-page access CDFs (Fig 10), and table rendering for the harnesses."""

from repro.analysis.cdf import (
    AccessCdf,
    breakeven_migration_accesses,
    migration_worthwhile,
)
from repro.analysis.ratio import (
    RatioReport,
    best_cpu_driven,
    k_access_count,
    ratio,
    summarize,
    tracker_ratio,
)
from repro.analysis.sparsity import (
    SparsityProfile,
    dense_page_fraction,
    figure4_row,
    from_trace,
    from_wac,
)
from repro.analysis.figures import (
    export_cdf_curves,
    export_ratio_bars,
    export_series,
    export_sparsity,
    write_csv,
)
from repro.analysis.tables import print_series, print_table, render_series, render_table
from repro.analysis.timeline import (
    migration_outcome_totals,
    migration_outcomes,
    migration_totals,
    occupancy_series,
    pivot,
    ratio_trajectory,
    timeline_frame,
    timeline_series,
)

__all__ = [
    "AccessCdf",
    "breakeven_migration_accesses",
    "migration_worthwhile",
    "RatioReport",
    "best_cpu_driven",
    "k_access_count",
    "ratio",
    "summarize",
    "tracker_ratio",
    "SparsityProfile",
    "dense_page_fraction",
    "figure4_row",
    "from_trace",
    "from_wac",
    "print_series",
    "print_table",
    "render_series",
    "render_table",
    "export_cdf_curves",
    "export_ratio_bars",
    "export_series",
    "export_sparsity",
    "write_csv",
    "migration_outcome_totals",
    "migration_outcomes",
    "migration_totals",
    "occupancy_series",
    "pivot",
    "ratio_trajectory",
    "timeline_frame",
    "timeline_series",
]
