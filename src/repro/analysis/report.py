"""Per-benchmark profiling reports.

Combines the §3/§4 profiling views — page-heat distribution (PAC),
word sparsity (WAC), and hot-page identification quality — into one
Markdown document, the artifact a performance engineer would hand
around before choosing a migration policy.  Used by the CLI's
``report`` command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.cdf import AccessCdf, breakeven_migration_accesses
from repro.analysis.ratio import ratio
from repro.analysis.sparsity import SparsityProfile, from_wac
from repro.core.manager.nominator import HPT_DRIVEN, HPT_ONLY, HWT_DRIVEN
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.workloads import registry
from repro.workloads.wordmap import SPARSITY_THRESHOLDS


@dataclass
class BenchmarkProfile:
    """Everything the report needs about one benchmark."""

    bench: str
    cdf: AccessCdf
    sparsity: SparsityProfile
    policy_ratios: Dict[str, float]
    footprint_pages: int

    @property
    def recommended_nominator(self) -> str:
        """Guidelines 3/4 as a decision rule."""
        if self.sparsity.mostly_sparse:
            return HWT_DRIVEN
        if self.sparsity.mostly_dense:
            return HPT_ONLY
        return HPT_DRIVEN

    @property
    def migration_friendly(self) -> bool:
        """Does precise migration have something to win here?  Skewed
        page heat (the p99 page much hotter than p50) rewards it."""
        return self.cdf.hotness_ratio(99) > 4.0


def profile_benchmark(
    bench: str,
    total_accesses: int = 800_000,
    seed: int = 1,
    policies=("anb", "damon"),
    config: Optional[SimConfig] = None,
) -> BenchmarkProfile:
    """Run the instrumented (identification-only) profiling pass."""
    cfg = config or SimConfig(
        total_accesses=total_accesses, migrate=False, checkpoints=5
    )
    ratios: Dict[str, float] = {}
    pac = wac = None
    spec = registry.spec_of(bench)
    for policy in policies:
        sim = Simulation(
            registry.build(bench, seed=seed), cfg, policy=policy,
            enable_wac=(pac is None),
        )
        result = sim.run()
        ratios[policy] = ratio(
            sim.pac, result.hot_pfns, k_cap=spec.footprint_pages // 16
        )
        if pac is None:
            pac, wac = sim.pac, sim.wac
    return BenchmarkProfile(
        bench=bench,
        cdf=AccessCdf.from_counts(bench, pac.counts()),
        sparsity=from_wac(bench, wac, min_accesses=128),
        policy_ratios=ratios,
        footprint_pages=spec.footprint_pages,
    )


def render_markdown(profile: BenchmarkProfile) -> str:
    """Render one benchmark profile as Markdown."""
    skew = profile.cdf.skew_summary()
    lines = [
        f"# Profile: {profile.bench}",
        "",
        f"- footprint: {profile.footprint_pages} pages",
        f"- pages touched: {profile.cdf.counts.size}",
        "",
        "## Page heat (PAC)",
        "",
        "| metric | value |",
        "|---|---|",
        f"| p90 / p50 | {skew['p90_over_p50']:.2f} |",
        f"| p95 / p50 | {skew['p95_over_p50']:.2f} |",
        f"| p99 / p50 | {skew['p99_over_p50']:.2f} |",
        f"| gini | {profile.cdf.gini():.3f} |",
        f"| bottom p50−p10 gap | {profile.cdf.bottom_gap():.1f} accesses |",
        f"| migration break-even | {breakeven_migration_accesses():.0f} accesses |",
        "",
        "## Word sparsity (WAC)",
        "",
        "| ≤ words | probability |",
        "|---|---|",
    ]
    for n in SPARSITY_THRESHOLDS:
        lines.append(f"| {n} | {profile.sparsity.at(n):.2f} |")
    lines += [
        "",
        "## CPU-driven identification quality (access-count ratio)",
        "",
        "| policy | ratio |",
        "|---|---|",
    ]
    for policy, value in profile.policy_ratios.items():
        lines.append(f"| {policy} | {value:.3f} |")
    lines += [
        "",
        "## Recommendation",
        "",
        f"- Nominator mode: **{profile.recommended_nominator}** "
        "(Guidelines 3/4)",
        f"- precise migration worthwhile: "
        f"**{'yes' if profile.migration_friendly else 'marginal'}** "
        "(page-heat skew vs the §7.2 break-even)",
        "",
    ]
    return "\n".join(lines)
