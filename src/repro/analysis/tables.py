"""Plain-text table rendering for the benchmark harnesses.

Every benchmark prints the rows/series of the paper table or figure it
regenerates; these helpers keep the output format consistent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_cell(value, width: int = 10, precision: int = 3) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.{precision}f}".rjust(width)
    return str(value).rjust(width)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    precision: int = 3,
    col_width: Optional[int] = None,
) -> str:
    """Render a fixed-width table with a title banner."""
    width = col_width or max(10, max(len(h) for h in headers) + 2)
    lines: List[str] = []
    lines.append("")
    lines.append("=" * (width * len(headers)))
    lines.append(title)
    lines.append("=" * (width * len(headers)))
    lines.append("".join(h.rjust(width) for h in headers))
    lines.append("-" * (width * len(headers)))
    for row in rows:
        lines.append(
            "".join(format_cell(cell, width, precision) for cell in row)
        )
    lines.append("")
    return "\n".join(lines)


def print_table(title, headers, rows, precision: int = 3,
                col_width: Optional[int] = None) -> None:
    print(render_table(title, headers, rows, precision, col_width))


def render_series(title: str, pairs, precision: int = 3) -> str:
    """Render a (label → value) series, one per line."""
    lines = ["", title, "-" * len(title)]
    for label, value in pairs:
        lines.append(f"  {label:<24} {format_cell(value, 10, precision).strip()}")
    lines.append("")
    return "\n".join(lines)


def print_series(title, pairs, precision: int = 3) -> None:
    print(render_series(title, pairs, precision))
