"""Word-sparsity analysis (Figure 4).

Given WAC's per-word counts, compute the probability that a page has
at most N unique 64B words accessed, on the paper's threshold grid
{4, 8, 16, 32, 48} — i.e. {6.25%, 12.5%, 25%, 50%, 75%} of the 64
words in a 4KB page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.cxl.wac import WordAccessCounter
from repro.memory.address import WORD_SHIFT, WORDS_PER_PAGE
from repro.workloads.wordmap import SPARSITY_THRESHOLDS


@dataclass(frozen=True)
class SparsityProfile:
    """P(page has ≤ N unique words accessed) per threshold."""

    benchmark: str
    probabilities: Dict[int, float]
    pages_observed: int

    def at(self, threshold: int) -> float:
        return self.probabilities[threshold]

    @property
    def mostly_sparse(self) -> bool:
        """The Redis-class criterion: most pages ≤ 25% words touched."""
        return self.probabilities.get(16, 0.0) > 0.5

    @property
    def mostly_dense(self) -> bool:
        """The SPEC-class criterion: ≥75% of words accessed in most
        pages (P(≤48 words) small)."""
        return self.probabilities.get(48, 1.0) < 0.25


def from_wac(
    benchmark: str, wac: WordAccessCounter, min_accesses: int = 1
) -> SparsityProfile:
    """Measure sparsity from a WAC that observed the run.

    ``min_accesses`` filters to pages accessed often enough for their
    word-usage pattern to be observable (see
    :meth:`WordAccessCounter.unique_words_per_page`).
    """
    uniques = wac.unique_words_per_page(min_accesses)
    touched = uniques[uniques > 0]
    probs = {
        n: (float((touched <= n).mean()) if touched.size else 0.0)
        for n in SPARSITY_THRESHOLDS
    }
    return SparsityProfile(
        benchmark=benchmark, probabilities=probs, pages_observed=int(touched.size)
    )


def from_trace(benchmark: str, addresses: np.ndarray) -> SparsityProfile:
    """Measure sparsity directly from a logical/physical trace."""
    pa = np.asarray(addresses, dtype=np.uint64)
    lines = np.unique(pa >> np.uint64(WORD_SHIFT))
    pages, counts = np.unique(lines >> np.uint64(6), return_counts=True)
    counts = np.minimum(counts, WORDS_PER_PAGE)
    probs = {
        n: (float((counts <= n).mean()) if counts.size else 0.0)
        for n in SPARSITY_THRESHOLDS
    }
    return SparsityProfile(
        benchmark=benchmark, probabilities=probs, pages_observed=int(pages.size)
    )


def dense_page_fraction(profile: SparsityProfile) -> float:
    """P(page has at least 75% of its words accessed)."""
    return 1.0 - profile.probabilities.get(48, 0.0)


def figure4_row(profile: SparsityProfile) -> Tuple[float, ...]:
    """The five stacked values of one Figure 4 bar."""
    return tuple(profile.probabilities[n] for n in SPARSITY_THRESHOLDS)
