"""Access-count-ratio analysis (the paper's §4.1 metric).

The metric scores a page-migration solution's hot-page list against
PAC's ground truth: take the K pages the solution identified, sum
their true access counts (``k_access_count``), divide by the summed
counts of the true top-K pages (``top_k_access_count``).  A ratio of
1.0 means the solution found exactly the hottest pages; the paper
measures 0.21 (ANB) and 0.29 (DAMON) on average — warm pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.cxl.pac import PageAccessCounter


@dataclass(frozen=True)
class RatioReport:
    """Access-count-ratio measurement across execution points."""

    benchmark: str
    policy: str
    ratios: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.ratios)) if self.ratios else 0.0

    @property
    def min(self) -> float:
        return float(np.min(self.ratios)) if self.ratios else 0.0

    @property
    def max(self) -> float:
        return float(np.max(self.ratios)) if self.ratios else 0.0


def k_access_count(pac: PageAccessCounter, identified_pfns: Sequence[int]) -> int:
    """§4.1 S4: accumulate PAC counts over the identified PFNs."""
    pfns = np.asarray(list(identified_pfns), dtype=np.int64)
    if pfns.size == 0:
        return 0
    return int(pac.counts_of_pages(pfns).sum())


def ratio(
    pac: PageAccessCounter,
    identified_pfns: Sequence[int],
    k_cap: Optional[int] = None,
) -> float:
    """§4.1 S5: k_access_count / top_k_access_count, K = |identified|.

    Duplicate identifications are collapsed (first occurrence kept)
    before applying the K cap.
    """
    pfns = list(dict.fromkeys(int(p) for p in identified_pfns))
    if k_cap is not None:
        pfns = pfns[: int(k_cap)]
    if not pfns:
        return 0.0
    top = pac.top_k_access_count(len(pfns))
    if top <= 0:
        return 0.0
    return k_access_count(pac, pfns) / top


def tracker_ratio(
    true_counts: Dict[int, int], tracked_keys: Iterable[int], k: int
) -> float:
    """Ratio variant for the §7.1 tracker sweeps: score a tracker's
    top-K keys against exact per-key counts (PAC/WAC ground truth
    given as a dict)."""
    tracked = list(tracked_keys)[: int(k)]
    if not tracked:
        return 0.0
    top = sorted(true_counts.values(), reverse=True)[: len(tracked)]
    denom = sum(top)
    if denom <= 0:
        return 0.0
    num = sum(true_counts.get(int(key), 0) for key in tracked)
    return num / denom


def summarize(
    benchmark: str, policy: str, checkpoint_ratios: Sequence[float]
) -> RatioReport:
    return RatioReport(
        benchmark=benchmark, policy=policy, ratios=tuple(checkpoint_ratios)
    )


def best_cpu_driven(reports: Sequence[RatioReport]) -> RatioReport:
    """Pick the better of ANB/DAMON per benchmark (Figure 8's 'CPU-
    driven Best' bar)."""
    if not reports:
        raise ValueError("no reports given")
    return max(reports, key=lambda r: r.mean)
