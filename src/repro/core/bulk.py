"""Bulk dict-merge kernel shared by the streaming summaries.

The software trackers keep ``{key: count}`` dicts because their
hardware counterparts are CAMs; the batched engine still has to update
those dicts from numpy arrays without a per-key Python loop.  This
module provides the one primitive they all need: add an array of
weights into a count dict, preserving the dict's existing insertion
order (several summaries give insertion order semantics — e.g. Sticky
Sampling consumes RNG draws in dict order at epoch boundaries) and
appending unseen keys in array order.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def merge_counts(
    counts: Dict[int, int], keys: np.ndarray, weights: np.ndarray
) -> Dict[int, int]:
    """Return ``counts`` with ``weights[i]`` added at ``keys[i]``.

    ``keys`` must be unique within the call.  Existing keys keep their
    position in the returned dict; new keys are appended in ``keys``
    order.  Equivalent to ``for k, w in zip(keys, weights):
    counts[k] = counts.get(k, 0) + w`` except for where the *existing*
    hits land (they stay in place rather than being touched last,
    which is what the sequential loop also does — dict assignment to a
    present key never reorders).
    """
    keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
    weights = np.atleast_1d(np.asarray(weights, dtype=np.int64))
    if not counts:
        return dict(zip(keys.tolist(), weights.tolist()))
    ex_keys = np.fromiter(counts.keys(), dtype=np.uint64, count=len(counts))
    ex_vals = np.fromiter(counts.values(), dtype=np.int64, count=len(counts))
    tracked = np.isin(keys, ex_keys)
    hit_keys = keys[tracked]
    if hit_keys.size:
        sorter = np.argsort(ex_keys, kind="stable")
        pos = sorter[np.searchsorted(ex_keys[sorter], hit_keys)]
        ex_vals[pos] += weights[tracked]
    merged = dict(zip(ex_keys.tolist(), ex_vals.tolist()))
    if hit_keys.size != keys.size:
        merged.update(zip(keys[~tracked].tolist(), weights[~tracked].tolist()))
    return merged
