"""Sorted-CAM model: the top-K stage of the M5 trackers.

The sorted CAM (paper §5.1, Figure 5 ④–⑥) holds K (address, count)
pairs ordered by count.  For each observed address with an estimated
count from the CM-Sketch unit:

* **hit** — the matching entry's count is overwritten with the
  estimate;
* **miss** — the estimate is compared against the table minimum and,
  if larger, the minimum entry is replaced.

The software model keeps a dict for O(1) hits and pays an O(K) scan
for the minimum on misses (the hardware does this with a comparator
chain in one cycle).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class SortedCam:
    """K-entry content-addressable top-K table."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = int(k)
        self._entries: Dict[int, int] = {}
        self.hits = 0
        #: Misses that filled a *free* entry (table not yet full).
        self.insertions = 0
        #: Misses that evicted the minimum entry of a full table; the
        #: replacement rate only counts genuine evictions, so inserts
        #: into free entries must not inflate it.
        self.replacements = 0
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: int) -> bool:
        return int(address) in self._entries

    def count_of(self, address: int) -> int:
        return self._entries.get(int(address), 0)

    @property
    def table_min(self) -> int:
        """Smallest tracked count (0 when the table has free entries)."""
        if len(self._entries) < self.k:
            return 0
        return min(self._entries.values())

    def offer(self, address: int, estimate: int) -> bool:
        """Present one (address, estimated count) pair to the CAM.

        Returns True if the address is tracked after the update.
        """
        address = int(address)
        estimate = int(estimate)
        if address in self._entries:
            # Hit: update the count field with the sketch estimate.
            self._entries[address] = estimate
            self.hits += 1
            return True
        if len(self._entries) < self.k:
            self._entries[address] = estimate
            self.insertions += 1
            return True
        # Miss with full table: compare against the minimum entry.
        min_addr = min(self._entries, key=self._entries.__getitem__)
        if estimate > self._entries[min_addr]:
            del self._entries[min_addr]
            self._entries[address] = estimate
            self.replacements += 1
            return True
        self.rejections += 1
        return False

    @property
    def offers(self) -> int:
        """Total :meth:`offer` calls, across every outcome."""
        return self.hits + self.insertions + self.replacements + self.rejections

    @property
    def replacement_rate(self) -> float:
        """Fraction of offers that evicted a full-table minimum."""
        offers = self.offers
        return self.replacements / offers if offers else 0.0

    def entries(self) -> List[Tuple[int, int]]:
        """Tracked (address, count) pairs, hottest first.

        Ties are broken by address for deterministic output; this is
        the answer to an M5-manager query.
        """
        return sorted(self._entries.items(), key=lambda kv: (-kv[1], kv[0]))

    def addresses(self) -> List[int]:
        """Tracked addresses, hottest first."""
        return [addr for addr, _ in self.entries()]

    def reset(self) -> None:
        """Clear the table (done together with the sketch after a query)."""
        self._entries.clear()
