"""Sorted-CAM model: the top-K stage of the M5 trackers.

The sorted CAM (paper §5.1, Figure 5 ④–⑥) holds K (address, count)
pairs ordered by count.  For each observed address with an estimated
count from the CM-Sketch unit:

* **hit** — the matching entry's count is overwritten with the
  estimate;
* **miss** — the estimate is compared against the table minimum and,
  if larger, the minimum entry is replaced.

The software model keeps a dict for O(1) hits and pays an O(K) scan
for the minimum on misses (the hardware does this with a comparator
chain in one cycle).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


class SortedCam:
    """K-entry content-addressable top-K table."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = int(k)
        self._entries: Dict[int, int] = {}
        self.hits = 0
        #: Misses that filled a *free* entry (table not yet full).
        self.insertions = 0
        #: Misses that evicted the minimum entry of a full table; the
        #: replacement rate only counts genuine evictions, so inserts
        #: into free entries must not inflate it.
        self.replacements = 0
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: int) -> bool:
        return int(address) in self._entries

    def count_of(self, address: int) -> int:
        return self._entries.get(int(address), 0)

    @property
    def table_min(self) -> int:
        """Smallest tracked count (0 when the table has free entries)."""
        if len(self._entries) < self.k:
            return 0
        return min(self._entries.values())

    def offer(self, address: int, estimate: int) -> bool:
        """Present one (address, estimated count) pair to the CAM.

        Returns True if the address is tracked after the update.
        """
        address = int(address)
        estimate = int(estimate)
        if address in self._entries:
            # Hit: update the count field with the sketch estimate.
            self._entries[address] = estimate
            self.hits += 1
            return True
        if len(self._entries) < self.k:
            self._entries[address] = estimate
            self.insertions += 1
            return True
        # Miss with full table: compare against the minimum entry.
        min_addr = min(self._entries, key=self._entries.__getitem__)
        if estimate > self._entries[min_addr]:
            del self._entries[min_addr]
            self._entries[address] = estimate
            self.replacements += 1
            return True
        self.rejections += 1
        return False

    def offer_batch(self, addresses: np.ndarray, estimates: np.ndarray) -> int:
        """Present a batch of (address, estimate) pairs, hottest first.

        Exactly equivalent to calling :meth:`offer` once per pair in
        order — same entries, same counts, same dict insertion order
        (which future eviction tie-breaks depend on), same statistics —
        but the bulk of the work is vectorised.  Preconditions, both
        asserted: addresses are distinct within the batch, and
        estimates are non-increasing (the order a tracker's ingest
        produces).

        The sequential semantics split into three regimes:

        1. While the table has free entries no offer can evict, so the
           prefix up to the fill point is a bulk dict update — hits
           overwrite, misses insert in offer order.
        2. With a full table, offers contend while their estimate
           exceeds the table minimum: evictions and hits interleave
           (an early eviction can remove an entry a later offer would
           have hit), so this head is replayed one offer at a time.
        3. Once an offer's estimate is ≤ the table minimum, no later
           offer can evict either (estimates only fall, and a hit in
           this regime can only lower the minimum further), so the
           entire tail collapses to bulk hit-overwrites and counted
           rejections.

        Returns the number of offers tracked after the update.
        """
        addresses = np.atleast_1d(np.asarray(addresses, dtype=np.int64))
        estimates = np.atleast_1d(np.asarray(estimates, dtype=np.int64))
        n = int(addresses.size)
        if n == 0:
            return 0
        assert estimates.size == n
        assert np.all(estimates[:-1] >= estimates[1:]), "estimates must descend"
        tracked = 0

        # --- regime 1: bulk-fill while the table has free entries.
        start = 0
        free = self.k - len(self._entries)
        if free > 0:
            if self._entries:
                existing = np.fromiter(
                    self._entries.keys(), dtype=np.int64, count=len(self._entries)
                )
                is_hit = np.isin(addresses, existing)
            else:
                is_hit = np.zeros(n, dtype=bool)
            miss_pos = np.nonzero(~is_hit)[0]
            # The table fills at the `free`-th miss; everything before
            # that point is a plain hit-or-insert.
            start = n if miss_pos.size < free else int(miss_pos[free - 1]) + 1
            head = slice(0, start)
            self._entries.update(
                zip(addresses[head].tolist(), estimates[head].tolist())
            )
            n_miss = int((~is_hit[head]).sum())
            self.insertions += n_miss
            self.hits += start - n_miss
            tracked += start

        # --- regime 2: contended head, replayed sequentially.
        i = start
        while i < n:
            estimate = int(estimates[i])
            min_addr = min(self._entries, key=self._entries.__getitem__)
            if estimate <= self._entries[min_addr]:
                break
            address = int(addresses[i])
            if address in self._entries:
                self._entries[address] = estimate
                self.hits += 1
            else:
                del self._entries[min_addr]
                self._entries[address] = estimate
                self.replacements += 1
            tracked += 1
            i += 1

        # --- regime 3: bulk tail of hits and rejections.
        if i < n:
            tail = slice(i, n)
            existing = np.fromiter(
                self._entries.keys(), dtype=np.int64, count=len(self._entries)
            )
            is_hit = np.isin(addresses[tail], existing)
            hit_addrs = addresses[tail][is_hit]
            self._entries.update(
                zip(hit_addrs.tolist(), estimates[tail][is_hit].tolist())
            )
            n_hits = int(is_hit.sum())
            self.hits += n_hits
            self.rejections += (n - i) - n_hits
            tracked += n_hits
        return tracked

    @property
    def offers(self) -> int:
        """Total :meth:`offer` calls, across every outcome."""
        return self.hits + self.insertions + self.replacements + self.rejections

    @property
    def replacement_rate(self) -> float:
        """Fraction of offers that evicted a full-table minimum."""
        offers = self.offers
        return self.replacements / offers if offers else 0.0

    def entries(self) -> List[Tuple[int, int]]:
        """Tracked (address, count) pairs, hottest first.

        Ties are broken by address for deterministic output; this is
        the answer to an M5-manager query.
        """
        return sorted(self._entries.items(), key=lambda kv: (-kv[1], kv[0]))

    def addresses(self) -> List[int]:
        """Tracked addresses, hottest first."""
        return [addr for addr, _ in self.entries()]

    def reset(self) -> None:
        """Clear the table (done together with the sketch after a query)."""
        self._entries.clear()
