"""Hot huge pages: the §8 extension of M5.

The paper's benchmarks allocate only 4KB pages, but §8 sketches two
ways to support 2MB huge pages:

1. **aggregation** — derive hot 2MB-page addresses from HPT's hot 4KB
   page addresses, exactly like hot 4KB pages are derived from HWT's
   hot 64B words (§5.2);
2. **a second HPT** configured at 2MB granularity.

Both paths must "consult with the OS to check whether these page
addresses belong to allocated huge pages".  This module implements
path 1 as :class:`HugePageAggregator` (a Nominator-style structure
with a 512-bit occupancy mask per 2MB region) and provides the OS
consultation hook; path 2 falls out of the tracker framework for free
(a :class:`~repro.core.trackers.TopKTracker` keyed by ``PA >> 21``),
provided here as :func:`make_huge_hpt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.trackers import CmSketchTopK, TopKTracker

#: 4KB pages per 2MB huge page.
PAGES_PER_HUGE = 512
#: log2(PAGES_PER_HUGE)
HUGE_SHIFT = 9


@dataclass
class HugeEntry:
    """Aggregated hotness of one 2MB region."""

    hfn: int                       # huge-frame number (PA >> 21)
    count: int = 0                 # accumulated 4KB hot-page counts
    present_pages: set = field(default_factory=set)

    @property
    def occupancy(self) -> int:
        """How many of the 512 constituent 4KB pages were hot."""
        return len(self.present_pages)


class HugePageAggregator:
    """Builds hot-2MB-page candidates from HPT's hot 4KB pages.

    Args:
        is_huge_allocated: the OS consultation hook — returns True when
            the huge-frame number is backed by an actual 2MB mapping
            (pages inside non-huge mappings must migrate at 4KB
            granularity instead).
        min_occupancy: minimum number of hot 4KB pages before a 2MB
            region is nominated (the density guard: promoting a 2MB
            page for one hot 4KB page wastes 511 frames of fast
            memory).
    """

    def __init__(
        self,
        is_huge_allocated: Optional[Callable[[int], bool]] = None,
        min_occupancy: int = 8,
    ) -> None:
        if not 1 <= min_occupancy <= PAGES_PER_HUGE:
            raise ValueError("min_occupancy must be in [1, 512]")
        self.is_huge_allocated = is_huge_allocated or (lambda hfn: True)
        self.min_occupancy = int(min_occupancy)
        self._entries: Dict[int, HugeEntry] = {}
        self.rejected_not_huge = 0

    def update_from_hpt(self, entries: Sequence[Tuple[int, int]]) -> None:
        """Ingest an HPT query: (4KB PFN, estimated count) pairs."""
        for pfn, count in entries:
            hfn = int(pfn) >> HUGE_SHIFT
            entry = self._entries.get(hfn)
            if entry is None:
                entry = self._entries[hfn] = HugeEntry(hfn=hfn)
            entry.count += int(count)
            entry.present_pages.add(int(pfn) & (PAGES_PER_HUGE - 1))

    def nominate(self, limit: Optional[int] = None) -> List[HugeEntry]:
        """Hot 2MB candidates, hottest first, OS-validated.

        Consumes the accumulated state (query-and-reset, like the
        trackers).  Regions failing the OS huge-allocation check or
        the occupancy guard are dropped.
        """
        candidates = []
        for entry in self._entries.values():
            if entry.occupancy < self.min_occupancy:
                continue
            if not self.is_huge_allocated(entry.hfn):
                self.rejected_not_huge += 1
                continue
            candidates.append(entry)
        candidates.sort(key=lambda e: (-e.count, e.hfn))
        self._entries.clear()
        if limit is not None:
            candidates = candidates[: int(limit)]
        return candidates

    @property
    def pending(self) -> int:
        return len(self._entries)


def make_huge_hpt(
    k: int = 16, num_counters: int = 32 * 1024, **kwargs: Any
) -> TopKTracker:
    """§8's alternative: an HPT tracking 2MB page addresses directly.

    Implemented as a CM-Sketch tracker whose keys are ``PA >> 21``;
    reuses the page-granularity machinery with an extra 9-bit shift
    applied to the observed addresses.
    """
    tracker = CmSketchTopK(k, num_counters=num_counters, granularity="page",
                           **kwargs)
    # Re-key: page shift (12) + huge shift (9) = 21 bits.
    tracker._shift = np.uint64(21)
    tracker.granularity = "huge-page"
    return tracker
