"""Sticky Sampling: the sampling-based streaming algorithm family.

The paper's taxonomy of streaming top-K algorithms (§5.1) names three
representatives: Space-Saving (counter-based), CM-Sketch
(sketch-based), and Sticky Sampling (sampling-based).  M5 adopts
CM-Sketch; Sticky Sampling is implemented here so the design-space
exploration can cover all three categories.

Following Manku & Motwani (VLDB '02): an item already tracked is
always counted; a new item is admitted with probability ``1/r``.  The
sampling rate ``r`` doubles at geometrically growing epoch boundaries
(t = 2t), and at each boundary every tracked count is diminished by a
coin-flip process so the summary behaves as if it had been sampled at
the new rate all along.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.bulk import merge_counts


class StickySampling:
    """Sticky-Sampling stream summary.

    Args:
        support: s, the frequency threshold of interest.
        error: ε, permitted estimation error (ε < s).
        failure_prob: δ, probability of exceeding the error bound.
        seed: RNG seed.
    """

    def __init__(
        self,
        support: float = 0.01,
        error: float = 0.001,
        failure_prob: float = 0.01,
        seed: int = 7,
    ) -> None:
        if not 0 < error < support <= 1:
            raise ValueError("need 0 < error < support <= 1")
        if not 0 < failure_prob < 1:
            raise ValueError("failure_prob must be in (0, 1)")
        self.support = float(support)
        self.error = float(error)
        self.failure_prob = float(failure_prob)
        self._rng = np.random.default_rng(seed)
        # 2t elements with rate 1, then 2t with rate 2, 4t rate 4, ...
        self._t = int(np.ceil((1.0 / error) * np.log(1.0 / (support * failure_prob))))
        self._rate = 1
        self._epoch_end = 2 * self._t
        self._counts: Dict[int, int] = {}
        self.items_seen = 0

    @property
    def rate(self) -> int:
        return self._rate

    def __len__(self) -> int:
        return len(self._counts)

    def _advance_epoch(self) -> None:
        self._rate *= 2
        self._epoch_end += self._rate * self._t
        # Diminish each entry: repeatedly toss an unbiased coin until
        # heads, decrementing per tails; drop entries reaching zero.
        survivors: Dict[int, int] = {}
        for addr, count in self._counts.items():
            while count > 0 and self._rng.random() < 0.5:
                count -= 1
            if count > 0:
                survivors[addr] = count
        self._counts = survivors

    def update_one(self, address: int) -> None:
        address = int(address)
        self.items_seen += 1
        if self.items_seen > self._epoch_end:
            self._advance_epoch()
        if address in self._counts:
            self._counts[address] += 1
        elif self._rng.random() < 1.0 / self._rate:
            self._counts[address] = 1

    def update_batch(self, keys: np.ndarray) -> None:
        """Bulk update, exactly equivalent to per-key :meth:`update_one`.

        Batching a sampling algorithm without changing its draws hinges
        on two facts: a *tracked* hit consumes no randomness, and epoch
        boundaries fall at positions fixed by ``items_seen`` alone.  So
        within one epoch window, runs of already-tracked keys collapse
        to a counted array merge, while every untracked-or-boundary key
        replays through :meth:`update_one` so the RNG is consumed at
        its exact sequential position.  Membership only grows inside a
        window (diminishing happens at boundaries), so a stale
        "untracked" flag merely routes a hit through ``update_one``,
        which handles it identically — again without touching the RNG.
        All-unique streams degenerate to the per-key path; the win
        comes from the skewed streams trackers actually see.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        i, n = 0, int(keys.size)
        while i < n:
            room = self._epoch_end - self.items_seen
            if room <= 0:
                # Next item triggers the epoch advance (and its RNG
                # draws); afterwards membership must be re-derived.
                self.update_one(int(keys[i]))
                i += 1
                continue
            window = keys[i:i + room]
            if self._counts:
                tracked_keys = np.fromiter(
                    self._counts.keys(), dtype=np.uint64, count=len(self._counts)
                )
                is_tracked = np.isin(window, tracked_keys)
            else:
                is_tracked = np.zeros(window.size, dtype=bool)
            # Segment the window into alternating tracked/untracked
            # runs once, instead of rescanning after every key.
            flips = np.nonzero(np.diff(is_tracked))[0] + 1
            bounds = [0, *flips.tolist(), int(window.size)]
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if is_tracked[lo]:
                    self._bulk_count(window[lo:hi])
                else:
                    for j in range(lo, hi):
                        self.update_one(int(window[j]))
            i += int(window.size)

    def _bulk_count(self, chunk: np.ndarray) -> None:
        """Count a run of keys that were all tracked at window start.

        Dict insertion order is preserved (the epoch-boundary diminish
        consumes RNG draws in dict order, so order is semantic here):
        counts are merged positionally into the existing key sequence.
        """
        uniq, counts = np.unique(chunk, return_counts=True)
        self._counts = merge_counts(self._counts, uniq, counts)
        self.items_seen += int(chunk.size)

    def update_batch_reference(self, keys: np.ndarray) -> None:
        """Per-key loop :meth:`update_batch` — the differential oracle."""
        for key in np.atleast_1d(np.asarray(keys, dtype=np.uint64)).tolist():
            self.update_one(int(key))

    def estimate_one(self, address: int) -> int:
        return self._counts.get(int(address), 0)

    def top_k(self, k: int) -> List[Tuple[int, int]]:
        items = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return items[: int(k)]

    def addresses(self) -> List[int]:
        return [addr for addr, _ in sorted(
            self._counts.items(), key=lambda kv: (-kv[1], kv[0])
        )]

    def frequent_items(self) -> List[Tuple[int, int]]:
        """Items with estimated frequency ≥ (s − ε)·n (the MM02 answer)."""
        threshold = (self.support - self.error) * self.items_seen
        return [
            (addr, count)
            for addr, count in self.top_k(len(self._counts))
            if count >= threshold
        ]

    def reset(self) -> None:
        self._counts.clear()
        self._rate = 1
        self._epoch_end = 2 * self._t
        self.items_seen = 0
