"""HPT and HWT: the hardware top-K hot-page / hot-word trackers.

A *top-K tracker* (paper §5.1) pairs an access-count estimator with a
K-entry sorted CAM.  HPT keys the stream by PFN (``PA >> 12``); HWT
keys it by 64B word line (``PA >> 6``) — the only difference between
the two, exactly as in the paper ("Both HPT and HWT share the same
architecture and operations, except that they use page and word
addresses").

Three estimator back-ends are provided, covering the streaming-
algorithm taxonomy the paper analyses:

* :class:`CmSketchTopK` — the design M5 adopts;
* :class:`SpaceSavingTopK` — the Mithril-style CAM-only comparison;
* :class:`ExactTopK` — an idealised oracle (PAC-in-the-loop), useful
  as an upper bound and in tests.

All trackers expose ``observe(addresses)`` so they can be attached to
the :class:`~repro.cxl.controller.CxlController` snoop path, and
``query()`` which returns the top-K (key, estimated count) pairs and
resets both units for the next epoch (§5.1: "Both the CM-Sketch unit
and the sorted CAM unit can be reset immediately after the query is
served").
"""

from __future__ import annotations

import abc
from typing import Any, List, Tuple

import numpy as np

from repro.core.bulk import merge_counts
from repro.core.sketch import DEFAULT_DEPTH, CountMinSketch
from repro.core.spacesaving import MisraGries, SpaceSaving
from repro.core.stickysampling import StickySampling
from repro.core.topk import SortedCam
from repro.memory.address import PAGE_SHIFT, WORD_SHIFT

#: Query periods used in the paper's §7.1 sweep.
HPT_QUERY_PERIOD_S = 1e-3
HWT_QUERY_PERIOD_S = 100e-6

#: Timing requirement: one access per tCCD of DDR4-3200 (§5.1).
REQUIRED_FREQUENCY_HZ = 400e6

_GRANULARITY_SHIFT = {"page": PAGE_SHIFT, "word": WORD_SHIFT}


class TopKTracker(abc.ABC):
    """Common shell: address keying, query/reset, statistics."""

    def __init__(
        self, k: int, granularity: str = "page", batched: bool = True
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if granularity not in _GRANULARITY_SHIFT:
            raise ValueError("granularity must be 'page' or 'word'")
        self.k = int(k)
        self.granularity = granularity
        #: Engine selector: True uses the vectorized array kernels,
        #: False the per-access reference loops.  Both are exactly
        #: equivalent (asserted by the kernel oracles in repro.verify).
        self.batched = bool(batched)
        self._shift = np.uint64(_GRANULARITY_SHIFT[granularity])
        self.accesses_observed = 0
        self.queries_served = 0

    def _keys_of(self, addresses: np.ndarray) -> np.ndarray:
        pa = np.atleast_1d(np.asarray(addresses, dtype=np.uint64))
        return pa >> self._shift

    def observe(self, addresses: np.ndarray) -> None:
        """Snoop a batch of physical byte addresses."""
        keys = self._keys_of(addresses)
        if keys.size == 0:
            return
        self.accesses_observed += int(keys.size)
        self._ingest(keys)

    def observe_batch(self, batch: Any) -> None:
        """Snoop a pre-digested :class:`~repro.cxl.batch.AccessBatch`.

        Equivalent to ``observe(batch.addresses)`` but lets trackers
        reuse the batch's memoized ``np.unique`` results instead of
        re-deriving them per snoop.
        """
        if batch.size == 0:
            return
        self.accesses_observed += int(batch.size)
        self._ingest_batch(batch)

    def _ingest_batch(self, batch: Any) -> None:
        # Default: no unique-reuse possible; fall back to raw keys.
        self._ingest(self._keys_of(batch.addresses))

    @abc.abstractmethod
    def _ingest(self, keys: np.ndarray) -> None: ...

    @abc.abstractmethod
    def _snapshot(self) -> List[Tuple[int, int]]: ...

    @abc.abstractmethod
    def _reset_units(self) -> None: ...

    def query(self) -> List[Tuple[int, int]]:
        """Return top-K (key, count) hottest-first and reset for the
        next epoch."""
        result = self._snapshot()
        self._reset_units()
        self.queries_served += 1
        return result

    def peek(self) -> List[Tuple[int, int]]:
        """Non-destructive read of the current top-K."""
        return self._snapshot()


class CmSketchTopK(TopKTracker):
    """The M5 tracker: CM-Sketch estimator + K-entry sorted CAM.

    Args:
        k: CAM entries (top-K).
        num_counters: N = H × W total sketch counters (the §7.1 design
            parameter; paper deploys N = 32K, H = 4).
        depth: H.
        exact_sequence: process accesses one at a time with the exact
            hardware semantics.  The default batched mode updates the
            sketch in bulk and offers each chunk's unique keys to the
            CAM with their post-chunk estimates — the counter state is
            identical and top-K selection matches closely, while
            running orders of magnitude faster in Python.
        conservative: forward CM-Sketch conservative-update option.
    """

    def __init__(
        self,
        k: int,
        num_counters: int = 32 * 1024,
        depth: int = DEFAULT_DEPTH,
        granularity: str = "page",
        exact_sequence: bool = False,
        conservative: bool = False,
        batched: bool = True,
    ) -> None:
        super().__init__(k, granularity, batched=batched)
        if num_counters < depth:
            raise ValueError("num_counters must be >= depth")
        width = max(1, num_counters // depth)
        self.sketch = CountMinSketch(width, depth, conservative=conservative)
        self.cam = SortedCam(k)
        self.exact_sequence = bool(exact_sequence)

    @property
    def num_counters(self) -> int:
        return self.sketch.num_counters

    def _ingest(self, keys: np.ndarray) -> None:
        if self.exact_sequence:
            self._ingest_sequence_reference(keys)
            return
        uniques, counts = np.unique(keys, return_counts=True)
        self._ingest_uniques(uniques, counts)

    def _ingest_batch(self, batch: Any) -> None:
        if self.exact_sequence:
            self._ingest_sequence_reference(self._keys_of(batch.addresses))
            return
        uniques, counts = batch.unique_keys(int(self._shift))
        self._ingest_uniques(uniques, counts)

    def _ingest_uniques(self, uniques: np.ndarray, counts: np.ndarray) -> None:
        self.sketch.update_batch(uniques, counts)
        estimates = self.sketch.estimate(uniques)
        # Offer hottest-first so CAM admission under a full table
        # mirrors what the sequential stream would converge to.
        order = np.argsort(-estimates.astype(np.int64), kind="stable")
        if self.batched:
            self.cam.offer_batch(uniques[order], estimates[order])
        else:
            self._offer_reference(uniques[order], estimates[order])

    def _offer_reference(self, keys: np.ndarray, estimates: np.ndarray) -> None:
        """Per-key CAM offer loop — the differential oracle for
        :meth:`SortedCam.offer_batch`."""
        for key, est in zip(keys.tolist(), estimates.tolist()):
            self.cam.offer(int(key), int(est))

    def _ingest_sequence_reference(self, keys: np.ndarray) -> None:
        """One sketch-update + CAM-offer per access: the exact
        hardware semantics (``exact_sequence=True``)."""
        for key in keys.tolist():
            estimate = self.sketch.update_one(key)
            self.cam.offer(key, estimate)

    def _snapshot(self) -> List[Tuple[int, int]]:
        return self.cam.entries()

    def _reset_units(self) -> None:
        self.sketch.reset()
        self.cam.reset()


class SpaceSavingTopK(TopKTracker):
    """Space-Saving tracker: an N-entry CAM doubling as the estimator.

    The CAM complexity caps N under the 400 MHz constraint (50 on the
    Agilex-7 FPGA, ~2K in 7nm ASIC — see :mod:`repro.core.hwcost`),
    which is the central trade-off of §7.1.
    """

    def __init__(
        self,
        k: int,
        capacity: int = 50,
        granularity: str = "page",
        exact_sequence: bool = False,
        batched: bool = True,
    ) -> None:
        super().__init__(k, granularity, batched=batched)
        if capacity < k:
            raise ValueError("capacity must be >= k")
        self.summary = SpaceSaving(capacity)
        self.exact_sequence = bool(exact_sequence)

    @property
    def capacity(self) -> int:
        return self.summary.capacity

    def _ingest(self, keys: np.ndarray) -> None:
        if self.exact_sequence:
            self._ingest_sequence_reference(keys)
            return
        # Run-length compress the chunk, preserving first-appearance
        # order (weighted Space-Saving).
        uniques, first_pos, counts = np.unique(
            keys, return_index=True, return_counts=True
        )
        order = np.argsort(first_pos, kind="stable")
        self._ingest_uniques(uniques[order], counts[order])

    def _ingest_batch(self, batch: Any) -> None:
        if self.exact_sequence:
            self._ingest_sequence_reference(self._keys_of(batch.addresses))
            return
        uniques, counts = batch.unique_keys_ordered(int(self._shift))
        self._ingest_uniques(uniques, counts)

    def _ingest_uniques(self, uniques: np.ndarray, counts: np.ndarray) -> None:
        if self.batched:
            self.summary.update_batch(uniques, counts)
        else:
            self.summary.update_batch_reference(uniques, counts)

    def _ingest_sequence_reference(self, keys: np.ndarray) -> None:
        """One summary update per access (``exact_sequence=True``)."""
        for key in keys.tolist():
            self.summary.update_one(int(key))

    def _snapshot(self) -> List[Tuple[int, int]]:
        return self.summary.top_k(self.k)

    def _reset_units(self) -> None:
        self.summary.reset()


class MisraGriesTopK(SpaceSavingTopK):
    """Misra–Gries tracker: the decrement-on-miss CAM variant.

    Mithril-family Row-Hammer trackers use this scheme; included as
    the counter-based design point that *under*estimates instead of
    overestimating.
    """

    def __init__(
        self,
        k: int,
        capacity: int = 50,
        granularity: str = "page",
        exact_sequence: bool = False,
        batched: bool = True,
    ) -> None:
        super().__init__(k, capacity=capacity, granularity=granularity,
                         exact_sequence=exact_sequence, batched=batched)
        self.summary = MisraGries(capacity)


class StickySamplingTopK(TopKTracker):
    """Sticky-Sampling tracker: the sampling-based design point of the
    paper's streaming-algorithm taxonomy (§5.1).

    Hardware-wise this would be a CAM of sampled addresses plus an
    LFSR for the admission coin; preciseness hinges on the sampling
    rate, which grows with stream length.
    """

    def __init__(
        self,
        k: int,
        support: float = 0.001,
        error: float = 0.0002,
        granularity: str = "page",
        seed: int = 5,
        batched: bool = True,
    ) -> None:
        super().__init__(k, granularity, batched=batched)
        self.summary = StickySampling(support=support, error=error, seed=seed)

    def _ingest(self, keys: np.ndarray) -> None:
        # No _ingest_batch override: sampling admission depends on key
        # order and RNG position, so the raw key stream is required.
        if self.batched:
            self.summary.update_batch(keys)
        else:
            self.summary.update_batch_reference(keys)

    def _snapshot(self) -> List[Tuple[int, int]]:
        return self.summary.top_k(self.k)

    def _reset_units(self) -> None:
        self.summary.reset()


class ExactTopK(TopKTracker):
    """Oracle tracker keeping exact counts for every key (PAC-grade).

    Not realisable in tracker hardware at scale (that is PAC's offline
    role); used as an upper bound and for differential testing.
    """

    def __init__(
        self, k: int, granularity: str = "page", batched: bool = True
    ) -> None:
        super().__init__(k, granularity, batched=batched)
        self._counts: dict = {}

    def _ingest(self, keys: np.ndarray) -> None:
        uniques, counts = np.unique(keys, return_counts=True)
        self._ingest_uniques(uniques, counts)

    def _ingest_batch(self, batch: Any) -> None:
        self._ingest_uniques(*batch.unique_keys(int(self._shift)))

    def _ingest_uniques(self, uniques: np.ndarray, counts: np.ndarray) -> None:
        if self.batched:
            self._counts = merge_counts(self._counts, uniques, counts)
        else:
            self._ingest_uniques_reference(uniques, counts)

    def _ingest_uniques_reference(
        self, uniques: np.ndarray, counts: np.ndarray
    ) -> None:
        for key, count in zip(uniques.tolist(), counts.tolist()):
            self._counts[int(key)] = self._counts.get(int(key), 0) + int(count)

    def _snapshot(self) -> List[Tuple[int, int]]:
        items = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return items[: self.k]

    def _reset_units(self) -> None:
        self._counts.clear()


def make_hpt(
    k: int = 5,
    algorithm: str = "cm-sketch",
    num_counters: int = 32 * 1024,
    **kwargs: Any,
) -> TopKTracker:
    """Build a Hot-Page Tracker with the paper's defaults."""
    return _make(k, algorithm, num_counters, granularity="page", **kwargs)


def make_hwt(
    k: int = 5,
    algorithm: str = "cm-sketch",
    num_counters: int = 32 * 1024,
    **kwargs: Any,
) -> TopKTracker:
    """Build a Hot-Word Tracker with the paper's defaults."""
    return _make(k, algorithm, num_counters, granularity="word", **kwargs)


def _make(
    k: int,
    algorithm: str,
    num_counters: int,
    granularity: str,
    **kwargs: Any,
) -> TopKTracker:
    if algorithm == "cm-sketch":
        return CmSketchTopK(
            k, num_counters=num_counters, granularity=granularity, **kwargs
        )
    if algorithm == "space-saving":
        return SpaceSavingTopK(
            k, capacity=num_counters, granularity=granularity, **kwargs
        )
    if algorithm == "misra-gries":
        return MisraGriesTopK(
            k, capacity=num_counters, granularity=granularity, **kwargs
        )
    if algorithm == "sticky-sampling":
        return StickySamplingTopK(k, granularity=granularity, **kwargs)
    if algorithm == "exact":
        return ExactTopK(k, granularity=granularity, **kwargs)
    raise ValueError(f"unknown tracker algorithm {algorithm!r}")
