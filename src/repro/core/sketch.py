"""CountMin-Sketch: the access-count estimator inside HPT/HWT.

The paper's top-K tracker (§5.1, Figure 5) couples an SRAM CM-Sketch
unit — H rows × W columns of counters, one hash function per row —
with a small sorted CAM holding the top-K addresses.  On every memory
access the address is hashed by all H functions in parallel, the H
indexed counters are incremented, and the minimum of the incremented
values becomes the estimated access count.

Two update paths are provided:

* :meth:`update_one` — the exact per-access hardware semantics, used
  by the tests and by small-trace experiments;
* :meth:`update_batch` — a vectorised bulk path that adds whole
  chunks of the address stream at once (identical final counter state;
  estimates differ from the sequential path only transiently).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

#: Default geometry: paper fixes H=4 for Table 4 and reports sweeping
#: H in [2, 16] has only a secondary effect (§7.1).
DEFAULT_DEPTH = 4

# Large odd 64-bit multipliers for multiply-shift hashing, one per row
# (fixed so runs are reproducible; any odd constants work).
_HASH_MULTIPLIERS = np.array(
    [
        0x9E3779B97F4A7C15,
        0xC2B2AE3D27D4EB4F,
        0x165667B19E3779F9,
        0xD6E8FEB86659FD93,
        0xA0761D6478BD642F,
        0xE7037ED1A0B428DB,
        0x8EBC6AF09C88C6E3,
        0x589965CC75374CC3,
        0x1D8E4E27C47D124F,
        0xEB44ACCAB455D165,
        0x9C6E6B36A1D3C6A9,
        0x936F52E88D16F5C5,
        0x6D7BC9A3C79E9F2B,
        0xB2E359B57F62C383,
        0xF3C9D2D35C1B9B4D,
        0xC5F5D9A968C9E2A3,
    ],
    dtype=np.uint64,
)


class CountMinSketch:
    """H×W counter array with per-row multiply-shift hashing.

    Args:
        width: W, counters per row; rounded up to a power of two so the
            row index is a mask (what the RTL does).
        depth: H, number of rows/hash functions.
        conservative: if True, use conservative update (only the
            minimum counters are incremented).  The paper's hardware
            uses the plain update; conservative update is provided as a
            design-space extension.
    """

    def __init__(self, width: int, depth: int = DEFAULT_DEPTH, conservative: bool = False) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if not 1 <= depth <= len(_HASH_MULTIPLIERS):
            raise ValueError(f"depth must be in [1, {len(_HASH_MULTIPLIERS)}]")
        self.width = 1 << int(np.ceil(np.log2(width)))
        self.depth = int(depth)
        self.conservative = bool(conservative)
        self._shift = np.uint64(64 - int(np.log2(self.width)))
        self._mults = _HASH_MULTIPLIERS[: self.depth].reshape(-1, 1)
        self.table = np.zeros((self.depth, self.width), dtype=np.uint64)
        self.items_seen = 0

    @property
    def num_counters(self) -> int:
        """N = H × W, the design parameter swept in §7.1."""
        return self.depth * self.width

    def _hash(self, keys: np.ndarray) -> np.ndarray:
        """Row indices for each key; shape (depth, len(keys))."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        with np.errstate(over="ignore"):
            return ((keys[None, :] * self._mults) >> self._shift).astype(np.int64)

    def update_one(self, key: int) -> int:
        """Exact hardware semantics: increment and return the estimate.

        Returns the minimum of the H incremented counters — the value
        handed to the sorted CAM (Figure 5 ③).
        """
        idx = self._hash(np.uint64(key))[:, 0]
        rows = np.arange(self.depth)
        if self.conservative:
            current = self.table[rows, idx]
            minimum = current.min()
            bump = current == minimum
            self.table[rows[bump], idx[bump]] += np.uint64(1)
            estimate = int(minimum) + 1
        else:
            self.table[rows, idx] += np.uint64(1)
            estimate = int(self.table[rows, idx].min())
        self.items_seen += 1
        return estimate

    def update_batch(self, keys: np.ndarray, weights: np.ndarray = None) -> None:
        """Add a chunk of keys (optionally weighted) to all rows."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if keys.size == 0:
            return
        idx = self._hash(keys)
        if weights is None:
            w = np.ones(keys.size, dtype=np.uint64)
        else:
            w = np.asarray(weights, dtype=np.uint64)
            if w.shape != keys.shape:
                raise ValueError("weights shape must match keys")
        for row in range(self.depth):
            np.add.at(self.table[row], idx[row], w)
        self.items_seen += int(w.sum())

    def estimate(self, keys: ArrayLike) -> np.ndarray:
        """Point-query estimates (min over rows) for one or more keys."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        idx = self._hash(keys)
        rows = self.table[np.arange(self.depth)[:, None], idx]
        return rows.min(axis=0)

    def estimate_one(self, key: int) -> int:
        return int(self.estimate(np.uint64(key))[0])

    def reset(self) -> None:
        """Clear all counters (done after each top-K query epoch)."""
        self.table[:] = 0
        self.items_seen = 0

    def error_bound(self, confidence_scale: float = np.e) -> float:
        """Classic CM-Sketch overestimate bound εN with ε = e/W."""
        return confidence_scale / self.width * self.items_seen
