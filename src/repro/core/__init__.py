"""M5 core: streaming top-K trackers (HPT/HWT), their hardware cost
model, and the M5-manager policy stack."""

from repro.core.sketch import CountMinSketch
from repro.core.spacesaving import MisraGries, SpaceSaving
from repro.core.stickysampling import StickySampling
from repro.core.topk import SortedCam
from repro.core.trackers import (
    CmSketchTopK,
    ExactTopK,
    MisraGriesTopK,
    SpaceSavingTopK,
    StickySamplingTopK,
    TopKTracker,
    make_hpt,
    make_hwt,
)
from repro.core.hugepage import HugeEntry, HugePageAggregator, make_huge_hpt
from repro.core import hwcost
from repro.core.manager import (
    Elector,
    M5Manager,
    Monitor,
    Nominator,
    Promoter,
    power_fscale,
)

__all__ = [
    "CountMinSketch",
    "MisraGries",
    "SpaceSaving",
    "StickySampling",
    "SortedCam",
    "CmSketchTopK",
    "ExactTopK",
    "MisraGriesTopK",
    "SpaceSavingTopK",
    "StickySamplingTopK",
    "TopKTracker",
    "make_hpt",
    "make_hwt",
    "HugeEntry",
    "HugePageAggregator",
    "make_huge_hpt",
    "hwcost",
    "Elector",
    "M5Manager",
    "Monitor",
    "Nominator",
    "Promoter",
    "power_fscale",
]
