"""Elector: the migration policy loop of M5-manager (paper §5.2 ③,
Algorithm 1).

Each iteration:

1. compute the period ``T = 1 / (fscale(bw_den(CXL)/bw_den(DDR)) *
   f_default)`` — migration runs more often when CXL DRAM holds more
   bandwidth per page than DDR DRAM (Guideline 1);
2. compute ``rel_bw_den(DDR) = bw_den(DDR) / bw_tot``; if it increased
   since the previous period, the previous migrations helped, so keep
   migrating (Guideline 2) — otherwise skip this period;
3. sleep T.

``fscale`` may be any monotonically increasing function; the paper
suggests ``y = x**n`` or ``y = n * exp(x)`` with tunable n and uses
``x**n`` with n in 3..6 for the evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.manager.monitor import MonitorSample
from repro.memory.tiers import NodeKind


class _PowerFscale:
    """``y = x**n`` as a picklable callable (checkpoints carry the
    Elector, so its fscale cannot be a closure)."""

    __slots__ = ("n",)

    def __init__(self, n: float) -> None:
        self.n = n

    def __call__(self, x: float) -> float:
        if x <= 0:
            return 0.0
        if math.isinf(x):
            return float("inf")
        return x**self.n


class _ExpFscale:
    """``y = n * exp(x)`` as a picklable callable."""

    __slots__ = ("n",)

    def __init__(self, n: float) -> None:
        self.n = n

    def __call__(self, x: float) -> float:
        if math.isinf(x):
            return float("inf")
        return self.n * math.exp(x)


def power_fscale(n: float = 4.0) -> Callable[[float], float]:
    """The paper's evaluation choice: ``y = x**n`` (n in 3..6)."""
    if n <= 0:
        raise ValueError("exponent must be positive")
    return _PowerFscale(n)


def exp_fscale(n: float = 1.0) -> Callable[[float], float]:
    """The alternative shape mentioned in §5.2: ``y = n * exp(x)``."""
    if n <= 0:
        raise ValueError("scale must be positive")
    return _ExpFscale(n)


@dataclass
class ElectorDecision:
    """Outcome of one Elector evaluation."""

    migrate: bool
    period_s: float
    rel_bw_den_ddr: float
    bw_den_ratio: float


class Elector:
    """Algorithm 1 as a discrete-time policy object.

    Instead of sleeping, the simulator calls :meth:`step` with the
    current time and the epoch's Monitor sample; Elector internally
    tracks when its next evaluation is due.

    Args:
        f_default: base migration frequency in Hz (paper tries 1).
        fscale: monotonic scaling function (default ``x**4``).
        min_period_s / max_period_s: clamp for T, so a cold start
            (bw_den ratio = inf) maps to the fastest allowed cadence.
        always_first: migrate unconditionally on the first evaluation
            (there is no previous ``rel_bw_den`` to compare against).
    """

    def __init__(
        self,
        f_default: float = 1.0,
        fscale: Optional[Callable[[float], float]] = None,
        min_period_s: float = 1e-3,
        max_period_s: float = 10.0,
        always_first: bool = True,
        improvement_epsilon: float = 1e-2,
    ) -> None:
        if f_default <= 0:
            raise ValueError("f_default must be positive")
        if not 0 < min_period_s <= max_period_s:
            raise ValueError("need 0 < min_period_s <= max_period_s")
        self.f_default = float(f_default)
        self.fscale = fscale if fscale is not None else power_fscale(4.0)
        self.min_period_s = float(min_period_s)
        self.max_period_s = float(max_period_s)
        self.always_first = bool(always_first)
        #: Minimum rise in rel_bw_den / bw-share that counts as an
        #: improvement.  Bandwidth counters sampled over short windows
        #: are noisy; without a dead band the > 0 tests of Algorithm 1
        #: fire on noise about half the time, and the manager keeps
        #: churning pages in steady state.
        self.improvement_epsilon = float(improvement_epsilon)
        self._prev_rel_bw_den: Optional[float] = None
        self._prev_bw_share = 0.0
        self._next_due_s = 0.0
        self.evaluations = 0
        self.migrations_triggered = 0

    def period_for(self, sample: MonitorSample) -> float:
        """T from Algorithm 1 line 2, clamped to the configured range."""
        scale = self.fscale(sample.bw_den_ratio())
        if scale <= 0:
            return self.max_period_s
        if math.isinf(scale):
            return self.min_period_s
        period = 1.0 / (scale * self.f_default)
        return min(max(period, self.min_period_s), self.max_period_s)

    def due(self, now_s: float) -> bool:
        """Is the next Algorithm 1 iteration due at ``now_s``?"""
        return now_s >= self._next_due_s

    def step(self, now_s: float, sample: MonitorSample) -> Optional[ElectorDecision]:
        """Run one Algorithm 1 iteration if due; None when sleeping."""
        if not self.due(now_s):
            return None
        self.evaluations += 1
        rel = sample.rel_bw_den(NodeKind.DDR)
        total = sample.bw_tot
        bw_share = sample.bw_ddr / total if total else 0.0
        if self._prev_rel_bw_den is None:
            migrate = self.always_first
        else:
            # Migrate when any of the paper's conditions holds:
            #  * Algorithm 1 line 6 — rel_bw_den(DDR) rose, i.e. the
            #    previous batch increased DDR's bandwidth density
            #    share;
            #  * Guideline 1 — CXL DRAM still holds more bandwidth per
            #    page than DDR DRAM ("as soon and aggressively as
            #    possible");
            #  * Guideline 2 — bw(DDR) keeps increasing (tracked as
            #    its phase-robust share of total bandwidth), "even if
            #    bw_den(DDR) exceeds bw_den(CXL)".
            # While DDR still has free frames, promotion costs no
            # demotion and is pure gain; the paper's methodology
            # likewise fills the DDR allowance before the demote-one-
            # per-promote regime starts (§7).  Migration stops only
            # when no condition fires — the churn regime where DDR is
            # full and swaps no longer raise its share.
            eps = self.improvement_epsilon
            migrate = (
                sample.ddr_free_pages > 0
                or rel - self._prev_rel_bw_den > eps
                or sample.bw_den_ratio() > 1.0
                or bw_share - self._prev_bw_share > eps
            )
        self._prev_rel_bw_den = rel
        self._prev_bw_share = bw_share
        period = self.period_for(sample)
        self._next_due_s = now_s + period
        if migrate:
            self.migrations_triggered += 1
        return ElectorDecision(
            migrate=migrate,
            period_s=period,
            rel_bw_den_ddr=rel,
            bw_den_ratio=sample.bw_den_ratio(),
        )

    def reset(self) -> None:
        self._prev_rel_bw_den = None
        self._prev_bw_share = 0.0
        self._next_due_s = 0.0
        self.evaluations = 0
        self.migrations_triggered = 0
