"""Monitor: the statistics front-end of M5-manager (paper §5.2 ①).

Monitor publishes the three Table 1 functions — ``nr_pages(node)``,
``bw(node)``, ``bw_den(node)`` — plus the derived quantities Elector's
Algorithm 1 consumes (``bw_tot`` and ``rel_bw_den``).  On the real
system these come from ``/proc/zoneinfo`` and ``pcm``; here they bind
to the tiered-memory model, which accounts exactly the same
information (read accesses per node per epoch and page occupancy).

Only *read* bandwidth is reported, matching the paper's argument that
LLC-missing writes first appear as reads under write-allocate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.tiers import NodeKind, TieredMemory


@dataclass(frozen=True)
class MonitorSample:
    """One epoch's worth of Monitor statistics."""

    nr_pages_ddr: int
    nr_pages_cxl: int
    bw_ddr: float
    bw_cxl: float
    #: Free DDR frames (from /proc/zoneinfo's free counts): while DDR
    #: has unused capacity, promoting any hot page is pure gain.
    ddr_free_pages: int = 0

    @property
    def bw_tot(self) -> float:
        """Total consumed bandwidth (Algorithm 1 line 4); a proxy for
        application performance in a given phase (§5.2)."""
        return self.bw_ddr + self.bw_cxl

    def bw_den(self, node: NodeKind) -> float:
        """bw(node) / nr_pages(node), in bytes/sec per page."""
        if node is NodeKind.DDR:
            pages, bw = self.nr_pages_ddr, self.bw_ddr
        else:
            pages, bw = self.nr_pages_cxl, self.bw_cxl
        return bw / pages if pages else 0.0

    def rel_bw_den(self, node: NodeKind) -> float:
        """bw_den(node) / bw_tot (Algorithm 1 line 5) — normalising by
        total bandwidth cancels execution-phase intensity changes."""
        total = self.bw_tot
        return self.bw_den(node) / total if total else 0.0

    def bw_den_ratio(self) -> float:
        """bw_den(CXL) / bw_den(DDR), the input to fscale().

        When DDR holds no pages yet (cold start, everything on CXL)
        the ratio is treated as maximal so migration starts as
        aggressively as possible (Guideline 1).
        """
        ddr = self.bw_den(NodeKind.DDR)
        cxl = self.bw_den(NodeKind.CXL)
        if ddr == 0.0:
            return float("inf") if cxl > 0.0 else 1.0
        return cxl / ddr


class Monitor:
    """Samples the tiered-memory statistics once per epoch."""

    def __init__(self, memory: TieredMemory) -> None:
        self.memory = memory
        self.history: list = []

    def sample(self) -> MonitorSample:
        """Capture this epoch's statistics and append to history."""
        s = MonitorSample(
            nr_pages_ddr=self.memory.nr_pages(NodeKind.DDR),
            nr_pages_cxl=self.memory.nr_pages(NodeKind.CXL),
            bw_ddr=self.memory.bw(NodeKind.DDR),
            bw_cxl=self.memory.bw(NodeKind.CXL),
            ddr_free_pages=self.memory.ddr.free_pages,
        )
        self.history.append(s)
        return s

    @property
    def last(self) -> MonitorSample:
        if not self.history:
            raise RuntimeError("no samples collected yet")
        return self.history[-1]

    def nr_pages(self, node: NodeKind) -> int:
        return self.last.nr_pages_ddr if node is NodeKind.DDR else self.last.nr_pages_cxl

    def bw(self, node: NodeKind) -> float:
        return self.last.bw_ddr if node is NodeKind.DDR else self.last.bw_cxl

    def bw_den(self, node: NodeKind) -> float:
        return self.last.bw_den(node)
