"""M5-manager (paper §5.2): Monitor, Nominator, Elector, Promoter."""

from repro.core.manager.autotune import AdaptiveElector
from repro.core.manager.elector import (
    Elector,
    ElectorDecision,
    exp_fscale,
    power_fscale,
)
from repro.core.manager.manager import M5Manager, ManagerStepResult
from repro.core.manager.monitor import Monitor, MonitorSample
from repro.core.manager.nominator import (
    HPT_DRIVEN,
    HPT_ONLY,
    HWT_DRIVEN,
    MODES,
    HpaEntry,
    Nomination,
    Nominator,
)
from repro.core.manager.promoter import ProcFile, PromotionReport, Promoter

__all__ = [
    "AdaptiveElector",
    "Elector",
    "ElectorDecision",
    "exp_fscale",
    "power_fscale",
    "M5Manager",
    "ManagerStepResult",
    "Monitor",
    "MonitorSample",
    "HPT_DRIVEN",
    "HPT_ONLY",
    "HWT_DRIVEN",
    "MODES",
    "HpaEntry",
    "Nomination",
    "Nominator",
    "ProcFile",
    "PromotionReport",
    "Promoter",
]
