"""Adaptive Elector tuning: the future work the paper scopes out.

§7 notes the evaluation does "not use any adaptive algorithm to
determine f_default for a given benchmark (i.e., out of our intended
scope)" — the authors hand-pick n and f_default per benchmark.  This
module implements that adaptive algorithm: a multiplicative-
increase / multiplicative-decrease controller over ``f_default``,
driven by the same signal Algorithm 1 already trusts — whether recent
migration raised DDR's share of consumed bandwidth.

* When triggered migrations are followed by a rising DDR bandwidth
  share, migration is paying off → raise the frequency.
* When migrations happen but the share stalls, the manager is churning
  → lower the frequency (toward letting the dead band stop it).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.manager.elector import Elector, ElectorDecision
from repro.core.manager.monitor import MonitorSample


class AdaptiveElector(Elector):
    """Elector with MIMD self-tuning of ``f_default``.

    Args:
        f_min / f_max: clamp for the tuned frequency.
        increase / decrease: multiplicative step factors.
        kwargs: forwarded to :class:`Elector`.
    """

    def __init__(
        self,
        f_default: float = 1.0,
        f_min: float = 0.1,
        f_max: float = 16.0,
        increase: float = 1.5,
        decrease: float = 0.67,
        **kwargs: Any,
    ) -> None:
        super().__init__(f_default=f_default, **kwargs)
        if not 0 < f_min <= f_default <= f_max:
            raise ValueError("need 0 < f_min <= f_default <= f_max")
        if increase <= 1.0 or not 0 < decrease < 1.0:
            raise ValueError("increase must be >1, decrease in (0, 1)")
        self.f_min = float(f_min)
        self.f_max = float(f_max)
        self.increase = float(increase)
        self.decrease = float(decrease)
        self._migrated_last_period = False
        self._share_before_migration = 0.0
        self.adjustments_up = 0
        self.adjustments_down = 0

    def step(
        self, now_s: float, sample: MonitorSample
    ) -> Optional[ElectorDecision]:
        total = sample.bw_tot
        share = sample.bw_ddr / total if total else 0.0
        if self._migrated_last_period:
            # Judge the previous period's migrations by their effect.
            if share - self._share_before_migration > self.improvement_epsilon:
                self.f_default = min(self.f_default * self.increase, self.f_max)
                self.adjustments_up += 1
            else:
                self.f_default = max(self.f_default * self.decrease, self.f_min)
                self.adjustments_down += 1
            self._migrated_last_period = False
        decision = super().step(now_s, sample)
        if decision is not None and decision.migrate:
            self._migrated_last_period = True
            self._share_before_migration = share
        return decision

    def reset(self) -> None:
        super().reset()
        self._migrated_last_period = False
        self._share_before_migration = 0.0
        self.adjustments_up = 0
        self.adjustments_down = 0
