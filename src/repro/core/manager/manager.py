"""M5Manager: the facade wiring Monitor, Nominator, Elector, and
Promoter together (paper Figure 6).

The manager is almost entirely user-space (only Promoter's worker is
in-kernel), so its CPU cost is a handful of MMIO reads plus a little
list processing per Elector period — the "virtually no performance
cost" property that lets M5 beat ANB/DAMON even when the selected
pages are comparable (§7.2, Redis discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.baselines.base import EpochView, PolicyDecision
from repro.core.manager.elector import Elector, ElectorDecision
from repro.core.manager.monitor import Monitor
from repro.core.manager.nominator import HPT_ONLY, Nominator
from repro.core.manager.promoter import Promoter
from repro.core.trackers import TopKTracker
from repro.memory.migration import MigrationEngine
from repro.memory.tiers import TieredMemory

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: CPU time for one manager activation: query both trackers over MMIO
#: (K entries each), update _HPA/_HWA, and write the proc file.  A few
#: microseconds — deliberately tiny next to ANB/DAMON's scanning.
MANAGER_ACTIVATION_US = 5.0


@dataclass
class ManagerStepResult:
    """Everything that happened in one manager step."""

    decision: Optional[ElectorDecision]
    nominated: int = 0
    promoted: int = 0
    #: Pages queued into the async migration subsystem (async mode).
    enqueued: int = 0
    overhead_us: float = 0.0


class M5Manager:
    """User-space page-migration manager driving HPT/HWT.

    Args:
        memory: the tiered-memory system being managed.
        engine: migration engine (owns MGLRU demotion).
        hpt: Hot-Page Tracker (required).
        hwt: Hot-Word Tracker (optional; required by the HPT-driven
            and HWT-driven Nominator modes).
        nominator: candidate-selection mechanism.
        elector: Algorithm 1 policy (default parameters if omitted).
        batch_limit: maximum pages promoted per activation.
        async_engine: optional
            :class:`~repro.migration.engine.AsyncMigrationEngine`;
            when set, Promoter feeds its bounded queue instead of
            migrating instantly.
        metrics: optional
            :class:`~repro.obs.metrics.MetricsRegistry`; the manager
            registers activation/nomination/promotion counters and
            Elector-period / proc-file gauges into it (no-op when the
            registry is disabled).
    """

    def __init__(
        self,
        memory: TieredMemory,
        engine: MigrationEngine,
        hpt: TopKTracker,
        hwt: Optional[TopKTracker] = None,
        nominator: Optional[Nominator] = None,
        elector: Optional[Elector] = None,
        batch_limit: Optional[int] = None,
        dry_run: bool = False,
        async_engine: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        #: EpochPolicy identifier; the Simulation overwrites it with
        #: the concrete registry name (m5-hpt / m5-hwt / m5-hpt+hwt).
        self.name = "m5"
        self.memory = memory
        self.monitor = Monitor(memory)
        self.nominator = nominator if nominator is not None else Nominator(HPT_ONLY)
        self.elector = elector if elector is not None else Elector()
        self.promoter = Promoter(memory, engine, async_engine=async_engine)
        self.hpt = hpt
        self.hwt = hwt
        if self.nominator.mode != HPT_ONLY and hwt is None:
            raise ValueError(f"nominator mode {self.nominator.mode!r} needs an HWT")
        self.batch_limit = batch_limit
        #: dry_run nominates (for access-count-ratio scoring) but never
        #: promotes — the §4.1 S1 "do not migrate" instrumentation mode.
        self.dry_run = bool(dry_run)
        self.cpu_overhead_us = 0.0
        # Accumulated record of every page the manager nominated, for
        # the access-count-ratio evaluation (§7.2, Figure 8).
        self.nominated_history: list = []
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry(enabled=False)
        self._m_activations = metrics.counter(
            "manager_activations_total",
            "Elector activations (tracker queries over MMIO)",
        )
        self._m_nominated = metrics.counter(
            "manager_nominations_total", "Pages nominated for promotion"
        )
        self._m_promoted = metrics.counter(
            "manager_promoted_total", "Pages the Promoter moved to DDR"
        )
        self._m_enqueued = metrics.counter(
            "manager_enqueued_total",
            "Pages the Promoter handed to the async migration queue",
        )
        self._m_period = metrics.gauge(
            "elector_period_seconds", "Elector's most recent period T"
        )
        self._m_proc_pending = metrics.gauge(
            "promoter_procfile_pending", "PFNs buffered in the proc file"
        )
        self._m_proc_dropped = metrics.gauge(
            "promoter_procfile_dropped_total",
            "PFNs truncated by the bounded proc file",
        )

    def step(self, now_s: float) -> ManagerStepResult:
        """Run one epoch: sample Monitor, maybe run Algorithm 1 body.

        Call after the epoch's memory traffic has been applied to the
        tiered-memory counters.
        """
        sample = self.monitor.sample()
        decision = self.elector.step(now_s, sample)
        result = ManagerStepResult(decision=decision)
        if decision is None:
            return result
        self._m_activations.inc()
        self._m_period.set(decision.period_s)
        # An activation queries the trackers regardless of the migrate
        # verdict (the query itself resets them for the next window).
        self.nominator.update_from_hpt(self.hpt.query())
        if self.hwt is not None:
            self.nominator.update_from_hwt(self.hwt.query())
        result.overhead_us = MANAGER_ACTIVATION_US
        self.cpu_overhead_us += MANAGER_ACTIVATION_US
        # In dry-run (identification-only) mode the Algorithm 1
        # feedback signal is frozen — nothing migrates, so
        # rel_bw_den(DDR) never moves — hence every activation
        # nominates, matching the paper's Figure 8 methodology where
        # the trackers are "queried at rates determined by Elector".
        if decision.migrate or self.dry_run:
            nomination = self.nominator.nominate(limit=self.batch_limit)
            result.nominated = len(nomination.pfns)
            self.nominated_history.extend(nomination.pfns)
            self._m_nominated.inc(result.nominated)
            if nomination.pfns and not self.dry_run:
                report = self.promoter.promote(nomination.pfns)
                result.promoted = report.promoted
                result.enqueued = report.enqueued
                self._m_promoted.inc(result.promoted)
                self._m_enqueued.inc(result.enqueued)
        self._m_proc_pending.set(len(self.promoter.proc_file.pending))
        self._m_proc_dropped.set(self.promoter.proc_file.dropped)
        return result

    # ------------------------------------------------------------------
    # EpochPolicy protocol (the simulation engine's pipeline interface)

    def on_epoch(self, view: EpochView) -> PolicyDecision:
        """One pipeline epoch: run :meth:`step` against the view's
        clock.  Promotions go through the in-kernel Promoter inside
        the step (M5's migration path, §5.2 ④), so the decision
        reports them as already applied instead of returning
        candidates for the engine."""
        step = self.step(view.now_s)
        return PolicyDecision(
            overhead_us=step.overhead_us,
            nominated=step.nominated,
            promoted=step.promoted,
        )

    def demotion_victims(self, view: EpochView) -> np.ndarray:
        """M5 has no proactive demotion: the kernel evicts an MGLRU
        victim per promotion once DDR fills (handled by the engine)."""
        return np.empty(0, dtype=np.int64)

    @property
    def hot_pfns(self) -> List[int]:
        """The accumulated nomination record, as the §4.1 hot-page
        list (PFNs in first-nomination order)."""
        return list(self.nominated_history)

    def overhead_events(self) -> Dict[str, float]:
        """Per-event CPU cost breakdown (µs)."""
        if self.cpu_overhead_us <= 0.0:
            return {}
        return {"manager_activation": self.cpu_overhead_us}
