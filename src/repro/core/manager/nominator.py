"""Nominator: turning HPT/HWT output into migration candidates
(paper §5.2 ②).

Nominator maintains two structures fed by the trackers' D2H updates:

* ``_HPA`` — hot-page entries: PFN, access count, and a 64-bit word
  mask whose bits mark which of the page's 64 words were observed hot;
* ``_HWA`` — hot-word addresses (64B line indices) with counts.

Three nomination mechanisms are provided:

* **HPT-only** — nominate straight from the hot-page list;
* **HPT-driven** — take HPT's pages, then mark each page's mask bits
  from the hot words that fall inside it; a policy can then prefer
  dense pages (Guideline 3: good for mixed dense/sparse apps such as
  roms and liblinear);
* **HWT-driven** — ignore HPT, build ``_HPA`` purely from hot-word
  addresses; the mask doubles as the access count (Guideline 4: good
  for sparse-only apps such as Redis and CacheLib).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memory.address import WORDS_PER_PAGE_SHIFT, WORDS_PER_PAGE

#: Nomination mechanisms (paper names).
HPT_ONLY = "hpt-only"
HPT_DRIVEN = "hpt-driven"
HWT_DRIVEN = "hwt-driven"
MODES = (HPT_ONLY, HPT_DRIVEN, HWT_DRIVEN)


@dataclass
class HpaEntry:
    """One ``_HPA`` entry: a candidate hot page."""

    pfn: int
    count: int = 0
    mask: int = 0  # 64-bit hot-word bitmap

    @property
    def hot_words(self) -> int:
        """Population count of the mask — the page's density signal."""
        return bin(self.mask & ((1 << WORDS_PER_PAGE) - 1)).count("1")


@dataclass
class Nomination:
    """Nominator output handed to Elector/Promoter."""

    pfns: List[int] = field(default_factory=list)
    entries: List[HpaEntry] = field(default_factory=list)


class Nominator:
    """Aggregates tracker queries and nominates pages to migrate.

    Args:
        mode: one of ``hpt-only``, ``hpt-driven``, ``hwt-driven``.
        min_hot_words: density filter for HPT-driven mode — a page is
            nominated ahead of others once at least this many mask
            bits are set (0 disables filtering).
    """

    def __init__(self, mode: str = HPT_ONLY, min_hot_words: int = 0) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if not 0 <= min_hot_words <= WORDS_PER_PAGE:
            raise ValueError("min_hot_words must be in [0, 64]")
        self.mode = mode
        self.min_hot_words = int(min_hot_words)
        self._hpa: Dict[int, HpaEntry] = {}
        self._hwa: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # D2H update path (trackers push their query results here)

    def update_from_hpt(self, entries: Sequence[Tuple[int, int]]) -> None:
        """Ingest an HPT query: (PFN, estimated count) pairs."""
        if self.mode == HWT_DRIVEN:
            # HWT-driven Nominator "starts with an empty list of _HPA
            # and uses only hot-word addresses" — HPT input is unused.
            return
        for pfn, count in entries:
            entry = self._hpa.get(int(pfn))
            if entry is None:
                self._hpa[int(pfn)] = HpaEntry(pfn=int(pfn), count=int(count))
            else:
                entry.count = max(entry.count, int(count))

    def update_from_hwt(self, entries: Sequence[Tuple[int, int]]) -> None:
        """Ingest an HWT query: (64B line index, estimated count) pairs."""
        if self.mode == HPT_ONLY:
            return
        for line, count in entries:
            line = int(line)
            self._hwa[line] = self._hwa.get(line, 0) + int(count)
            pfn = line >> WORDS_PER_PAGE_SHIFT
            bit = 1 << (line & (WORDS_PER_PAGE - 1))
            if self.mode == HPT_DRIVEN:
                # Only mark masks of pages HPT already nominated.
                entry = self._hpa.get(pfn)
                if entry is not None:
                    entry.mask |= bit
            else:  # HWT_DRIVEN
                entry = self._hpa.get(pfn)
                if entry is None:
                    # "adds the page address ... and sets the 64-bit
                    # mask, which serves as an access count, to one"
                    self._hpa[pfn] = HpaEntry(pfn=pfn, count=int(count), mask=bit)
                else:
                    entry.count += int(count)
                    entry.mask |= bit

    # ------------------------------------------------------------------
    # nomination

    def nominate(self, limit: Optional[int] = None) -> Nomination:
        """Produce the migration candidate list, hottest first.

        In HPT-driven mode, pages meeting the ``min_hot_words``
        density threshold rank ahead of sparser pages of equal count.
        Consumes (clears) the accumulated state, matching the
        query-and-reset flow of the trackers.
        """
        entries = list(self._hpa.values())
        if self.mode == HPT_DRIVEN and self.min_hot_words > 0:
            entries.sort(
                key=lambda e: (
                    -(e.hot_words >= self.min_hot_words),
                    -e.count,
                    e.pfn,
                )
            )
        else:
            entries.sort(key=lambda e: (-e.count, e.pfn))
        if limit is not None:
            entries = entries[: int(limit)]
        self._hpa.clear()
        self._hwa.clear()
        return Nomination(pfns=[e.pfn for e in entries], entries=entries)

    # ------------------------------------------------------------------
    # introspection helpers (used by tests and examples)

    @property
    def hpa(self) -> Dict[int, HpaEntry]:
        return self._hpa

    @property
    def hwa(self) -> Dict[int, int]:
        return self._hwa

    def density_of(self, pfn: int) -> int:
        entry = self._hpa.get(int(pfn))
        return entry.hot_words if entry else 0
