"""Promoter: the kernel-side migration interface (paper §5.2 ④).

Promoter is the only in-kernel piece of M5-manager.  Elector hands it
hot-page physical addresses; Promoter writes them to a proc file,
checks that each page may be migrated safely (not DMA-pinned, not
explicitly bound to the CXL node), and finally calls
``migrate_pages()`` — modelled here by the
:class:`~repro.memory.migration.MigrationEngine`, or, when the
asynchronous subsystem is active, by enqueueing the pages into the
:class:`~repro.migration.engine.AsyncMigrationEngine`'s bounded queue
(the queue's transactional tick then commits or aborts them).

The proc file itself is bounded: if the kernel worker stalls while
user space keeps writing, the pending buffer saturates at
``ProcFile.capacity`` and further PFNs are dropped and counted rather
than growing without limit — the same back-pressure discipline a real
fixed-size kernel buffer has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.memory.migration import MigrationEngine
from repro.memory.tiers import TieredMemory

#: Default bound of the proc-file pending buffer (PFN entries).
PROC_FILE_CAPACITY = 65_536


@dataclass
class ProcFile:
    """The /proc entry Elector writes hot-page PFNs into.

    Writes append to a pending buffer; the in-kernel worker consumes
    the buffer when it runs.  Keeping the file model explicit lets the
    tests exercise the same user/kernel handoff contract the paper's
    implementation has.  The buffer is bounded: once ``capacity``
    entries are pending, further writes are truncated and the overflow
    is counted in ``dropped``.
    """

    pending: List[int] = field(default_factory=list)
    writes: int = 0
    dropped: int = 0
    capacity: int = PROC_FILE_CAPACITY

    def write(self, pfns: Sequence[int]) -> int:
        """Append PFNs up to capacity; returns how many were accepted."""
        self.writes += 1
        room = self.capacity - len(self.pending)
        accepted = list(pfns)[: max(0, room)]
        self.dropped += len(pfns) - len(accepted)
        self.pending.extend(int(p) for p in accepted)
        return len(accepted)

    def drain(self) -> List[int]:
        batch, self.pending = self.pending, []
        return batch


@dataclass
class PromotionReport:
    """What happened to one promotion request."""

    requested: int = 0
    unknown_pfn: int = 0
    promoted: int = 0
    rejected: int = 0
    #: Pages handed to the async queue (async mode only; they commit
    #: or abort in a later tick, so ``promoted`` stays 0 here).
    enqueued: int = 0


class Promoter:
    """Safe migration of nominated pages into DDR DRAM.

    Args:
        memory: the tiered-memory system.
        engine: the synchronous migration engine (instant mode).
        async_engine: when set, promotions are enqueued into the
            asynchronous transactional subsystem instead of being
            applied immediately.
    """

    def __init__(
        self,
        memory: TieredMemory,
        engine: MigrationEngine,
        async_engine: Optional[object] = None,
    ) -> None:
        self.memory = memory
        self.engine = engine
        self.async_engine = async_engine
        self.proc_file = ProcFile()
        self.total = PromotionReport()

    def request(self, pfns: Sequence[int]) -> None:
        """User-space half: write hot-page addresses to the proc file."""
        self.proc_file.write(pfns)

    def run_kernel_worker(self) -> PromotionReport:
        """Kernel half: drain the proc file, validate, migrate."""
        pfns = self.proc_file.drain()
        report = PromotionReport(requested=len(pfns))
        if not pfns:
            return report
        lpages = self.memory.logical_pages_of_pfns(np.asarray(pfns, dtype=np.int64))
        known = lpages[lpages >= 0]
        report.unknown_pfn = int((lpages < 0).sum())
        if self.async_engine is not None:
            report.enqueued = self.async_engine.enqueue_promotions(known)
        else:
            rejected_before = self.engine.stats.rejected
            report.promoted = self.engine.promote(known)
            report.rejected = self.engine.stats.rejected - rejected_before
        self.total.requested += report.requested
        self.total.unknown_pfn += report.unknown_pfn
        self.total.promoted += report.promoted
        self.total.rejected += report.rejected
        self.total.enqueued += report.enqueued
        return report

    def promote(self, pfns: Sequence[int]) -> PromotionReport:
        """Convenience: request + immediately run the kernel worker."""
        self.request(pfns)
        return self.run_kernel_worker()
