"""Promoter: the kernel-side migration interface (paper §5.2 ④).

Promoter is the only in-kernel piece of M5-manager.  Elector hands it
hot-page physical addresses; Promoter writes them to a proc file,
checks that each page may be migrated safely (not DMA-pinned, not
explicitly bound to the CXL node), and finally calls
``migrate_pages()`` — modelled here by the
:class:`~repro.memory.migration.MigrationEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.memory.migration import MigrationEngine
from repro.memory.tiers import TieredMemory


@dataclass
class ProcFile:
    """The /proc entry Elector writes hot-page PFNs into.

    Writes append to a pending buffer; the in-kernel worker consumes
    the buffer when it runs.  Keeping the file model explicit lets the
    tests exercise the same user/kernel handoff contract the paper's
    implementation has.
    """

    pending: List[int] = field(default_factory=list)
    writes: int = 0

    def write(self, pfns: Sequence[int]) -> None:
        self.pending.extend(int(p) for p in pfns)
        self.writes += 1

    def drain(self) -> List[int]:
        batch, self.pending = self.pending, []
        return batch


@dataclass
class PromotionReport:
    """What happened to one promotion request."""

    requested: int = 0
    unknown_pfn: int = 0
    promoted: int = 0
    rejected: int = 0


class Promoter:
    """Safe migration of nominated pages into DDR DRAM."""

    def __init__(self, memory: TieredMemory, engine: MigrationEngine):
        self.memory = memory
        self.engine = engine
        self.proc_file = ProcFile()
        self.total = PromotionReport()

    def request(self, pfns: Sequence[int]) -> None:
        """User-space half: write hot-page addresses to the proc file."""
        self.proc_file.write(pfns)

    def run_kernel_worker(self) -> PromotionReport:
        """Kernel half: drain the proc file, validate, migrate."""
        pfns = self.proc_file.drain()
        report = PromotionReport(requested=len(pfns))
        if not pfns:
            return report
        lpages = self.memory.logical_pages_of_pfns(np.asarray(pfns, dtype=np.int64))
        known = lpages[lpages >= 0]
        report.unknown_pfn = int((lpages < 0).sum())
        rejected_before = self.engine.stats.rejected
        report.promoted = self.engine.promote(known)
        report.rejected = self.engine.stats.rejected - rejected_before
        self.total.requested += report.requested
        self.total.unknown_pfn += report.unknown_pfn
        self.total.promoted += report.promoted
        self.total.rejected += report.rejected
        return report

    def promote(self, pfns: Sequence[int]) -> PromotionReport:
        """Convenience: request + immediately run the kernel worker."""
        self.request(pfns)
        return self.run_kernel_worker()
