"""Hardware cost model for the top-K trackers (paper Table 4).

Reproduces the paper's synthesis study (§7.1): area and power of the
Space-Saving (CAM-based) and CM-Sketch (SRAM-based) top-5 trackers in
a 7nm logic process (ASAP7-class), and the feasibility limits imposed
by the 400 MHz timing constraint — one access per 2.5 ns tCCD of
DDR4-3200.

The model is *calibrated*: the per-entry area/power structure
(bitcells + match/comparator periphery for the CAM, banked SRAM macro
plus a fixed K-entry CAM for the sketch) is interpolated through the
paper's published design points in log-space, and extrapolated with
the boundary slopes.  The calibration points are the eight rows of
Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Table 4 calibration points: N -> (area um^2, power mW).
SPACE_SAVING_POINTS = {
    50: (3_649.0, 0.7),
    100: (7_323.0, 1.3),
    512: (36_374.0, 6.4),
    1024: (89_369.0, 15.0),
    2048: (179_625.0, 29.9),
}
CM_SKETCH_POINTS = {
    50: (1_899.0, 2.0),
    100: (2_134.0, 2.2),
    512: (2_878.0, 2.7),
    1024: (3_714.0, 3.2),
    2048: (5_346.0, 3.9),
    8192: (13_509.0, 7.9),
    32768: (46_930.0, 23.2),
    131072: (180_530.0, 83.8),
}

#: Feasibility limits under the 400 MHz constraint (§7.1): the FPGA
#: synthesis caps the Space-Saving CAM at 50 entries and the CM-Sketch
#: SRAM at 128K entries; the 7nm ASIC CAM reaches ~2K.
MAX_ENTRIES = {
    ("space-saving", "fpga"): 50,
    ("space-saving", "asic7nm"): 2048,
    ("cm-sketch", "fpga"): 128 * 1024,
    ("cm-sketch", "asic7nm"): 1024 * 1024,
}

REQUIRED_FREQUENCY_HZ = 400e6
#: tCCD of DDR4-3200 — the max memory access rate the tracker must absorb.
TCCD_NS = 2.5


@dataclass(frozen=True)
class CostEstimate:
    """Synthesis-style cost report for one tracker design point."""

    algorithm: str
    num_entries: int
    area_um2: float
    power_mw: float
    technology: str = "asic7nm"

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6


def _points_for(algorithm: str) -> dict:
    if algorithm == "space-saving":
        return SPACE_SAVING_POINTS
    if algorithm == "cm-sketch":
        return CM_SKETCH_POINTS
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _log_interp(n: int, points: dict, column: int) -> float:
    """Piecewise log-log interpolation through calibration points."""
    xs = np.array(sorted(points))
    ys = np.array([points[x][column] for x in xs])
    logx, logy = np.log(xs), np.log(ys)
    ln = np.log(n)
    if ln <= logx[0]:
        slope = (logy[1] - logy[0]) / (logx[1] - logx[0])
        return float(np.exp(logy[0] + slope * (ln - logx[0])))
    if ln >= logx[-1]:
        slope = (logy[-1] - logy[-2]) / (logx[-1] - logx[-2])
        return float(np.exp(logy[-1] + slope * (ln - logx[-1])))
    return float(np.exp(np.interp(ln, logx, logy)))


def feasible_entries(algorithm: str, technology: str = "asic7nm") -> int:
    """Maximum N meeting the 400 MHz constraint for a platform."""
    try:
        return MAX_ENTRIES[(algorithm, technology)]
    except KeyError:
        raise ValueError(f"unknown platform {(algorithm, technology)!r}") from None


def is_feasible(algorithm: str, num_entries: int, technology: str = "asic7nm") -> bool:
    """Does the design point close timing at 400 MHz?"""
    return 0 < num_entries <= feasible_entries(algorithm, technology)


def estimate(
    algorithm: str, num_entries: int, technology: str = "asic7nm"
) -> Optional[CostEstimate]:
    """Area/power for a design point; None when timing cannot close.

    Mirrors Table 4's blank cells: the Space-Saving CAM has no valid
    synthesis result beyond 2K entries.
    """
    if num_entries <= 0:
        raise ValueError("num_entries must be positive")
    if not is_feasible(algorithm, num_entries, technology):
        return None
    points = _points_for(algorithm)
    return CostEstimate(
        algorithm=algorithm,
        num_entries=int(num_entries),
        area_um2=_log_interp(num_entries, points, 0),
        power_mw=_log_interp(num_entries, points, 1),
        technology=technology,
    )


def table4(
    entries: Sequence[int] = (50, 100, 512, 1024, 2048, 8192, 32768, 131072),
) -> List[Dict[str, Optional[float]]]:
    """Regenerate Table 4: rows of (N, SS area, CMS area, SS power,
    CMS power); infeasible cells are None."""
    rows = []
    for n in entries:
        ss = estimate("space-saving", n)
        cms = estimate("cm-sketch", n)
        rows.append(
            {
                "entries": n,
                "space_saving_area_um2": ss.area_um2 if ss else None,
                "cm_sketch_area_um2": cms.area_um2 if cms else None,
                "space_saving_power_mw": ss.power_mw if ss else None,
                "cm_sketch_power_mw": cms.power_mw if cms else None,
            }
        )
    return rows


def relative_cost(num_entries: int = 2048) -> dict:
    """Headline §7.1 ratio: SS vs CMS chip space and power at equal N
    (paper: 33.6x area and 7.6x power at N = 2K)."""
    ss = estimate("space-saving", num_entries)
    cms = estimate("cm-sketch", num_entries)
    if ss is None or cms is None:
        raise ValueError(f"N={num_entries} infeasible for one design")
    return {
        "area_ratio": ss.area_um2 / cms.area_um2,
        "power_ratio": ss.power_mw / cms.power_mw,
    }


def chip_overhead_fraction(
    num_entries: int = 32768,
    dram_module_gb: float = 8.0,
    dram_die_area_mm2_per_gb: float = 60.0,
) -> float:
    """Tracker area as a fraction of the DRAM dies it serves.

    The paper reports ~0.01% of the total die area of an 8GB module
    for the 32K-entry CM-Sketch tracker (§8).
    """
    cms = estimate("cm-sketch", num_entries)
    if cms is None:
        raise ValueError("infeasible design point")
    total_die_mm2 = dram_module_gb * dram_die_area_mm2_per_gb
    return cms.area_mm2 / total_die_mm2


def max_access_rate_hz() -> float:
    """Peak request rate the tracker must sustain (1 / tCCD)."""
    return 1.0 / (TCCD_NS * 1e-9)
