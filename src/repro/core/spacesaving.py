"""Space-Saving and Misra–Gries trackers: the CAM-based comparison
points for the CM-Sketch top-K tracker.

The paper evaluates a Space-Saving variant in the style of the Mithril
Row-Hammer defence (§5.1): an N-entry sorted CAM stores (address,
count) pairs.  Hits increment the matching counter; a miss with a full
table replaces the minimum entry, inheriting ``min + 1`` (Space-Saving
proper) so the estimate is a guaranteed overestimate.

Because every lookup must search all N CAM entries in parallel, N is
capped by timing: the paper's synthesis finds at most 50 entries on
the Agilex-7 FPGA and ~2K in 7nm ASIC at 400 MHz (§7.1, Table 4) —
that constraint lives in :mod:`repro.core.hwcost`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np


class SpaceSaving:
    """Classic Space-Saving stream summary with N counters.

    Args:
        capacity: N, the number of CAM entries.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._counts: Dict[int, int] = {}
        # Lazy min-heap of (count, address); stale entries are skipped
        # on pop and compacted away once the heap exceeds the bound.
        self._heap: List[Tuple[int, int]] = []
        # Hits push a fresh (count, address) without removing the stale
        # entry, so the heap must be compacted periodically or it grows
        # with the stream instead of the table.  2x capacity keeps the
        # rebuild amortised O(1) per update.
        self._heap_bound = 2 * self.capacity
        self.items_seen = 0

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, address: int) -> bool:
        return int(address) in self._counts

    def _push(self, address: int, count: int) -> None:
        """Push an updated entry, compacting stale heap items as needed."""
        heapq.heappush(self._heap, (count, address))
        if len(self._heap) > self._heap_bound:
            self._heap = [(c, a) for a, c in self._counts.items()]
            heapq.heapify(self._heap)

    def _pop_min(self) -> Tuple[int, int]:
        """Pop the current true-minimum entry, skipping stale heap items."""
        while self._heap:
            count, addr = heapq.heappop(self._heap)
            if self._counts.get(addr) == count:
                del self._counts[addr]
                return count, addr
        raise RuntimeError("space-saving heap out of sync")

    def update_one(self, address: int, weight: int = 1) -> int:
        """Process one access (or ``weight`` repeats); returns estimate."""
        address = int(address)
        self.items_seen += int(weight)
        if address in self._counts:
            new = self._counts[address] + weight
        elif len(self._counts) < self.capacity:
            new = int(weight)
        else:
            # Replace the minimum entry, inheriting its count (the
            # Space-Saving overestimate guarantee).
            min_count, _ = self._pop_min()
            new = min_count + int(weight)
        self._counts[address] = new
        self._push(address, new)
        return new

    def update_batch(self, keys: np.ndarray, weights: np.ndarray = None) -> None:
        """Weighted bulk update (run-length compressed chunk).

        Equivalent to replaying each unique key ``weight`` times
        consecutively, which is the standard weighted Space-Saving
        extension.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if weights is None:
            weights = np.ones(keys.size, dtype=np.int64)
        for key, w in zip(keys.tolist(), np.asarray(weights).tolist()):
            self.update_one(int(key), int(w))

    def estimate_one(self, address: int) -> int:
        return self._counts.get(int(address), 0)

    def top_k(self, k: int) -> List[Tuple[int, int]]:
        """Top-``k`` (address, count) pairs, hottest first."""
        items = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return items[: int(k)]

    def addresses(self) -> List[int]:
        return [addr for addr, _ in sorted(
            self._counts.items(), key=lambda kv: (-kv[1], kv[0])
        )]

    def reset(self) -> None:
        self._counts.clear()
        self._heap.clear()
        self.items_seen = 0


class MisraGries(SpaceSaving):
    """Misra–Gries (frequent) summary: the decrement-on-miss variant.

    Mithril-family Row-Hammer trackers build on this scheme: a miss
    with a full table decrements *every* counter instead of replacing
    the minimum, evicting entries that reach zero.  Underestimates
    instead of overestimates; included as a design-space point.
    """

    def update_one(self, address: int, weight: int = 1) -> int:
        address = int(address)
        self.items_seen += int(weight)
        remaining = int(weight)
        while remaining > 0:
            if address in self._counts:
                self._counts[address] += remaining
                self._push(address, self._counts[address])
                return self._counts[address]
            if len(self._counts) < self.capacity:
                self._counts[address] = remaining
                self._push(address, remaining)
                return remaining
            # Decrement all counters by the smallest count so at least
            # one entry frees up; charge that against our weight.
            min_count = min(self._counts.values())
            step = min(min_count, remaining)
            self._counts = {
                a: c - step for a, c in self._counts.items() if c - step > 0
            }
            self._heap = [(c, a) for a, c in self._counts.items()]
            heapq.heapify(self._heap)
            remaining -= step
        return self._counts.get(address, 0)
