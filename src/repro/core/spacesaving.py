"""Space-Saving and Misra–Gries trackers: the CAM-based comparison
points for the CM-Sketch top-K tracker.

The paper evaluates a Space-Saving variant in the style of the Mithril
Row-Hammer defence (§5.1): an N-entry sorted CAM stores (address,
count) pairs.  Hits increment the matching counter; a miss with a full
table replaces the minimum entry, inheriting ``min + 1`` (Space-Saving
proper) so the estimate is a guaranteed overestimate.

Because every lookup must search all N CAM entries in parallel, N is
capped by timing: the paper's synthesis finds at most 50 entries on
the Agilex-7 FPGA and ~2K in 7nm ASIC at 400 MHz (§7.1, Table 4) —
that constraint lives in :mod:`repro.core.hwcost`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from repro.core.bulk import merge_counts


class SpaceSaving:
    """Classic Space-Saving stream summary with N counters.

    Args:
        capacity: N, the number of CAM entries.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._counts: Dict[int, int] = {}
        # Lazy min-heap of (count, address); stale entries are skipped
        # on pop and compacted away once the heap exceeds the bound.
        self._heap: List[Tuple[int, int]] = []
        # Hits push a fresh (count, address) without removing the stale
        # entry, so the heap must be compacted periodically or it grows
        # with the stream instead of the table.  2x capacity keeps the
        # rebuild amortised O(1) per update.
        self._heap_bound = 2 * self.capacity
        self.items_seen = 0

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, address: int) -> bool:
        return int(address) in self._counts

    def _push(self, address: int, count: int) -> None:
        """Push an updated entry, compacting stale heap items as needed."""
        heapq.heappush(self._heap, (count, address))
        if len(self._heap) > self._heap_bound:
            self._heap = [(c, a) for a, c in self._counts.items()]
            heapq.heapify(self._heap)

    def _pop_min(self) -> Tuple[int, int]:
        """Pop the current true-minimum entry, skipping stale heap items."""
        while self._heap:
            count, addr = heapq.heappop(self._heap)
            if self._counts.get(addr) == count:
                del self._counts[addr]
                return count, addr
        raise RuntimeError("space-saving heap out of sync")

    def update_one(self, address: int, weight: int = 1) -> int:
        """Process one access (or ``weight`` repeats); returns estimate."""
        address = int(address)
        self.items_seen += int(weight)
        if address in self._counts:
            new = self._counts[address] + weight
        elif len(self._counts) < self.capacity:
            new = int(weight)
        else:
            # Replace the minimum entry, inheriting its count (the
            # Space-Saving overestimate guarantee).
            min_count, _ = self._pop_min()
            new = min_count + int(weight)
        self._counts[address] = new
        self._push(address, new)
        return new

    def update_batch(self, keys: np.ndarray, weights: np.ndarray = None) -> None:
        """Weighted bulk update (run-length compressed chunk).

        Equivalent to replaying each unique key ``weight`` times
        consecutively, which is the standard weighted Space-Saving
        extension.  Exactly matches :meth:`update_batch_reference`
        (same counts, same ``items_seen``): offers before the first
        full-table miss are hits or free-slot fills, neither of which
        evicts, so that prefix is a bulk array merge; the contended
        remainder replays through :meth:`update_one`.  The min-heap is
        a lazy cache over ``_counts`` and is rebuilt once after the
        bulk phase.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        n = int(keys.size)
        if n == 0:
            return
        if weights is None:
            weights = np.ones(n, dtype=np.int64)
        else:
            weights = np.atleast_1d(np.asarray(weights, dtype=np.int64))
        if np.unique(keys).size != n:
            # Duplicate keys void the static hit/miss split below.
            self.update_batch_reference(keys, weights)
            return

        if self._counts:
            existing = np.fromiter(
                self._counts.keys(), dtype=np.uint64, count=len(self._counts)
            )
            tracked = np.isin(keys, existing)
        else:
            existing = np.empty(0, dtype=np.uint64)
            tracked = np.zeros(n, dtype=bool)
        miss_pos = np.nonzero(~tracked)[0]
        room = self.capacity - len(self._counts)
        # Everything before the first miss that finds a full table is
        # eviction-free and merges in one pass.
        f = n if miss_pos.size <= room else int(miss_pos[room])
        if f > 0:
            self._counts = merge_counts(self._counts, keys[:f], weights[:f])
            self.items_seen += int(weights[:f].sum())
            self._heap = [(c, a) for a, c in self._counts.items()]
            heapq.heapify(self._heap)
        for i in range(f, n):
            self.update_one(int(keys[i]), int(weights[i]))

    def update_batch_reference(
        self, keys: np.ndarray, weights: np.ndarray = None
    ) -> None:
        """Per-key loop :meth:`update_batch` — the differential oracle."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if weights is None:
            weights = np.ones(keys.size, dtype=np.int64)
        for key, w in zip(keys.tolist(), np.asarray(weights).tolist()):
            self.update_one(int(key), int(w))

    def estimate_one(self, address: int) -> int:
        return self._counts.get(int(address), 0)

    def top_k(self, k: int) -> List[Tuple[int, int]]:
        """Top-``k`` (address, count) pairs, hottest first."""
        items = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return items[: int(k)]

    def addresses(self) -> List[int]:
        return [addr for addr, _ in sorted(
            self._counts.items(), key=lambda kv: (-kv[1], kv[0])
        )]

    def reset(self) -> None:
        self._counts.clear()
        self._heap.clear()
        self.items_seen = 0


class MisraGries(SpaceSaving):
    """Misra–Gries (frequent) summary: the decrement-on-miss variant.

    Mithril-family Row-Hammer trackers build on this scheme: a miss
    with a full table decrements *every* counter instead of replacing
    the minimum, evicting entries that reach zero.  Underestimates
    instead of overestimates; included as a design-space point.
    """

    def update_one(self, address: int, weight: int = 1) -> int:
        address = int(address)
        self.items_seen += int(weight)
        remaining = int(weight)
        while remaining > 0:
            if address in self._counts:
                self._counts[address] += remaining
                self._push(address, self._counts[address])
                return self._counts[address]
            if len(self._counts) < self.capacity:
                self._counts[address] = remaining
                self._push(address, remaining)
                return remaining
            # Decrement all counters by the smallest count so at least
            # one entry frees up; charge that against our weight.
            min_count = min(self._counts.values())
            step = min(min_count, remaining)
            self._counts = {
                a: c - step for a, c in self._counts.items() if c - step > 0
            }
            self._heap = [(c, a) for a, c in self._counts.items()]
            heapq.heapify(self._heap)
            remaining -= step
        return self._counts.get(address, 0)
