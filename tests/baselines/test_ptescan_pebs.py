"""Tests for the PTE-scan and PEBS-sampling baselines."""

import numpy as np
import pytest

from repro.baselines.base import NoMigration
from repro.baselines.pebs import PebsSampler
from repro.baselines.ptescan import PteScanner
from repro.memory.page_table import PageTable
from repro.memory.tiers import NodeKind, TieredMemory
from repro.memory.tlb import Tlb


def memory(pages=128):
    mem = TieredMemory(ddr_pages=32, cxl_pages=pages, num_logical_pages=pages)
    mem.allocate_all(NodeKind.CXL)
    return mem


class TestPteScanner:
    def make(self, pages=128, **kw):
        mem = memory(pages)
        pt = PageTable(pages, tlb=Tlb(pages, capacity=4, decay=1.0))
        defaults = dict(scan_period_s=1.0, hot_epochs=2, window_epochs=4)
        defaults.update(kw)
        return mem, PteScanner(mem, page_table=pt, **defaults)

    def test_persistent_pages_identified(self):
        _, scanner = self.make()
        for t in range(1, 5):
            scanner.on_epoch(np.array([7, 9]), now_s=float(t))
        assert {7, 9} <= set(scanner.hot_pages)

    def test_one_epoch_pages_not_identified(self):
        _, scanner = self.make()
        scanner.on_epoch(np.array([7]), now_s=1.0)
        scanner.on_epoch(np.array([50]), now_s=2.0)
        assert 7 not in scanner.hot_pages

    def test_intensity_blind(self):
        """The access bit is Boolean: 1000 touches look like 1."""
        _, scanner = self.make()
        for t in range(1, 4):
            scanner.on_epoch(np.array([7] * 1000 + [9]), now_s=float(t))
        assert 7 in scanner.hot_pages
        assert 9 in scanner.hot_pages

    def test_scan_cost_proportional_to_footprint(self):
        _, small = self.make(pages=128)
        mem_l = memory(1024)
        large = PteScanner(mem_l, scan_period_s=1.0)
        small.on_epoch(np.array([0]), now_s=1.0)
        large.on_epoch(np.array([0]), now_s=1.0)
        assert large.costs.total_us > small.costs.total_us

    def test_window_resets(self):
        _, scanner = self.make(hot_epochs=2, window_epochs=2)
        scanner.on_epoch(np.array([7]), now_s=1.0)
        scanner.on_epoch(np.array([7]), now_s=2.0)
        assert scanner._epochs_in_window == 0  # window rolled over

    def test_validation(self):
        mem = memory(16)
        with pytest.raises(ValueError):
            PteScanner(mem, hot_epochs=0)
        with pytest.raises(ValueError):
            PteScanner(mem, hot_epochs=5, window_epochs=2)


class TestPebsSampler:
    def make(self, **kw):
        mem = memory(256)
        defaults = dict(sample_period=10, buffer_records=64,
                        hot_threshold=3, seed=0)
        defaults.update(kw)
        return mem, PebsSampler(mem, **defaults)

    def test_hot_pages_found_by_sampling(self):
        _, pebs = self.make()
        rng = np.random.default_rng(1)
        stream = np.concatenate([np.full(5000, 7), rng.integers(0, 256, 5000)])
        rng.shuffle(stream)
        pebs.on_epoch(stream, now_s=0.0)
        assert 7 in pebs.hot_pages

    def test_sampling_rate_thins_stream(self):
        _, pebs = self.make(sample_period=100)
        pebs.on_epoch(np.zeros(10_000, dtype=np.int64), now_s=0.0)
        assert 50 < pebs.samples_taken < 200

    def test_interrupt_cost_scales_with_rate(self):
        _, aggressive = self.make(sample_period=10)
        _, relaxed = self.make(sample_period=1000)
        stream = np.arange(20_000) % 256
        aggressive.on_epoch(stream, now_s=0.0)
        relaxed.on_epoch(stream, now_s=0.0)
        assert aggressive.costs.total_us > relaxed.costs.total_us
        assert aggressive.interrupts > relaxed.interrupts

    def test_cooling_halves_counts(self):
        _, pebs = self.make(cooling_interval_s=0.5)
        pebs.on_epoch(np.full(1000, 5), now_s=0.0)
        before = pebs._sample_counts[5]
        pebs.on_epoch(np.array([0]), now_s=1.0)
        assert pebs._sample_counts[5] == before // 2

    def test_validation(self):
        mem = memory(16)
        with pytest.raises(ValueError):
            PebsSampler(mem, sample_period=0)


class TestNoMigration:
    def test_never_identifies(self):
        mem = memory(64)
        none = NoMigration(mem)
        none.on_epoch(np.arange(64), now_s=0.0)
        assert not none.hot_pages
        assert none.epoch_overhead_us == 0.0

    def test_cost_scale_applies(self):
        mem = memory(64)
        policy = NoMigration(mem)
        policy.costs.scale = 256.0
        policy.costs.charge(1.0, "x")
        assert policy.costs.total_us == 256.0
