"""Tests for the TPP baseline."""

import numpy as np
import pytest

from repro.baselines.tpp import Tpp
from repro.memory.page_table import PageTable
from repro.memory.tiers import NodeKind, TieredMemory
from repro.memory.tlb import Tlb


def make(pages=64, ddr=16, **kw):
    mem = TieredMemory(ddr_pages=ddr, cxl_pages=pages, num_logical_pages=pages)
    mem.allocate_all(NodeKind.CXL)
    pt = PageTable(pages, tlb=Tlb(pages, capacity=pages, decay=0.0))
    defaults = dict(scan_window_pages=64, scan_period_s=1.0, seed=0,
                    refault_window_s=2.0, promotion_rate_pages_s=1000.0)
    defaults.update(kw)
    return mem, Tpp(mem, page_table=pt, **defaults)


class TestTwoTouch:
    def test_cold_first_fault_not_promoted(self):
        _, tpp = make()
        tpp.on_epoch(np.array([]), now_s=0.0)      # unmap all
        tpp.on_epoch(np.array([5]), now_s=10.0)    # idle page faults
        assert 5 not in tpp.hot_pages

    def test_active_page_fault_promoted(self):
        _, tpp = make()
        tpp.on_epoch(np.array([5]), now_s=0.0)     # page is active
        tpp.on_epoch(np.array([]), now_s=1.0)      # unmap all
        tpp.on_epoch(np.array([5]), now_s=1.5)     # fault on active page
        assert 5 in tpp.hot_pages
        assert tpp.refault_promotions == 1

    def test_stale_activity_not_promoted(self):
        _, tpp = make(refault_window_s=0.5)
        tpp.on_epoch(np.array([5]), now_s=0.0)     # active long ago
        tpp.on_epoch(np.array([]), now_s=10.0)     # unmap all
        tpp.on_epoch(np.array([5]), now_s=10.3)    # fault, activity stale
        assert 5 not in tpp.hot_pages


class TestRateLimit:
    def test_promotions_bounded_by_budget(self):
        _, tpp = make(promotion_rate_pages_s=2.0)
        tpp.on_epoch(np.arange(32), now_s=0.0)      # pages active
        tpp.on_epoch(np.array([]), now_s=1.0)       # unmap all
        tpp.on_epoch(np.arange(32), now_s=1.5)      # 32 active faults, budget ~4
        assert 0 < len(tpp.hot_pages) <= 5


class TestWatermarks:
    def test_demotion_candidates_when_below_watermark(self):
        mem, tpp = make(ddr=10, demotion_watermark=0.2)
        # Fill DDR completely.
        for p in range(10):
            mem.move_page(p, NodeKind.DDR)
        assert tpp.demotion_candidates() == 2

    def test_no_demotion_needed_with_headroom(self):
        _, tpp = make(ddr=10, demotion_watermark=0.2)
        assert tpp.demotion_candidates() == 0


class TestValidation:
    def test_rejects_bad_parameters(self):
        mem = TieredMemory(ddr_pages=4, cxl_pages=8, num_logical_pages=8)
        mem.allocate_all(NodeKind.CXL)
        with pytest.raises(ValueError):
            Tpp(mem, demotion_watermark=1.5)
        with pytest.raises(ValueError):
            Tpp(mem, promotion_rate_pages_s=0)


class TestEngineIntegration:
    def test_tpp_policy_runs_end_to_end(self):
        from repro.sim import SimConfig, run_policy
        from repro.workloads import build

        cfg = SimConfig(total_accesses=200_000, chunk_size=50_000,
                        ddr_pages=1024, checkpoints=1)
        result = run_policy(build("mcf", seed=0), "tpp", cfg)
        assert result.policy == "tpp"
        assert result.promoted > 0
        # Watermark keeps headroom: DDR never packed solid.
        assert result.nr_pages_ddr <= 1024
