"""Tests for the DAMON baseline."""

import numpy as np
import pytest

from repro.baselines.damon import Damon, Region
from repro.memory.tiers import NodeKind, TieredMemory


def make(pages=1000, **kwargs):
    mem = TieredMemory(ddr_pages=200, cxl_pages=pages, num_logical_pages=pages)
    mem.allocate_all(NodeKind.CXL)
    defaults = dict(
        sampling_interval_s=0.005,
        aggregation_interval_s=0.1,
        min_nr_regions=10,
        seed=0,
    )
    defaults.update(kwargs)
    return mem, Damon(mem, **defaults)


def run_epochs(damon, pages, epochs=5, epoch_s=0.5):
    now = 0.0
    for _ in range(epochs):
        damon.on_epoch(pages, now_s=now, epoch_s=epoch_s)
        now += epoch_s


class TestRegions:
    def test_initial_region_cover(self):
        _, damon = make()
        assert len(damon.regions) == 10
        assert damon.regions[0].start == 0
        assert damon.regions[-1].end == 1000
        # Contiguous, non-overlapping:
        for a, b in zip(damon.regions, damon.regions[1:]):
            assert a.end == b.start

    def test_regions_stay_contiguous_through_merge_split(self):
        _, damon = make()
        pages = np.arange(1000)
        run_epochs(damon, pages, epochs=6)
        assert damon.regions[0].start == 0
        assert damon.regions[-1].end == 1000
        for a, b in zip(damon.regions, damon.regions[1:]):
            assert a.end == b.start

    def test_region_count_bounded(self):
        _, damon = make(max_nr_regions=40)
        rng = np.random.default_rng(0)
        run_epochs(damon, rng.integers(0, 1000, 5000), epochs=10)
        assert 10 <= len(damon.regions) <= 40

    def test_region_dataclass(self):
        r = Region(0, 10, 3)
        assert r.size == 10


class TestSamplingAndPromotion:
    def test_hot_region_identified(self):
        _, damon = make()
        # Pages 0..99 extremely hot, everything else untouched.
        hot = np.tile(np.arange(100), 200)
        run_epochs(damon, hot, epochs=5)
        assert damon.aggregations >= 1
        assert damon.hot_pages
        hot_set = set(damon.hot_pages)
        # Identified pages are dominated by the hot region's pages
        # (region blur may pull in some neighbours).
        inside = sum(1 for p in hot_set if p < 150)
        assert inside / len(hot_set) > 0.5

    def test_idle_workload_promotes_nothing(self):
        _, damon = make()
        run_epochs(damon, np.array([0]), epochs=5)
        # One cold access: regions never reach the threshold.
        assert len(damon.hot_pages) <= 110  # at most one region's worth

    def test_region_blur_includes_warm_neighbours(self):
        """Observation 1: whole regions are promoted, so warm pages
        ride along with hot ones."""
        _, damon = make(min_nr_regions=10, max_nr_regions=10)
        # One very hot page inside an otherwise idle region.
        hot = np.tile(np.arange(60, 64), 500)
        run_epochs(damon, hot, epochs=6)
        identified = set(damon.hot_pages)
        warm_neighbours = identified - set(range(60, 64))
        assert warm_neighbours  # the blur is real

    def test_sampling_costs_charged_continuously(self):
        """§7.2: DAMON keeps scanning even with nothing to find."""
        _, damon = make()
        run_epochs(damon, np.array([0]), epochs=5)
        assert damon.costs.events["pte_sample"] > 0
        assert damon.samples_taken > 0

    def test_quota_bounds_promotions_per_aggregation(self):
        _, damon = make(quota_pages=16, min_nr_regions=10, max_nr_regions=10)
        hot = np.tile(np.arange(500), 40)
        damon.on_epoch(hot, now_s=0.0, epoch_s=0.15)
        assert len(damon.hot_pages) <= 16

    def test_only_cxl_pages_promoted(self):
        mem, damon = make()
        for p in range(100):
            mem.move_page(p, NodeKind.DDR)
        hot = np.tile(np.arange(100), 100)  # hot pages all on DDR
        run_epochs(damon, hot, epochs=5)
        assert all(mem.node_of_page(p) is NodeKind.CXL for p in damon.hot_pages)


class TestAccessScale:
    def test_access_scale_raises_bit_probability(self):
        _, slow = make(access_scale=1.0)
        _, fast = make(access_scale=64.0)
        lukewarm = np.tile(np.arange(1000), 3)
        run_epochs(slow, lukewarm, epochs=6)
        run_epochs(fast, lukewarm, epochs=6)
        # Same sampling cadence, but the scaled rate sets many more
        # access bits, so the scaled instance identifies more pages.
        assert len(fast.hot_pages) > len(slow.hot_pages)


class TestValidation:
    def test_rejects_bad_intervals(self):
        mem = TieredMemory(ddr_pages=4, cxl_pages=16, num_logical_pages=8)
        mem.allocate_all(NodeKind.CXL)
        with pytest.raises(ValueError):
            Damon(mem, sampling_interval_s=0)
        with pytest.raises(ValueError):
            Damon(mem, min_nr_regions=1)
