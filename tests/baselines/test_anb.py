"""Tests for the ANB (hinting page fault) baseline."""

import numpy as np
import pytest

from repro.baselines.anb import (
    FAULT_COST_US,
    MAX_SCAN_PERIOD_S,
    AutoNumaBalancing,
)
from repro.memory.page_table import PageTable
from repro.memory.tiers import NodeKind, TieredMemory
from repro.memory.tlb import Tlb


def make(pages=64, ddr=16):
    mem = TieredMemory(ddr_pages=ddr, cxl_pages=pages, num_logical_pages=pages)
    mem.allocate_all(NodeKind.CXL)
    pt = PageTable(pages, tlb=Tlb(pages, capacity=pages, decay=0.0))
    return mem, AutoNumaBalancing(
        mem, page_table=pt, scan_window_pages=8, scan_period_s=1.0,
        adaptive=False, seed=0,
    )


class TestScanning:
    def test_scan_unmaps_window(self):
        _, anb = make()
        anb.on_epoch(np.array([0]), now_s=0.0)
        assert anb.pages_unmapped == 8
        assert anb.scan_windows == 1

    def test_scan_cursor_advances(self):
        _, anb = make()
        anb.on_epoch(np.array([0]), now_s=0.0)
        anb.on_epoch(np.array([0]), now_s=1.0)
        assert anb.pages_unmapped == 16

    def test_multiple_due_windows_caught_up(self):
        _, anb = make()
        anb.on_epoch(np.array([0]), now_s=3.5)
        assert anb.scan_windows == 4  # t=0,1,2,3

    def test_only_cxl_pages_unmapped(self):
        mem, anb = make()
        window0 = list(range(anb._scan_cursor, anb._scan_cursor + 8))
        on_ddr = window0[0] % mem.num_logical_pages
        mem.move_page(on_ddr, NodeKind.DDR)
        anb.on_epoch(np.array([0]), now_s=0.0)
        assert anb.pages_unmapped == 7

    def test_scan_costs_charged(self):
        _, anb = make()
        anb.on_epoch(np.array([0]), now_s=0.0)
        assert anb.costs.events.get("unmap", 0) > 0
        assert anb.costs.events.get("tlb_shootdown", 0) > 0


class TestFaultPromotion:
    def test_faulting_page_identified(self):
        _, anb = make()
        anb.on_epoch(np.array([0]), now_s=0.0)  # unmap window
        window = np.nonzero(~anb.page_table.present)[0]
        anb.on_epoch(window[:2], now_s=0.5)
        assert set(window[:2]) <= set(anb.hot_pages)
        assert anb.faults_handled == 2

    def test_untouched_unmapped_pages_not_identified(self):
        _, anb = make()
        anb.on_epoch(np.array([0]), now_s=0.0)
        window = np.nonzero(~anb.page_table.present)[0]
        untouched = window[-1]
        anb.on_epoch(window[:1], now_s=0.5)
        assert untouched not in anb.hot_pages

    def test_one_bit_of_recency(self):
        """Observation 1: a page touched once and a page touched 1000
        times after unmapping are indistinguishable to ANB."""
        _, anb = make()
        anb.on_epoch(np.array([0]), now_s=0.0)
        window = np.nonzero(~anb.page_table.present)[0]
        warm, hot = window[0], window[1]
        anb.on_epoch(np.concatenate([[warm], [hot] * 1000]), now_s=0.5)
        # Both identified, in page order — no intensity signal.
        assert warm in anb.hot_pages
        assert hot in anb.hot_pages

    def test_fault_cost_charged(self):
        _, anb = make()
        anb.on_epoch(np.array([0]), now_s=0.0)
        window = np.nonzero(~anb.page_table.present)[0]
        anb.costs.begin_epoch()
        anb.on_epoch(window[:3], now_s=0.5)
        assert anb.costs.events["hinting_fault"] == pytest.approx(
            3 * FAULT_COST_US
        )

    def test_two_touch_requires_second_fault(self):
        mem = TieredMemory(ddr_pages=16, cxl_pages=64, num_logical_pages=64)
        mem.allocate_all(NodeKind.CXL)
        pt = PageTable(64, tlb=Tlb(64, capacity=64, decay=0.0))
        anb = AutoNumaBalancing(
            mem, page_table=pt, scan_window_pages=64, scan_period_s=1.0,
            two_touch=True, adaptive=False, seed=0,
        )
        anb.on_epoch(np.array([]), now_s=0.0)
        anb.on_epoch(np.array([5]), now_s=0.1)  # first fault
        assert 5 not in anb.hot_pages
        anb.on_epoch(np.array([]), now_s=1.0)   # re-unmap (window = all)
        anb.on_epoch(np.array([5]), now_s=1.1)  # second fault
        assert 5 in anb.hot_pages


class TestAdaptivity:
    def test_period_backs_off_without_novelty(self):
        """§7.2: ANB rarely unmaps pages at equilibrium."""
        mem = TieredMemory(ddr_pages=16, cxl_pages=64, num_logical_pages=64)
        mem.allocate_all(NodeKind.CXL)
        anb = AutoNumaBalancing(mem, scan_window_pages=8, scan_period_s=1.0,
                                adaptive=True, seed=0)
        initial = anb.scan_period_s
        # Never touch anything: no faults, no novelty -> back off.
        for t in range(60):
            anb.on_epoch(np.array([0]), now_s=float(t))
        assert anb.scan_period_s > initial
        assert anb.scan_period_s <= MAX_SCAN_PERIOD_S

    def test_migration_candidates_fifo(self):
        _, anb = make()
        anb.on_epoch(np.array([0]), now_s=0.0)
        window = np.nonzero(~anb.page_table.present)[0]
        anb.on_epoch(window, now_s=0.5)
        first = anb.migration_candidates(2)
        second = anb.migration_candidates(100)
        assert len(first) == 2
        assert not (set(first) & set(second))
