"""Property-based invariants over the CPU-driven policies."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import AutoNumaBalancing, Damon, PebsSampler, PteScanner
from repro.memory.tiers import NodeKind, TieredMemory

N_PAGES = 128

epochs = st.lists(
    st.lists(st.integers(0, N_PAGES - 1), min_size=1, max_size=120),
    min_size=1,
    max_size=12,
)


def memory():
    mem = TieredMemory(ddr_pages=32, cxl_pages=N_PAGES,
                       num_logical_pages=N_PAGES)
    mem.allocate_all(NodeKind.CXL)
    return mem


def drive(policy, batches):
    now = 0.0
    for batch in batches:
        policy.on_epoch(np.array(batch), now_s=now, epoch_s=0.5)
        now += 0.5
    return policy


POLICIES = {
    "anb": lambda mem: AutoNumaBalancing(mem, scan_window_pages=16,
                                         scan_period_s=0.3, seed=0),
    "damon": lambda mem: Damon(mem, seed=0),
    "pte-scan": lambda mem: PteScanner(mem, scan_period_s=0.3),
    "pebs": lambda mem: PebsSampler(mem, sample_period=5, seed=0),
}


@pytest.mark.parametrize("name", sorted(POLICIES))
class TestCommonInvariants:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(batches=epochs)
    def test_hot_list_valid_and_costs_monotone(self, name, batches):
        policy = drive(POLICIES[name](memory()), batches)
        # Hot list holds unique, in-range logical pages.
        assert len(policy.hot_pages) == len(set(policy.hot_pages))
        assert all(0 <= p < N_PAGES for p in policy.hot_pages)
        # PFNs recorded alongside match the page count.
        assert len(policy.hot_pfns) == len(policy.hot_pages)
        # Costs never negative.
        assert policy.costs.total_us >= 0.0
        assert all(v >= 0 for v in policy.costs.events.values())

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(batches=epochs)
    def test_candidates_drain_exactly_once(self, name, batches):
        policy = drive(POLICIES[name](memory()), batches)
        drained = []
        while True:
            batch = policy.migration_candidates(7)
            if batch.size == 0:
                break
            drained.extend(batch.tolist())
        assert sorted(drained) == sorted(policy.hot_pages)


class TestDamonRegionInvariants:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(batches=epochs)
    def test_regions_partition_the_space(self, batches):
        damon = drive(Damon(memory(), seed=1), batches)
        assert damon.regions[0].start == 0
        assert damon.regions[-1].end == N_PAGES
        for a, b in zip(damon.regions, damon.regions[1:]):
            assert a.end == b.start
            assert a.size > 0
        assert len(damon.regions) <= damon.max_nr_regions
